//! Adaptation-behaviour tests: postponed vs. immediate event handling,
//! dynamic strategy replacement, failure injection, and the paper's
//! transparency claim (the same adaptation code across different
//! functional interfaces).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adapta::core::{
    policies::{load_sharing_proxy, BindingPolicy, LoadSharingConfig},
    Infrastructure, ServerSpec, Subscription,
};
use adapta::idl::Value;

fn two_server_infra(service: &str, a: &str, b: &str) -> Infrastructure {
    let infra = Infrastructure::in_process().unwrap();
    infra.spawn_server(ServerSpec::echo(service, a)).unwrap();
    infra.spawn_server(ServerSpec::echo(service, b)).unwrap();
    infra
}

#[test]
fn postponed_handling_defers_to_next_invocation() {
    let infra = two_server_infra("PostSvc", "post-a", "post-b");
    let hits = Arc::new(AtomicUsize::new(0));
    let hits_clone = hits.clone();
    let proxy = infra
        .smart_proxy("PostSvc")
        .preference("min LoadAvg")
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            "function(o, v, m) return v[1] > 1 end",
        ))
        .strategy_native("LoadIncrease", move |_proxy, _event| {
            hits_clone.fetch_add(1, Ordering::Relaxed);
        })
        .build()
        .unwrap();
    let bound = proxy.invoke("whoami", vec![]).unwrap();
    infra.set_background(bound.as_str().unwrap(), 4.0);
    infra.advance_in_steps(Duration::from_secs(120), Duration::from_secs(30));

    // Events arrived but the strategy has NOT run yet: postponed.
    assert!(proxy.pending_events() > 0);
    assert_eq!(hits.load(Ordering::Relaxed), 0);

    // The next invocation drains the queue first.
    proxy.invoke("hello", vec![Value::from("x")]).unwrap();
    assert_eq!(proxy.pending_events(), 0);
    assert!(hits.load(Ordering::Relaxed) > 0);
}

#[test]
fn immediate_handling_runs_at_notification_time() {
    let infra = two_server_infra("ImmSvc", "imm-a", "imm-b");
    let hits = Arc::new(AtomicUsize::new(0));
    let hits_clone = hits.clone();
    let proxy = infra
        .smart_proxy("ImmSvc")
        .preference("min LoadAvg")
        .immediate_handling()
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            "function(o, v, m) return v[1] > 1 end",
        ))
        .strategy_native("LoadIncrease", move |_proxy, _event| {
            hits_clone.fetch_add(1, Ordering::Relaxed);
        })
        .build()
        .unwrap();
    let bound = proxy.invoke("whoami", vec![]).unwrap();
    infra.set_background(bound.as_str().unwrap(), 4.0);
    infra.advance_in_steps(Duration::from_secs(120), Duration::from_secs(30));

    // No invocation needed: the strategy already ran.
    assert_eq!(proxy.pending_events(), 0);
    assert!(hits.load(Ordering::Relaxed) > 0);
}

#[test]
fn strategies_hot_swap_without_stopping_the_client() {
    let infra = two_server_infra("SwapSvc", "swap-a", "swap-b");
    let proxy = infra
        .smart_proxy("SwapSvc")
        .preference("min LoadAvg")
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            "function(o, v, m) return v[1] > 1 end",
        ))
        .build()
        .unwrap();

    // Version 1 of the strategy: count events in script state.
    proxy
        .set_strategy_script(
            "LoadIncrease",
            "function(self, event) v1_count = (v1_count or 0) + 1 end",
        )
        .unwrap();
    let bound = proxy.invoke("whoami", vec![]).unwrap();
    infra.set_background(bound.as_str().unwrap(), 4.0);
    infra.advance_in_steps(Duration::from_secs(90), Duration::from_secs(30));
    proxy.invoke("hello", vec![Value::from("x")]).unwrap();
    let v1 = proxy.actor().eval("return v1_count or 0").unwrap();
    assert!(matches!(v1[0], Value::Long(n) if n > 0));

    // Hot swap: version 2 replaces version 1 — no rebuild, no restart.
    proxy
        .set_strategy_script(
            "LoadIncrease",
            "function(self, event) v2_count = (v2_count or 0) + 1 end",
        )
        .unwrap();
    infra.advance_in_steps(Duration::from_secs(90), Duration::from_secs(30));
    proxy.invoke("hello", vec![Value::from("x")]).unwrap();
    let v1_after = proxy.actor().eval("return v1_count or 0").unwrap();
    let v2 = proxy.actor().eval("return v2_count or 0").unwrap();
    assert_eq!(v1, v1_after, "old strategy must not run after the swap");
    assert!(matches!(v2[0], Value::Long(n) if n > 0));
}

#[test]
fn adapt_now_applies_strategies_on_demand() {
    // "A smart proxy can also explicitly activate the adaptation
    // strategies that it implements, independently of received events."
    let infra = two_server_infra("NowSvc", "now-a", "now-b");
    let hits = Arc::new(AtomicUsize::new(0));
    let hits_clone = hits.clone();
    let proxy = infra
        .smart_proxy("NowSvc")
        .strategy_native("Tune", move |_p, event| {
            assert_eq!(event, "Tune");
            hits_clone.fetch_add(1, Ordering::Relaxed);
        })
        .build()
        .unwrap();
    proxy.adapt_now("Tune");
    assert_eq!(hits.load(Ordering::Relaxed), 1);
}

#[test]
fn withdrawn_offers_stop_being_selected() {
    let infra = two_server_infra("WdSvc", "wd-a", "wd-b");
    let a = infra.server("wd-a").unwrap();
    a.withdraw();
    let proxy = infra
        .smart_proxy("WdSvc")
        .preference("min LoadAvg")
        .build()
        .unwrap();
    assert_eq!(proxy.invoke("whoami", vec![]).unwrap(), Value::from("wd-b"));
}

#[test]
fn all_servers_dead_is_a_clean_error() {
    let infra = two_server_infra("DeadSvc", "dead-a", "dead-b");
    let proxy = infra.smart_proxy("DeadSvc").build().unwrap();
    infra.server("dead-a").unwrap().crash();
    infra.server("dead-b").unwrap().crash();
    let err = proxy.invoke("hello", vec![Value::from("x")]).unwrap_err();
    // Either unbound (no live replacement) or the second server's
    // failure surfaced — but never a panic or a hang.
    let msg = err.to_string();
    assert!(
        msg.contains("unbound") || msg.contains("no object"),
        "unexpected error: {msg}"
    );
}

#[test]
fn same_adaptation_code_reused_across_applications() {
    // Section V: "Because the reconfiguration facilities are transparent
    // to the applications' functional behavior, we could use the same
    // adaptation code we used in the HelloWorld application" for the
    // image viewer. Here: identical policy construction for both
    // service types; only the functional calls differ.
    let infra = Infrastructure::in_process().unwrap();
    for host in ["hello-1", "hello-2"] {
        infra
            .spawn_server(ServerSpec::echo("HelloWorld", host))
            .unwrap();
    }
    for host in ["img-1", "img-2"] {
        infra
            .spawn_server(ServerSpec::image("ImageService", host, 4, 128))
            .unwrap();
    }
    let config = LoadSharingConfig::with_threshold(3.0);
    let build = |service_type: &str| {
        load_sharing_proxy(
            infra.orb(),
            infra.repository(),
            Arc::new(infra.trader().clone()),
            service_type,
            BindingPolicy::AutoAdaptive,
            config,
        )
        .unwrap()
    };
    let hello = build("HelloWorld");
    let viewer = build("ImageService");

    assert_eq!(
        hello.invoke("hello", vec![Value::from("ana")]).unwrap(),
        Value::from("hello, ana")
    );
    let img = viewer.invoke("getImage", vec![Value::Long(0)]).unwrap();
    assert_eq!(img.as_bytes().unwrap().len(), 128);

    // Both adapt with the same strategy code when their host overloads.
    for proxy in [&hello, &viewer] {
        let bound = proxy.invoke("whoami", vec![]).unwrap();
        infra.set_background(bound.as_str().unwrap(), 6.0);
    }
    infra.advance_in_steps(Duration::from_secs(240), Duration::from_secs(30));
    let hello_after = hello.invoke("whoami", vec![]).unwrap();
    let viewer_after = viewer.invoke("whoami", vec![]).unwrap();
    assert_eq!(hello_after, Value::from("hello-2"));
    assert_eq!(viewer_after, Value::from("img-2"));
}

#[test]
fn events_are_counted_and_observable() {
    let infra = two_server_infra("CntSvc", "cnt-a", "cnt-b");
    let proxy = infra
        .smart_proxy("CntSvc")
        .preference("min LoadAvg")
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            "function(o, v, m) return v[1] > 1 end",
        ))
        .build()
        .unwrap();
    let bound = proxy.invoke("whoami", vec![]).unwrap();
    infra.set_background(bound.as_str().unwrap(), 4.0);
    infra.advance_in_steps(Duration::from_secs(150), Duration::from_secs(30));
    assert!(proxy.events_received() > 0);
    proxy.invoke("hello", vec![Value::from("x")]).unwrap();
    assert!(proxy.events_handled() > 0);
    assert!(proxy.invocations() >= 2);
}

/// Builds a standalone proxy over a local trader and one servant, so
/// tests can deliver `notifyEvent` by hand through the observer ref.
fn standalone_proxy(
    service: &str,
    configure: impl FnOnce(adapta::core::SmartProxyBuilder) -> adapta::core::SmartProxyBuilder,
) -> (adapta::orb::Orb, adapta::core::SmartProxy) {
    use adapta::orb::ServantFn;
    use adapta::trading::{ExportRequest, ServiceTypeDef, Trader};

    let orb = adapta::orb::Orb::new(&format!("sp-{service}"));
    let trader = Trader::new(&orb);
    trader.add_type(ServiceTypeDef::new(service)).unwrap();
    let svc = orb
        .activate(
            "svc",
            ServantFn::new(service, |_, _| Ok(Value::from("pong"))),
        )
        .unwrap();
    trader.export(ExportRequest::new(service, svc)).unwrap();
    let repo = adapta::idl::InterfaceRepository::new();
    let builder = adapta::core::SmartProxy::builder(&orb, &repo, Arc::new(trader), service);
    let proxy = configure(builder).build().unwrap();
    (orb, proxy)
}

#[test]
fn postponed_queue_drains_exactly_once_and_coalesces_duplicates() {
    let runs = Arc::new(AtomicUsize::new(0));
    let runs_in_strategy = runs.clone();
    let (orb, proxy) = standalone_proxy("SpDrain", |b| {
        b.strategy_native("Burst", move |_proxy, _event| {
            runs_in_strategy.fetch_add(1, Ordering::Relaxed);
        })
    });

    // A burst of identical notifications arrives between invocations.
    let observer = proxy.observer_ref();
    for _ in 0..3 {
        orb.invoke_ref(&observer, "notifyEvent", vec![Value::from("Burst")])
            .unwrap();
    }
    assert_eq!(proxy.pending_events(), 3);
    assert_eq!(runs.load(Ordering::Relaxed), 0, "handling is postponed");

    // The next invocation drains the queue first — the burst coalesces
    // into ONE strategy execution.
    proxy.invoke("ping", vec![]).unwrap();
    assert_eq!(proxy.pending_events(), 0);
    assert_eq!(runs.load(Ordering::Relaxed), 1);

    // Drained means drained: a further invocation must not re-run it.
    proxy.invoke("ping", vec![]).unwrap();
    assert_eq!(runs.load(Ordering::Relaxed), 1);
}

#[test]
fn failing_script_strategy_is_counted_and_does_not_lose_the_request() {
    let (orb, proxy) = standalone_proxy("SpFail", |b| {
        // Compiles fine, explodes at run time (calling a nil global).
        b.strategy_script("Kaboom", "function(self, event) no_such_function() end")
    });
    orb.invoke_ref(
        &proxy.observer_ref(),
        "notifyEvent",
        vec![Value::from("Kaboom")],
    )
    .unwrap();
    assert_eq!(proxy.pending_events(), 1);

    // The strategy fails, but the functional request sails through.
    let reply = proxy.invoke("ping", vec![]).unwrap();
    assert_eq!(reply, Value::from("pong"));
    assert_eq!(proxy.events_handled(), 1);
    let snap = adapta::telemetry::registry().snapshot();
    assert_eq!(
        snap.counter("smartproxy.SpFail.strategy.script.runs"),
        Some(1)
    );
    assert_eq!(
        snap.counter("smartproxy.SpFail.strategy.script.failures"),
        Some(1)
    );
}

/// Regression for failover convergence: after a transport-level
/// failover, the dead target goes on a short-TTL dead list, so a later
/// `reselect()` (or a second failover) cannot rebind the dead server's
/// stale trader offer while the TTL runs. Two consecutive failures
/// converge onto the one live component.
#[test]
fn failovers_converge_and_never_rebind_known_dead_targets_within_ttl() {
    use adapta::idl::TypeCode;
    use adapta::trading::{ExportRequest, PropDef, PropMode, ServiceTypeDef, Trader};

    let orb = adapta::orb::Orb::new("sp-deadlist");
    let trader = Trader::new(&orb);
    trader
        .add_type(ServiceTypeDef::new("DeadSvc").with_property(PropDef::new(
            "Rank",
            TypeCode::Long,
            PropMode::Normal,
        )))
        .unwrap();

    // Two dead servers (closed TCP ports) outrank the one live servant;
    // their stale offers stay registered, as after a crash.
    let live = orb
        .activate(
            "svc",
            adapta::orb::ServantFn::new("DeadSvc", |_, _| Ok(Value::from("pong"))),
        )
        .unwrap();
    let dead1 = adapta::orb::ObjRef::new("tcp://127.0.0.1:9", "svc", "DeadSvc");
    let dead2 = adapta::orb::ObjRef::new("tcp://127.0.0.1:19", "svc", "DeadSvc");
    for (target, rank) in [(&dead1, 3i64), (&dead2, 2), (&live, 1)] {
        trader
            .export(
                ExportRequest::new("DeadSvc", target.clone())
                    .with_property("Rank", Value::Long(rank)),
            )
            .unwrap();
    }

    let repo = adapta::idl::InterfaceRepository::new();
    let proxy = adapta::core::SmartProxy::builder(&orb, &repo, Arc::new(trader), "DeadSvc")
        .preference("max Rank")
        .dead_target_ttl(Duration::from_secs(30))
        .build()
        .unwrap();
    assert_eq!(proxy.current_target(), Some(dead1.clone()));

    // First invocation: dead1 fails, failover picks dead2 (next rank),
    // whose retry fails too — the call errors, but both are now known
    // dead.
    assert!(proxy.invoke("ping", vec![]).is_err());
    assert_eq!(proxy.failovers(), 1);

    // Second invocation: the failover skips BOTH dead targets' stale
    // offers and converges on the live servant.
    let reply = proxy.invoke("ping", vec![]).unwrap();
    assert_eq!(reply, Value::from("pong"));
    assert_eq!(proxy.current_target(), Some(live.clone()));
    assert!(
        proxy.repicks_avoided() >= 1,
        "dead-list filtering should have skipped stale offers"
    );

    // An explicit reselect mid-TTL still must not rebind a dead target,
    // even though the trader ranks them first.
    assert!(proxy.reselect().unwrap());
    assert_eq!(proxy.current_target(), Some(live.clone()));
    let snap = adapta::telemetry::registry().snapshot();
    assert!(
        snap.counter("smartproxy.DeadSvc.failover.repicks_avoided")
            .unwrap_or(0)
            >= 1
    );

    // And invocations keep flowing on the live binding.
    assert_eq!(proxy.invoke("ping", vec![]).unwrap(), Value::from("pong"));
    assert_eq!(proxy.failovers(), 2);
}
