//! Integration tests for the adapta-balancer subsystem: a smart proxy
//! in *balanced* mode materializes its trader query into a live
//! replica set and routes every invocation through a pluggable policy,
//! feeding call latencies and outcomes back into per-replica stats.
//!
//! The acceptance behaviors exercised here:
//!
//! * P2C-over-EWMA prefers the faster replica under latency skew;
//! * a mid-run degradation drains traffic off the slowed replica;
//! * the set refreshes to pick up new exports without a proxy restart;
//! * breaker-open replicas receive zero policy picks;
//! * the routing policy can be swapped at run time while invocations
//!   are in flight, without dropping any of them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adapta::core::{SmartProxy, SmartProxyBuilder};
use adapta::idl::{InterfaceRepository, Value};
use adapta::orb::{ObjRef, Orb, ServantFn};
use adapta::trading::{ExportRequest, ServiceTypeDef, Trader};

/// One replica servant whose service time is steerable at run time
/// (microseconds; shared atomics let tests degrade a replica mid-run).
fn spawn_replica(orb: &Orb, service: &str, key: &str, sleep_us: Arc<AtomicU64>) -> ObjRef {
    let name = key.to_string();
    orb.activate(
        key,
        ServantFn::new(service, move |op, args| {
            let us = sleep_us.load(Ordering::Relaxed);
            if us > 0 {
                std::thread::sleep(Duration::from_micros(us));
            }
            match op {
                "whoami" => Ok(Value::from(name.as_str())),
                _ => Ok(Value::Seq(args)),
            }
        }),
    )
    .unwrap()
}

/// Orb + trader + `replicas` steerable servants exported under
/// `service`, plus a proxy builder over them. Returns the per-replica
/// sleep knobs in declaration order.
fn balanced_rig(
    service: &str,
    replicas: &[(&str, u64)],
) -> (Orb, Trader, SmartProxyBuilder, Vec<Arc<AtomicU64>>) {
    let orb = Orb::new(&format!("bal-{service}"));
    let trader = Trader::new(&orb);
    trader.add_type(ServiceTypeDef::new(service)).unwrap();
    let mut knobs = Vec::new();
    for (key, us) in replicas {
        let knob = Arc::new(AtomicU64::new(*us));
        let target = spawn_replica(&orb, service, key, knob.clone());
        trader.export(ExportRequest::new(service, target)).unwrap();
        knobs.push(knob);
    }
    let repo = InterfaceRepository::new();
    let builder = SmartProxy::builder(&orb, &repo, Arc::new(trader.clone()), service);
    (orb, trader, builder, knobs)
}

/// Current pick counters keyed by the replica's servant key.
fn picks_by_servant(proxy: &SmartProxy) -> HashMap<String, u64> {
    proxy
        .balancer()
        .expect("proxy is balanced")
        .replicas()
        .into_iter()
        .map(|r| (r.target().key.clone(), r.stats().picks()))
        .collect()
}

#[test]
fn p2c_prefers_the_faster_replica_under_latency_skew() {
    // 2x service-time skew: 1 ms vs 2 ms.
    let (_orb, _trader, builder, _knobs) =
        balanced_rig("P2cSkew", &[("fast", 1_000), ("slow", 2_000)]);
    let proxy = builder.balanced("p2c_ewma").build().unwrap();

    // Warm-up: both replicas need at least one latency sample before
    // the EWMA comparison means anything.
    for _ in 0..10 {
        proxy.invoke("echo", vec![Value::Long(0)]).unwrap();
    }
    let before = picks_by_servant(&proxy);

    const CALLS: u64 = 60;
    for i in 0..CALLS {
        proxy.invoke("echo", vec![Value::Long(i as i64)]).unwrap();
    }
    let after = picks_by_servant(&proxy);
    let fast = after["fast"] - before["fast"];
    let slow = after["slow"] - before["slow"];
    assert_eq!(fast + slow, CALLS);
    assert!(
        fast * 10 >= CALLS * 7,
        "p2c_ewma sent only {fast}/{CALLS} picks to the 2x-faster replica (slow got {slow})"
    );
}

#[test]
fn mid_run_degradation_drains_the_slowed_replica() {
    let (_orb, _trader, builder, knobs) = balanced_rig("Degrade", &[("a", 1_000), ("b", 1_000)]);
    let proxy = builder.balanced("p2c_ewma").build().unwrap();

    // Phase 1: equal speeds — both replicas carry traffic.
    for _ in 0..40 {
        proxy.invoke("echo", vec![]).unwrap();
    }
    let phase1 = picks_by_servant(&proxy);
    assert!(
        phase1["a"] > 0 && phase1["b"] > 0,
        "both should serve: {phase1:?}"
    );

    // Phase 2: replica `a` degrades 12x mid-run. The EWMA feedback loop
    // must steer new picks away without any rebinding step.
    knobs[0].store(12_000, Ordering::Relaxed);
    for _ in 0..60 {
        proxy.invoke("echo", vec![]).unwrap();
    }
    let phase2 = picks_by_servant(&proxy);
    let a = phase2["a"] - phase1["a"];
    let b = phase2["b"] - phase1["b"];
    assert_eq!(a + b, 60);
    assert!(
        a * 10 <= 60 * 3,
        "degraded replica still drew {a}/60 picks (healthy got {b})"
    );
}

#[test]
fn refresh_picks_up_new_exports_without_a_proxy_restart() {
    let (orb, trader, builder, _knobs) = balanced_rig("Grow", &[("first", 0)]);
    let proxy = builder.balanced("round_robin").build().unwrap();
    assert_eq!(proxy.balancer().unwrap().len(), 1);

    // A new component exports itself after the proxy is live.
    let knob = Arc::new(AtomicU64::new(0));
    let target = spawn_replica(&orb, "Grow", "second", knob);
    trader.export(ExportRequest::new("Grow", target)).unwrap();

    // In balanced mode reselect() == refresh(); true means the set changed.
    assert!(proxy.reselect().unwrap());
    assert_eq!(proxy.balancer().unwrap().len(), 2);

    // Round-robin immediately spreads onto the newcomer.
    for _ in 0..6 {
        proxy.invoke("echo", vec![]).unwrap();
    }
    let picks = picks_by_servant(&proxy);
    assert!(picks["second"] >= 2, "newcomer never picked: {picks:?}");

    let snap = adapta::telemetry::registry().snapshot();
    assert!(snap.counter("balancer.Grow.refreshes").unwrap_or(0) >= 2);
    assert!(snap.counter("balancer.Grow.added").unwrap_or(0) >= 2);
}

#[test]
fn background_refresher_tracks_exports_and_withdrawals() {
    let (orb, trader, builder, _knobs) = balanced_rig("Bg", &[("bg-a", 0)]);
    let proxy = builder
        .balanced("round_robin")
        .balancer_refresh(Duration::from_millis(20))
        .build()
        .unwrap();

    let knob = Arc::new(AtomicU64::new(0));
    let target = spawn_replica(&orb, "Bg", "bg-b", knob);
    let id = trader.export(ExportRequest::new("Bg", target)).unwrap();
    let wait_for_len = |n: usize| {
        for _ in 0..200 {
            if proxy.balancer().unwrap().len() == n {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    };
    assert!(wait_for_len(2), "background refresher never saw the export");

    // Withdrawal evicts the replica on a later background pass.
    trader.withdraw(&id).unwrap();
    assert!(wait_for_len(1), "background refresher never evicted");
    let snap = adapta::telemetry::registry().snapshot();
    assert!(snap.counter("balancer.Bg.evictions").unwrap_or(0) >= 1);
}

#[test]
fn breaker_open_replicas_receive_zero_picks() {
    let service = "BrkBal";
    let orb = Orb::new("bal-breaker");
    let trader = Trader::new(&orb);
    trader.add_type(ServiceTypeDef::new(service)).unwrap();
    for key in ["live-a", "live-b"] {
        let target = spawn_replica(&orb, service, key, Arc::new(AtomicU64::new(0)));
        trader.export(ExportRequest::new(service, target)).unwrap();
    }
    // A crashed server's stale offer: nothing listens on port 9.
    let dead = ObjRef::new("tcp://127.0.0.1:9", "dead", service);
    trader
        .export(ExportRequest::new(service, dead.clone()))
        .unwrap();

    let repo = InterfaceRepository::new();
    let proxy = SmartProxy::builder(&orb, &repo, Arc::new(trader), service)
        .balanced("round_robin")
        .circuit_breaker(adapta::core::BreakerConfig {
            window: 1,
            min_calls: 1,
            failure_threshold: 0.5,
            open_for: Duration::from_secs(120),
        })
        .build()
        .unwrap();

    // Round-robin routes the dead replica its share; the failures trip
    // its breaker (two outcomes fill the window) while failover keeps
    // every call succeeding on a live replica.
    for _ in 0..8 {
        proxy.invoke("echo", vec![]).unwrap();
    }
    assert_eq!(
        proxy.breaker_state(&dead),
        Some(adapta::core::BreakerState::Open),
        "the dead replica's breaker should have opened"
    );

    // With the breaker open (and its 120 s cool-down running), the dead
    // replica must draw ZERO further picks.
    let stalled = picks_by_servant(&proxy)["dead"];
    for _ in 0..40 {
        proxy.invoke("echo", vec![]).unwrap();
    }
    let now = picks_by_servant(&proxy);
    assert_eq!(
        now["dead"], stalled,
        "breaker-open replica kept drawing picks"
    );
    assert!(now["live-a"] > 0 && now["live-b"] > 0);
}

#[test]
fn runtime_policy_swap_drops_no_in_flight_calls() {
    let (_orb, _trader, builder, _knobs) =
        balanced_rig("Swap", &[("sw-a", 200), ("sw-b", 200), ("sw-c", 200)]);
    let proxy = builder.balanced("round_robin").build().unwrap();
    assert_eq!(proxy.balancer_policy().as_deref(), Some("round_robin"));

    const THREADS: usize = 4;
    const CALLS: usize = 50;
    let completed = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let proxy = proxy.clone();
        let completed = completed.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..CALLS {
                let tag = (t * CALLS + i) as i64;
                let out = proxy
                    .invoke("echo", vec![Value::Long(tag)])
                    .expect("invoke across policy swaps");
                assert_eq!(out, Value::Seq(vec![Value::Long(tag)]));
                completed.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // Swap policies continuously while the callers hammer the proxy.
    let policies = [
        "least_inflight",
        "p2c_ewma",
        "consistent_hash",
        "round_robin",
    ];
    let mut swaps = 0usize;
    while completed.load(Ordering::Relaxed) < THREADS * CALLS {
        assert!(proxy.set_balancer_policy(policies[swaps % policies.len()]));
        swaps += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(proxy.invocations(), (THREADS * CALLS) as u64);
    assert!(swaps >= 2, "the race window was too short to swap twice");
    let snap = adapta::telemetry::registry().snapshot();
    assert!(snap.counter("balancer.Swap.policy_switches").unwrap_or(0) >= swaps as u64);
}

#[test]
fn consistent_hash_affinity_keys_stick_to_one_replica() {
    let (_orb, _trader, builder, _knobs) =
        balanced_rig("Affinity", &[("af-a", 0), ("af-b", 0), ("af-c", 0)]);
    let proxy = builder.balanced("consistent_hash").build().unwrap();

    for _ in 0..30 {
        proxy
            .invoke_keyed("echo", vec![], Some(0xDEAD_BEEF))
            .unwrap();
    }
    let picks = picks_by_servant(&proxy);
    let serving: Vec<_> = picks.iter().filter(|(_, &n)| n > 0).collect();
    assert_eq!(
        serving.len(),
        1,
        "one session key should map to exactly one replica: {picks:?}"
    );
}

#[test]
fn unmatched_strict_constraint_counts_a_relaxed_query_and_fires_the_event() {
    use adapta::core::RELAXED_QUERY_EVENT;
    use adapta::idl::TypeCode;
    use adapta::trading::{PropDef, PropMode};

    let service = "RelaxSvc";
    let orb = Orb::new("bal-relax");
    let trader = Trader::new(&orb);
    trader
        .add_type(ServiceTypeDef::new(service).with_property(PropDef::new(
            "Rank",
            TypeCode::Long,
            PropMode::Normal,
        )))
        .unwrap();
    let target = spawn_replica(&orb, service, "only", Arc::new(AtomicU64::new(0)));
    trader
        .export(ExportRequest::new(service, target).with_property("Rank", Value::Long(1)))
        .unwrap();

    let fired = Arc::new(AtomicUsize::new(0));
    let fired_in_strategy = fired.clone();
    let repo = InterfaceRepository::new();
    // No offer satisfies the strict constraint, so binding falls back
    // to the relaxed (type-only) query — which is no longer silent.
    let proxy = SmartProxy::builder(&orb, &repo, Arc::new(trader), service)
        .constraint("Rank > 100")
        .strategy_native(RELAXED_QUERY_EVENT, move |_proxy, _event| {
            fired_in_strategy.fetch_add(1, Ordering::Relaxed);
        })
        .build()
        .unwrap();

    assert!(proxy.relaxed_queries() >= 1, "fallback went uncounted");
    let snap = adapta::telemetry::registry().snapshot();
    assert!(
        snap.counter("smartproxy.RelaxSvc.failover.relaxed_queries")
            .unwrap_or(0)
            >= 1
    );

    // The queued RelaxedQuery event reaches its strategy on the next
    // invocation (postponed handling, like any other adaptation event).
    proxy.invoke("echo", vec![]).unwrap();
    assert!(fired.load(Ordering::Relaxed) >= 1, "strategy never ran");
}

#[test]
fn rua_scripts_can_inspect_and_swap_the_policy() {
    let (_orb, _trader, builder, _knobs) = balanced_rig("Scripted", &[("sc-a", 0), ("sc-b", 0)]);
    let proxy = builder.balanced("round_robin").build().unwrap();
    for _ in 0..4 {
        proxy.invoke("echo", vec![]).unwrap();
    }

    let mut interp = adapta::script::Interpreter::new();
    adapta::core::script_env::install_balancer(&mut interp, proxy.clone());
    let out = interp
        .eval(
            r#"
            local before = balancer_policy()
            local swapped = balancer_set_policy("least_inflight")
            local replicas = balancer_replicas()
            local picks = 0
            for i = 1, #replicas do picks = picks + replicas[i].picks end
            return before, swapped, balancer_policy(), picks
            "#,
        )
        .unwrap();
    assert_eq!(out[0].as_str(), Some("round_robin"));
    assert_eq!(out[1], adapta::script::Value::Bool(true));
    assert_eq!(out[2].as_str(), Some("least_inflight"));
    assert_eq!(out[3].as_num(), Some(4.0));
    assert_eq!(proxy.balancer_policy().as_deref(), Some("least_inflight"));
}

#[test]
fn monitor_load_pushes_feed_replica_stats_through_the_observer() {
    use adapta::core::{Infrastructure, ServerSpec};

    let infra = Infrastructure::in_process().unwrap();
    for host in ["feed-a", "feed-b"] {
        infra
            .spawn_server(ServerSpec::echo("FeedSvc", host))
            .unwrap();
    }
    let proxy = infra
        .smart_proxy("FeedSvc")
        .balanced("weighted_property:LoadAvg")
        .build()
        .unwrap();

    // Load one host and let its monitor tick: the always-true load-feed
    // predicate pushes every observed value straight into the replica's
    // stats — no strategy or rebind involved.
    infra.set_background("feed-a", 5.0);
    infra.advance_in_steps(Duration::from_secs(150), Duration::from_secs(30));

    let set = proxy.balancer().unwrap();
    let fed = set
        .replicas()
        .iter()
        .filter(|r| r.stats().load().is_some())
        .count();
    assert!(fed > 0, "no replica ever received a monitor load push");
    let snap = adapta::telemetry::registry().snapshot();
    assert!(snap.counter("balancer.FeedSvc.load_pushes").unwrap_or(0) >= 1);
}
