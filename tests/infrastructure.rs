//! End-to-end tests of the Figure 5/6 topology: client application →
//! smart proxy → trader + monitors + service agents → servers, over
//! both the in-process and the TCP transports.

use std::sync::Arc;
use std::time::Duration;

use adapta::core::{script_env, Infrastructure, ServerSpec, SmartProxy};
use adapta::idl::{InterfaceRepository, Value};
use adapta::monitor::{Monitor, MonitorServant, ScriptActor};
use adapta::orb::{Orb, ServantFn};
use adapta::sim::SimTime;
use adapta::trading::{
    ExportRequest, PropDef, PropMode, Query, RemoteTrader, ServiceTypeDef, Trader, TraderServant,
    TradingService,
};

#[test]
fn fig5_smart_proxy_activates_different_components_over_time() {
    // "The same smart proxy can activate different components over
    // time, trying to fulfill the application's requirements."
    let infra = Infrastructure::in_process().unwrap();
    for host in ["f5-a", "f5-b", "f5-c"] {
        infra.spawn_server(ServerSpec::echo("F5", host)).unwrap();
    }
    let proxy = infra
        .smart_proxy("F5")
        .constraint("LoadAvg < 2 and LoadAvgIncreasing == no")
        .preference("min LoadAvg")
        .subscribe(adapta::core::Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            "function(o, value, m) return value[1] > 2 end",
        ))
        .build()
        .unwrap();

    let mut seen = std::collections::BTreeSet::new();
    for round in 0..3 {
        let who = proxy.invoke("whoami", vec![]).unwrap();
        let host = who.as_str().unwrap().to_owned();
        seen.insert(host.clone());
        // Overload whoever we're on; the proxy should move on.
        infra.set_background(&host, 5.0);
        infra.advance_in_steps(Duration::from_secs(180), Duration::from_secs(30));
        let _ = round;
    }
    assert!(
        seen.len() >= 2,
        "proxy should have used multiple components, used {seen:?}"
    );
}

#[test]
fn fig6_full_topology_over_tcp() {
    // Trader in its own "process" (own orb + TCP listener), servers and
    // client talking to it remotely — the paper's deployment shape.
    let trader_orb = Orb::new("f6-trader");
    let trader = Trader::new(&trader_orb);
    trader
        .add_type(
            ServiceTypeDef::new("F6Svc")
                .with_property(PropDef::new(
                    "LoadAvg",
                    adapta::idl::TypeCode::Double,
                    PropMode::Normal,
                ))
                .with_property(PropDef::new(
                    "Host",
                    adapta::idl::TypeCode::Str,
                    PropMode::Readonly,
                )),
        )
        .unwrap();
    let trader_tcp = trader_orb.listen_tcp("127.0.0.1:0").unwrap();
    trader_orb
        .activate("trader", TraderServant::new(trader))
        .unwrap();

    // Server "process": serves over TCP, announces through the remote
    // trader, exposes its monitor as a TCP-reachable dynamic property.
    let server_orb = Orb::new("f6-server");
    server_orb.set_synchronous_oneway(true);
    let server_tcp = server_orb.listen_tcp("127.0.0.1:0").unwrap();
    let actor = ScriptActor::spawn("f6-server", |_| {});
    let monitor = Monitor::builder("LoadAvg")
        .source_native(|_| Value::from(1.5))
        .build(&actor, &server_orb)
        .unwrap();
    monitor.tick(SimTime::ZERO);
    let monitor_key = "load-monitor";
    server_orb
        .activate(monitor_key, MonitorServant::new(monitor))
        .unwrap();
    let monitor_ref = adapta::orb::ObjRef::new(server_tcp.clone(), monitor_key, "EventMonitor");
    let service_ref = {
        server_orb
            .activate(
                "hello",
                ServantFn::new("F6Svc", |op, args| match op {
                    "hello" => Ok(Value::from(format!(
                        "hello, {}",
                        args.first().and_then(Value::as_str).unwrap_or("?")
                    ))),
                    other => Err(adapta::orb::OrbError::unknown_operation("F6Svc", other)),
                }),
            )
            .unwrap();
        adapta::orb::ObjRef::new(server_tcp, "hello", "F6Svc")
    };
    {
        let remote_trader = RemoteTrader::new(server_orb.proxy(&adapta::orb::ObjRef::new(
            trader_tcp.clone(),
            "trader",
            "Trader",
        )));
        remote_trader
            .export(
                ExportRequest::new("F6Svc", service_ref)
                    .with_dynamic_property("LoadAvg", monitor_ref)
                    .with_property("Host", Value::from("f6-server")),
            )
            .unwrap();
    }

    // Client "process": discovers through the remote trader and calls
    // the server — everything over TCP.
    let client_orb = Orb::new("f6-client");
    let remote_trader = RemoteTrader::new(
        client_orb.proxy(&adapta::orb::ObjRef::new(trader_tcp, "trader", "Trader")),
    );
    let repo = InterfaceRepository::new();
    script_env::register_monitor_interfaces(&repo);
    let proxy = SmartProxy::builder(&client_orb, &repo, Arc::new(remote_trader), "F6Svc")
        .constraint("LoadAvg < 50")
        .preference("min LoadAvg")
        .build()
        .unwrap();
    let out = proxy
        .invoke("hello", vec![Value::from("tcp world")])
        .unwrap();
    assert_eq!(out, Value::from("hello, tcp world"));
    // The dynamic property was evaluated across TCP by the trader.
    let offer = proxy.current_offer().unwrap();
    assert_eq!(offer.prop("LoadAvg"), Some(&Value::from(1.5)));
}

#[test]
fn remote_trader_equals_local_trader_results() {
    let orb = Orb::new("parity");
    let trader = Trader::new(&orb);
    trader
        .add_type(ServiceTypeDef::new("P").with_property(PropDef::new(
            "LoadAvg",
            adapta::idl::TypeCode::Double,
            PropMode::Normal,
        )))
        .unwrap();
    for i in 0..5 {
        trader
            .export(
                ExportRequest::new(
                    "P",
                    adapta::orb::ObjRef::new("inproc://parity", format!("s{i}"), "P"),
                )
                .with_property("LoadAvg", Value::from(i as f64)),
            )
            .unwrap();
    }
    let objref = orb
        .activate("trader", TraderServant::new(trader.clone()))
        .unwrap();
    let remote = RemoteTrader::new(orb.proxy(&objref));
    let q = Query::new("P")
        .constraint("LoadAvg < 3")
        .preference("max LoadAvg");
    let local_matches = trader.query(&q).unwrap();
    let remote_matches = remote.query(&q).unwrap();
    assert_eq!(local_matches, remote_matches);
    assert_eq!(local_matches.len(), 3);
    assert_eq!(local_matches[0].prop("LoadAvg"), Some(&Value::from(2.0)));
}

#[test]
fn service_agents_configure_monitors_through_scripts() {
    // "These service agents — typically implemented as Lua scripts —
    // can create new monitors or configure existing ones."
    let infra = Infrastructure::in_process().unwrap();
    let server = infra
        .spawn_server(ServerSpec::echo("AgentSvc", "agent-host"))
        .unwrap();
    // The agent's configuration script adds a new aspect to the live
    // LoadAvg monitor.
    server
        .monitor_host()
        .eval(
            r#"
            __lmon:defineAspect("FifteenMin", [[function(self, currval, monitor)
                return currval[3]
            end]])
        "#,
        )
        .unwrap();
    infra.advance(Duration::from_secs(60));
    assert!(server
        .monitor()
        .defined_aspects()
        .contains(&"FifteenMin".to_owned()));
    assert!(server.monitor().aspect_value("FifteenMin").is_some());
}

#[test]
fn new_service_types_integrate_at_run_time() {
    // LuaCorba claim (1): "identification of new service types and the
    // integration of their instances into a dynamically assembled
    // application" — a type unknown at 'compile time' appears, and the
    // client starts using it without any rebuild.
    let infra = Infrastructure::in_process().unwrap();
    // Nothing exists yet.
    assert!(infra.trader().query(&Query::new("BrandNew")).is_err());

    infra
        .spawn_server(ServerSpec::script(
            "BrandNew",
            "brand-new-host",
            r#"return {
                transmogrify = function(self, x) return x * 2 + 1 end
            }"#,
        ))
        .unwrap();
    let proxy = infra.smart_proxy("BrandNew").build().unwrap();
    assert_eq!(
        proxy.invoke("transmogrify", vec![Value::Long(20)]).unwrap(),
        Value::Long(41)
    );
}

#[test]
fn stringified_references_bootstrap_clients() {
    // IOR-style bootstrap: a reference printed by one node is usable by
    // another with no shared state but the string.
    let server = Orb::new("ior-server");
    let objref = server
        .activate(
            "svc",
            ServantFn::new("Echo", |_, args| {
                Ok(args.into_iter().next().unwrap_or(Value::Null))
            }),
        )
        .unwrap();
    let uri = objref.to_uri();
    assert!(uri.starts_with("adapta-ref:"));

    let client = Orb::new("ior-client");
    let proxy = client.proxy_from_uri(&uri).unwrap();
    assert_eq!(
        proxy.invoke("echo", vec![Value::from("ping")]).unwrap(),
        Value::from("ping")
    );
}
