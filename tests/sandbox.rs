//! Sandboxed remote evaluation, end to end (ISSUE 4).
//!
//! Remote code is hostile until proven otherwise: these tests ship
//! runaway loops, memory bombs, deep recursion and pcall-swallow
//! attempts into a live monitor and assert the host keeps ticking; the
//! quarantine state machine isolates repeat offenders and readmits them
//! after a clean probe; and an overloaded server sheds requests with a
//! retryable error that a smart proxy's retry policy absorbs.
//!
//! `ci.sh --sandbox` runs this file plus the script crate's property
//! tests and the `exp_overload` experiment.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adapta::core::{RetryPolicy, SmartProxy};
use adapta::idl::{InterfaceRepository, TypeCode, Value};
use adapta::monitor::{Monitor, MonitorServant, ObserverTarget, ScriptActor};
use adapta::orb::{ObjRef, Orb, OrbError, OrbOptions, ServantFn};
use adapta::sim::SimTime;
use adapta::telemetry::registry;
use adapta::trading::{ExportRequest, PropDef, PropMode, ServiceTypeDef, Trader};

/// A monitor served over the orb, plus a client proxy to it — the
/// remote-evaluation setup of Figures 1/2.
fn served_monitor(name: &str) -> (Orb, Orb, Monitor, adapta::orb::Proxy) {
    let server = Orb::new(&format!("{name}-server"));
    let actor = ScriptActor::spawn(name, |_| {});
    let monitor = Monitor::builder("Load")
        .source_native(|_| Value::from(99.0))
        .build(&actor, &server)
        .unwrap();
    let objref = server
        .activate("mon", MonitorServant::new(monitor.clone()))
        .unwrap();
    let client = Orb::new(&format!("{name}-client"));
    let proxy = client.proxy(&objref);
    (server, client, monitor, proxy)
}

#[test]
fn runaway_predicate_cannot_stall_the_monitor() {
    let (_s, client, monitor, proxy) = served_monitor("sbx-runaway");
    client.set_synchronous_oneway(true);
    let healthy = Arc::new(AtomicUsize::new(0));
    let healthy_clone = healthy.clone();
    monitor.attach_observer_native(
        ObserverTarget::Callback(Arc::new(move |_| {
            healthy_clone.fetch_add(1, Ordering::Relaxed);
        })),
        "Healthy",
        |v| v.as_double().unwrap_or(0.0) > 50.0,
    );
    let obs_ref = client
        .activate(
            "obs",
            ServantFn::new("EventObserver", |_, _| Ok(Value::Null)),
        )
        .unwrap();
    // An infinite loop, shipped over the wire. The sandbox's step
    // budget stops it; pcall around it changes nothing (resource errors
    // are uncatchable); the quarantine then stops paying for it.
    proxy
        .invoke(
            "attachEventObserver",
            vec![
                Value::ObjRef(obs_ref),
                Value::from("Spin"),
                Value::from("function(o, v, m) while true do end end"),
            ],
        )
        .unwrap();
    for i in 0..6 {
        monitor.tick(SimTime::from_secs(i));
    }
    assert_eq!(
        healthy.load(Ordering::Relaxed),
        6,
        "other observers keep being served"
    );
    assert_eq!(monitor.ticks(), 6);
    assert_eq!(monitor.errors(), 3, "three strikes, then quarantined");
    assert_eq!(monitor.quarantined_count(), 1);
    assert!(
        registry()
            .snapshot()
            .counter("monitor.Load.resource_exhausted")
            .unwrap_or(0)
            >= 3
    );
}

#[test]
fn memory_bomb_is_stopped_by_the_allocation_cap() {
    let (_s, _c, monitor, proxy) = served_monitor("sbx-membomb");
    proxy
        .invoke(
            "defineAspect",
            vec![
                Value::from("Bomb"),
                Value::from(
                    "function(self, v, m)\n\
                     local s = 'x'\n\
                     while true do s = s .. s end\n\
                     end",
                ),
            ],
        )
        .unwrap();
    monitor.tick(SimTime::ZERO);
    assert_eq!(monitor.errors(), 1);
    let err = monitor.last_error().unwrap();
    assert!(err.contains("memory limit"), "{err}");
    assert_eq!(monitor.aspect_value("Bomb"), Some(Value::Null));
}

#[test]
fn deep_recursion_is_capped() {
    let (_s, _c, monitor, proxy) = served_monitor("sbx-recurse");
    proxy
        .invoke(
            "defineAspect",
            vec![
                Value::from("Deep"),
                Value::from(
                    "function(self, v, m)\n\
                     local function down(n) return down(n + 1) end\n\
                     return down(0)\n\
                     end",
                ),
            ],
        )
        .unwrap();
    monitor.tick(SimTime::ZERO);
    assert_eq!(monitor.errors(), 1);
    let err = monitor.last_error().unwrap();
    assert!(err.contains("call stack overflow"), "{err}");
}

#[test]
fn pcall_cannot_swallow_resource_exhaustion() {
    let (_s, _c, monitor, proxy) = served_monitor("sbx-pcall");
    // The attacker wraps the bomb in pcall and returns a benign value
    // on "failure" — if the resource error were catchable, the aspect
    // would evaluate cleanly and never be quarantined.
    proxy
        .invoke(
            "defineAspect",
            vec![
                Value::from("Sneaky"),
                Value::from(
                    "function(self, v, m)\n\
                     pcall(function() local s = 'x' while true do s = s .. s end end)\n\
                     return 'clean'\n\
                     end",
                ),
            ],
        )
        .unwrap();
    monitor.tick(SimTime::ZERO);
    assert_eq!(
        monitor.errors(),
        1,
        "the resource error re-raised through pcall"
    );
    assert_ne!(monitor.aspect_value("Sneaky"), Some(Value::from("clean")));
}

#[test]
fn quarantine_opens_probes_and_readmits() {
    let (_s, _c, monitor, proxy) = served_monitor("sbx-quarantine");
    // Fails its first three evaluations, then recovers — the shape of a
    // predicate depending on a resource that comes back.
    proxy
        .invoke(
            "defineAspect",
            vec![
                Value::from("Flaky"),
                Value::from(
                    "function(self, v, m)\n\
                     self.n = (self.n or 0) + 1\n\
                     if self.n <= 3 then error('warming up') end\n\
                     return 'ok'\n\
                     end",
                ),
            ],
        )
        .unwrap();
    // Ticks 1-3 fail and open the penalty box (threshold 3).
    for i in 0..3 {
        monitor.tick(SimTime::from_secs(i));
    }
    assert_eq!(monitor.quarantined_count(), 1);
    assert_eq!(monitor.errors(), 3);
    // The 8-tick penalty window: skipped, no new errors.
    for i in 3..11 {
        monitor.tick(SimTime::from_secs(i));
    }
    assert_eq!(monitor.errors(), 3, "quarantined entries cost nothing");
    // Probe tick: the aspect now succeeds and is readmitted.
    monitor.tick(SimTime::from_secs(11));
    assert_eq!(monitor.quarantined_count(), 0);
    assert_eq!(monitor.aspect_value("Flaky"), Some(Value::from("ok")));
    let snapshot = registry().snapshot();
    assert!(
        snapshot
            .counter("monitor.Load.quarantined.entries")
            .unwrap_or(0)
            >= 1
    );
    assert!(
        snapshot
            .counter("monitor.Load.quarantined.probes")
            .unwrap_or(0)
            >= 1
    );
    assert!(
        snapshot
            .counter("monitor.Load.quarantined.readmitted")
            .unwrap_or(0)
            >= 1
    );
}

#[test]
fn installer_quota_rejects_the_greedy_not_the_honest() {
    let (_s, _c, _monitor, proxy) = served_monitor("sbx-quota");
    // All servant-side installs are charged to one "remote" installer
    // identity; past the quota they are rejected up front.
    let mut rejected = None;
    for i in 0..64 {
        let out = proxy.invoke(
            "defineAspect",
            vec![
                Value::from(format!("A{i}")),
                Value::from("function(self, v, m) return 1 end"),
            ],
        );
        if let Err(e) = out {
            rejected = Some((i, e));
            break;
        }
    }
    let (at, err) = rejected.expect("quota eventually rejects");
    assert_eq!(at, adapta::monitor::MAX_INSTALLS_PER_INSTALLER);
    assert!(err.to_string().contains("quota"), "{err}");
}

#[test]
fn overload_shed_is_retryable_and_absorbed_by_the_smart_proxy() {
    // A deliberately tiny server: 2 dispatches in flight node-wide,
    // everything else shed with `TransientOverload`.
    let server = Orb::with_options(
        "sbx-overload-server",
        OrbOptions::new().max_inflight(2).max_conn_queue(2),
    );
    server
        .activate(
            "svc",
            ServantFn::new("StormSvc", |_, _| {
                std::thread::sleep(Duration::from_millis(3));
                Ok(Value::from("pong"))
            }),
        )
        .unwrap();
    let endpoint = server.listen_tcp("127.0.0.1:0").unwrap();

    let client = Orb::new("sbx-overload-client");
    let trader = Trader::new(&client);
    trader
        .add_type(ServiceTypeDef::new("StormSvc").with_property(PropDef::new(
            "Rank",
            TypeCode::Long,
            PropMode::Normal,
        )))
        .unwrap();
    trader
        .export(
            ExportRequest::new("StormSvc", ObjRef::new(&endpoint, "svc", "StormSvc"))
                .with_property("Rank", Value::Long(1)),
        )
        .unwrap();
    let repo = InterfaceRepository::new();
    let proxy = SmartProxy::builder(&client, &repo, Arc::new(trader), "StormSvc")
        .retry_policy(
            RetryPolicy::new(25)
                .base(Duration::from_millis(2))
                .cap(Duration::from_millis(20)),
        )
        .build()
        .unwrap();

    // A storm: 8 threads hammer the 2-slot server concurrently.
    let proxy = Arc::new(proxy);
    let failures: Vec<_> = (0..8)
        .map(|_| {
            let proxy = proxy.clone();
            std::thread::spawn(move || {
                (0..5)
                    .filter(|_| proxy.invoke("ping", vec![]).is_err())
                    .count()
            })
        })
        .collect();
    let failed: usize = failures.into_iter().map(|h| h.join().unwrap()).sum();

    assert_eq!(failed, 0, "every call completed despite shedding");
    let snapshot = registry().snapshot();
    let shed = snapshot
        .counter("orb.sbx-overload-server.shed")
        .unwrap_or(0)
        + snapshot
            .counter("orb.sbx-overload-server.tcp.server.shed")
            .unwrap_or(0);
    assert!(shed > 0, "the storm actually tripped admission control");
    assert!(proxy.retries() > 0, "the proxy retried shed calls");
}

#[test]
fn overload_error_is_transient_and_retryable() {
    assert!(OrbError::TransientOverload.is_retryable());
    assert_eq!(
        OrbError::TransientOverload.to_string(),
        "server overloaded; retry later"
    );
}

#[test]
fn smart_proxy_event_queue_is_bounded() {
    let server = Orb::new("sbx-evq-server");
    server
        .activate("svc", ServantFn::new("EvSvc", |_, _| Ok(Value::from("ok"))))
        .unwrap();
    let endpoint = server.endpoint();
    let client = Orb::new("sbx-evq-client");
    client.set_synchronous_oneway(true);
    let trader = Trader::new(&client);
    trader.add_type(ServiceTypeDef::new("EvSvc")).unwrap();
    trader
        .export(ExportRequest::new(
            "EvSvc",
            ObjRef::new(&endpoint, "svc", "EvSvc"),
        ))
        .unwrap();
    let repo = InterfaceRepository::new();
    let proxy = SmartProxy::builder(&client, &repo, Arc::new(trader), "EvSvc")
        .build()
        .unwrap();
    let observer = proxy.observer_ref();
    let pusher = Orb::new("sbx-evq-pusher");
    pusher.set_synchronous_oneway(true);
    for _ in 0..300 {
        pusher
            .invoke_oneway_ref(&observer, "notifyEvent", vec![Value::from("E")])
            .unwrap();
    }
    assert_eq!(proxy.pending_events(), 256, "queue capped at the bound");
    assert!(
        registry()
            .snapshot()
            .counter("smartproxy.EvSvc.events_dropped")
            .unwrap_or(0)
            >= 44
    );
}
