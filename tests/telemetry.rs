//! End-to-end observability tests: one distributed trace spanning two
//! TCP-connected "processes" (client → trader → monitor), and the
//! `_telemetry` object answering DII queries with the global metrics
//! snapshot.

use std::sync::Arc;

use adapta::idl::{InterfaceRepository, TypeCode, Value};
use adapta::monitor::{Monitor, MonitorServant, ScriptActor};
use adapta::orb::{ObjRef, Orb, ServantFn};
use adapta::sim::SimTime;
use adapta::telemetry::{collector, SpanRecord};
use adapta::trading::{
    ExportRequest, PropDef, PropMode, Query, RemoteTrader, ServiceTypeDef, Trader, TraderServant,
    TradingService,
};

fn span<'a>(spans: &'a [SpanRecord], name: &str) -> &'a SpanRecord {
    spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no `{name}` span in {spans:#?}"))
}

/// The ISSUE's acceptance scenario: a trader import that evaluates a
/// dynamic property yields ONE trace — the client's `query` call, the
/// trader's server-side dispatch, the trader's internal query span and
/// the dynamic-property round trip to the monitor all share a TraceId
/// carried in request service contexts across two TCP hops.
#[test]
fn tcp_query_with_dynamic_property_yields_one_trace() {
    // Node 1: the trader, reachable over TCP only.
    let trader_orb = Orb::new("tele-e2e-trader");
    let trader = Trader::new(&trader_orb);
    trader
        .add_type(ServiceTypeDef::new("TeleE2E").with_property(PropDef::new(
            "LoadAvg",
            TypeCode::Double,
            PropMode::Normal,
        )))
        .unwrap();
    let trader_tcp = trader_orb.listen_tcp("127.0.0.1:0").unwrap();
    trader_orb
        .activate("trader", TraderServant::new(trader))
        .unwrap();

    // Node 2: a server whose LoadAvg is a dynamic property behind a
    // TCP-reachable monitor, exported through the remote trader.
    let server_orb = Orb::new("tele-e2e-server");
    let server_tcp = server_orb.listen_tcp("127.0.0.1:0").unwrap();
    let actor = ScriptActor::spawn("tele-e2e-server", |_| {});
    let monitor = Monitor::builder("LoadAvg")
        .source_native(|_| Value::from(0.25))
        .build(&actor, &server_orb)
        .unwrap();
    monitor.tick(SimTime::ZERO);
    server_orb
        .activate("load-monitor", MonitorServant::new(monitor))
        .unwrap();
    server_orb
        .activate("svc", ServantFn::new("TeleE2E", |_, _| Ok(Value::Null)))
        .unwrap();
    let remote =
        RemoteTrader::new(server_orb.proxy(&ObjRef::new(trader_tcp.clone(), "trader", "Trader")));
    remote
        .export(
            ExportRequest::new("TeleE2E", ObjRef::new(server_tcp.clone(), "svc", "TeleE2E"))
                .with_dynamic_property(
                    "LoadAvg",
                    ObjRef::new(server_tcp, "load-monitor", "EventMonitor"),
                ),
        )
        .unwrap();

    // The client imports; the trader evaluates LoadAvg at the monitor.
    let client_orb = Orb::new("tele-e2e-client");
    let remote = RemoteTrader::new(client_orb.proxy(&ObjRef::new(trader_tcp, "trader", "Trader")));
    let matches = remote
        .query(&Query::new("TeleE2E").constraint("LoadAvg < 1"))
        .unwrap();
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].prop("LoadAvg"), Some(&Value::from(0.25)));

    // Find the client-side span of OUR query (other tests share the
    // global collector; the node attribute pins it down), then demand
    // every hop below it lives in the same trace.
    let finished = collector().finished();
    let client_query = finished
        .iter()
        .filter(|s| s.name == "client:query")
        .find(|s| {
            s.attrs
                .iter()
                .any(|(k, v)| k == "node" && v == "tele-e2e-client")
        })
        .expect("client query span recorded");
    let trace = client_query.trace;
    let spans = collector().for_trace(trace);

    let dispatch = span(&spans, "server:query");
    let trader_query = span(&spans, "trader:query");
    let eval_client = span(&spans, "client:evalDP");
    let eval_server = span(&spans, "server:evalDP");

    // Parent chain: client:query → server:query → trader:query →
    // client:evalDP → server:evalDP, across two service-context hops.
    assert_eq!(dispatch.parent, Some(client_query.span));
    assert_eq!(trader_query.parent, Some(dispatch.span));
    assert_eq!(eval_client.parent, Some(trader_query.span));
    assert_eq!(eval_server.parent, Some(eval_client.span));
    for s in [
        client_query,
        dispatch,
        trader_query,
        eval_client,
        eval_server,
    ] {
        assert_eq!(s.trace, trace, "span `{}` left the trace", s.name);
    }
}

/// The `_telemetry` object answers a plain DII invocation with a JSON
/// snapshot containing per-operation latency quantiles and the smart
/// proxy's queue metrics — the middleware exports its observability
/// data through itself.
#[test]
fn telemetry_object_reports_quantiles_and_smartproxy_metrics() {
    use adapta::core::SmartProxy;

    let orb = Orb::new("tele-dii");
    let trader = Trader::new(&orb);
    trader.add_type(ServiceTypeDef::new("TeleDii")).unwrap();
    let svc = orb
        .activate(
            "svc",
            ServantFn::new("TeleDii", |op, _| match op {
                "ping" => Ok(Value::from("pong")),
                other => Err(adapta::orb::OrbError::unknown_operation("TeleDii", other)),
            }),
        )
        .unwrap();
    trader.export(ExportRequest::new("TeleDii", svc)).unwrap();

    let repo = InterfaceRepository::new();
    let proxy = SmartProxy::builder(&orb, &repo, Arc::new(trader), "TeleDii")
        .build()
        .unwrap();
    for _ in 0..4 {
        assert_eq!(proxy.invoke("ping", vec![]).unwrap(), Value::from("pong"));
    }

    // Plain DII against the well-known `_telemetry` key.
    let telemetry = orb.proxy(&ObjRef::new(orb.endpoint(), "_telemetry", "Telemetry"));
    let json = telemetry.invoke("snapshot", vec![]).unwrap();
    let json = json.as_str().unwrap();
    // Per-operation latency quantiles…
    assert!(
        json.contains("\"orb.server.op.ping.latency\""),
        "snapshot missing per-op histogram: {json}"
    );
    let hist_section = json
        .split("\"orb.server.op.ping.latency\":")
        .nth(1)
        .unwrap();
    for field in ["\"count\":", "\"p50_us\":", "\"p99_us\":", "\"max_us\":"] {
        assert!(hist_section.starts_with('{') && hist_section.contains(field));
    }
    // …and the smart proxy's queue metrics.
    assert!(
        json.contains("\"smartproxy.TeleDii.queue_depth\""),
        "snapshot missing smart-proxy gauge: {json}"
    );

    // Scalar lookups work too (what a Rua script calls).
    let depth = telemetry
        .invoke("gauge", vec![Value::from("smartproxy.TeleDii.queue_depth")])
        .unwrap();
    assert_eq!(depth, Value::Long(0));
    let served = telemetry
        .invoke("counter", vec![Value::from("orb.tele-dii.requests_served")])
        .unwrap();
    assert!(matches!(served, Value::Long(n) if n >= 4));
}
