//! Composite properties and events (Section III):
//!
//! "Each monitor in our infrastructure observes the value of a single
//! property. However, both the code for evaluating a property and the
//! code for diagnosing an event can contain references to other
//! monitors, thus allowing the construction of arbitrarily complex
//! composite properties and events."
//!
//! Here a *cluster-load* monitor's update function invokes two remote
//! host monitors through script-side proxies, and an event predicate
//! combines the composite value with an aspect of a third monitor.

use std::time::Duration;

use adapta::core::script_env;
use adapta::idl::{InterfaceRepository, Value};
use adapta::monitor::{Monitor, MonitorHost, MonitorServant, ScriptActor};
use adapta::orb::Orb;
use adapta::sim::{SimTime, VirtualClock};

fn host_monitor(orb: &Orb, name: &str, load: f64) -> (Monitor, adapta::orb::ObjRef) {
    let actor = ScriptActor::spawn(name, |_| {});
    let monitor = Monitor::builder("LoadAvg")
        .source_native(move |_| Value::from(load))
        .build(&actor, orb)
        .unwrap();
    monitor.tick(SimTime::ZERO);
    let objref = orb
        .activate(&format!("mon-{name}"), MonitorServant::new(monitor.clone()))
        .unwrap();
    (monitor, objref)
}

#[test]
fn composite_property_reads_other_monitors() {
    let orb = Orb::new("composite");
    orb.set_synchronous_oneway(true);
    let (_m1, ref1) = host_monitor(&orb, "comp-host1", 2.0);
    let (_m2, ref2) = host_monitor(&orb, "comp-host2", 4.0);

    // The composite monitor's script state can invoke remote objects.
    let repo = InterfaceRepository::new();
    script_env::register_monitor_interfaces(&repo);
    let orb_for_setup = orb.clone();
    let repo_for_setup = repo.clone();
    let mhost = MonitorHost::with_setup("composite-host", &orb, move |interp| {
        script_env::install(interp, orb_for_setup, repo_for_setup);
    });
    mhost
        .actor()
        .eval(&format!(
            "uri1 = '{}'\nuri2 = '{}'",
            ref1.to_uri(),
            ref2.to_uri()
        ))
        .unwrap();

    // The cluster monitor: its update function queries both host
    // monitors remotely and averages them — a composite property.
    mhost
        .eval(
            r#"
            cluster = EventMonitor:new("ClusterLoad",
                function()
                    local a = resolve(uri1):getValue()
                    local b = resolve(uri2):getValue()
                    return (a + b) / 2
                end,
                30)
        "#,
        )
        .unwrap();
    let cluster = mhost.monitor("ClusterLoad").unwrap();
    cluster.tick(SimTime::ZERO);
    assert_eq!(cluster.value(), Value::Long(3)); // (2 + 4) / 2

    // Composite *event*: fires only when the cluster average exceeds a
    // limit AND host2 individually exceeds its own.
    mhost
        .eval(
            r#"
            fired = 0
            obs = {notifyEvent = function(self, e) fired = fired + 1 end}
            cluster:attachEventObserver(obs, "ClusterHot",
                [[function(observer, value, monitor)
                    local worst = resolve(uri2):getValue()
                    return value > 2.5 and worst > 3.5
                end]])
        "#,
        )
        .unwrap();
    cluster.tick(SimTime::ZERO);
    assert_eq!(
        mhost.eval("return fired").unwrap(),
        vec![Value::Long(1)],
        "composite event must fire: avg 3 > 2.5 and host2 4 > 3.5"
    );
}

#[test]
fn composite_follows_live_changes_of_its_parts() {
    let orb = Orb::new("composite-live");
    orb.set_synchronous_oneway(true);
    let clock = VirtualClock::new();

    // Two host monitors whose values are settable.
    let actor = ScriptActor::spawn("comp-live-parts", |_| {});
    let m1 = Monitor::builder("LoadAvg")
        .initial(Value::from(1.0))
        .build(&actor, &orb)
        .unwrap();
    let m2 = Monitor::builder("LoadAvg")
        .initial(Value::from(1.0))
        .build(&actor, &orb)
        .unwrap();
    let r1 = orb.activate("p1", MonitorServant::new(m1.clone())).unwrap();
    let r2 = orb.activate("p2", MonitorServant::new(m2.clone())).unwrap();

    let repo = InterfaceRepository::new();
    script_env::register_monitor_interfaces(&repo);
    let orb_for_setup = orb.clone();
    let mhost = MonitorHost::with_setup("comp-live", &orb, move |interp| {
        script_env::install(interp, orb_for_setup, repo);
    });
    mhost
        .actor()
        .eval(&format!("u1 = '{}'\nu2 = '{}'", r1.to_uri(), r2.to_uri()))
        .unwrap();
    mhost
        .eval(
            r#"sum = EventMonitor:new("Sum",
                function() return resolve(u1):getValue() + resolve(u2):getValue() end, 5)"#,
        )
        .unwrap();
    let sum = mhost.monitor("Sum").unwrap();

    sum.tick(clock_now(&clock));
    assert_eq!(sum.value(), Value::Long(2));

    m1.set_value(Value::from(10.0));
    m2.set_value(Value::from(20.0));
    clock.advance(Duration::from_secs(5));
    sum.tick(clock_now(&clock));
    assert_eq!(sum.value(), Value::Long(30));
}

fn clock_now(clock: &VirtualClock) -> SimTime {
    use adapta::sim::Clock as _;
    clock.now()
}

#[test]
fn monitor_composition_errors_fail_soft() {
    // If a referenced monitor is unreachable, the composite's update
    // errors are counted and the previous value survives.
    let orb = Orb::new("composite-dead");
    let repo = InterfaceRepository::new();
    script_env::register_monitor_interfaces(&repo);
    let orb_for_setup = orb.clone();
    let mhost = MonitorHost::with_setup("comp-dead", &orb, move |interp| {
        script_env::install(interp, orb_for_setup, repo);
    });
    mhost
        .eval(
            r#"m = EventMonitor:new("X",
                function()
                    return resolve("adapta-ref:inproc://vanished;k;T"):getValue()
                end, 5)"#,
        )
        .unwrap();
    let m = mhost.monitor("X").unwrap();
    m.set_value(Value::from(7.0));
    m.tick(SimTime::ZERO);
    assert_eq!(m.value(), Value::from(7.0), "stale value survives");
    assert_eq!(m.errors(), 1);
}
