//! Chaos tests: the robustness tentpole end to end.
//!
//! Fault injection ([`FaultPlan`] rules on the client orb's outgoing
//! route), the recovery policy (retry with decorrelated-jitter backoff
//! plus per-target circuit breakers in [`SmartProxy`]), offer liveness
//! (leases and the quarantine sweeper) and graceful orb shutdown
//! (drain-then-stop, offer withdrawal, retryable wakeups) — exercised
//! together, the way a deployment would hit them.
//!
//! `ci.sh --chaos` runs this file plus the `exp_chaos` experiment.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adapta::core::{BreakerConfig, RetryPolicy, SmartProxy};
use adapta::idl::{InterfaceRepository, TypeCode, Value};
use adapta::orb::{FaultAction, FaultRule, ObjRef, Orb, OrbError, ServantFn};
use adapta::telemetry::registry;
use adapta::trading::{ExportRequest, PropDef, PropMode, Query, ServiceTypeDef, Trader};

/// A TCP echo server for chaos runs: answers `ping` with `pong` and
/// sleeps `slow_for` on the `slow` operation.
fn tcp_server(name: &str, interface: &str, slow_for: Duration) -> (Orb, String) {
    let orb = Orb::new(name);
    orb.activate(
        "svc",
        ServantFn::new(interface, move |op, args| match op {
            "slow" => {
                std::thread::sleep(slow_for);
                Ok(Value::from("slow-pong"))
            }
            "echo" => Ok(Value::Seq(args)),
            _ => Ok(Value::from("pong")),
        }),
    )
    .unwrap();
    let endpoint = orb.listen_tcp("127.0.0.1:0").unwrap();
    (orb, endpoint)
}

/// Builds a client orb + trader + smart proxy over the given TCP
/// targets, ranked in the order given (first = most preferred).
fn chaos_proxy(
    client_name: &str,
    service: &str,
    targets: &[&str],
    configure: impl FnOnce(adapta::core::SmartProxyBuilder) -> adapta::core::SmartProxyBuilder,
) -> (Orb, SmartProxy) {
    let orb = Orb::new(client_name);
    let trader = Trader::new(&orb);
    trader
        .add_type(ServiceTypeDef::new(service).with_property(PropDef::new(
            "Rank",
            TypeCode::Long,
            PropMode::Normal,
        )))
        .unwrap();
    for (i, endpoint) in targets.iter().enumerate() {
        let target = ObjRef::new(*endpoint, "svc", service);
        trader
            .export(
                ExportRequest::new(service, target)
                    .with_property("Rank", Value::Long((targets.len() - i) as i64)),
            )
            .unwrap();
    }
    let repo = InterfaceRepository::new();
    let builder =
        SmartProxy::builder(&orb, &repo, Arc::new(trader), service).preference("max Rank");
    let proxy = configure(builder).build().unwrap();
    (orb, proxy)
}

/// Acceptance (ISSUE 3): with ≥20% of messages to the preferred
/// endpoint dropped and another slice delayed, a smart proxy armed
/// with a retry policy and a circuit breaker completes 100% of calls.
#[test]
fn retry_and_breaker_ride_out_a_fault_storm() {
    let (_flaky, flaky_ep) = tcp_server("chaos-flaky", "StormSvc", Duration::ZERO);
    let (_stable, stable_ep) = tcp_server("chaos-stable", "StormSvc", Duration::ZERO);

    let (orb, proxy) = chaos_proxy(
        "chaos-storm-client",
        "StormSvc",
        &[&flaky_ep, &stable_ep],
        |b| {
            b.retry_policy(
                RetryPolicy::new(6)
                    .base(Duration::from_millis(2))
                    .cap(Duration::from_millis(10)),
            )
            .circuit_breaker(BreakerConfig {
                window: 6,
                min_calls: 3,
                failure_threshold: 0.5,
                open_for: Duration::from_millis(40),
            })
            .dead_target_ttl(Duration::from_millis(5))
        },
    );

    // 35% of frames to the preferred endpoint vanish, 20% more crawl.
    let plan = orb.fault_plan();
    plan.add(FaultRule::new(flaky_ep.clone(), "*", FaultAction::Drop).probability(0.35));
    plan.add(
        FaultRule::new(
            flaky_ep.clone(),
            "*",
            FaultAction::Delay(Duration::from_millis(3)),
        )
        .probability(0.2),
    );

    const CALLS: usize = 150;
    let mut ok = 0;
    for _ in 0..CALLS {
        if proxy.invoke("ping", vec![]).is_ok() {
            ok += 1;
        }
    }
    assert_eq!(ok, CALLS, "the recovery policy must absorb every fault");
    assert!(plan.injected() > 0, "the storm never actually fired");
    assert!(
        proxy.retries() > 0,
        "surviving a 35% drop rate requires retries"
    );
}

/// The breaker's full state ride, observed through the metrics
/// registry: repeated failures open it, the cooldown elapses into a
/// half-open probe, and a successful probe closes it again.
#[test]
fn breaker_opens_and_recovers_through_half_open() {
    let (_server, endpoint) = tcp_server("chaos-brk", "BrkSvc", Duration::ZERO);
    let (orb, proxy) = chaos_proxy("chaos-brk-client", "BrkSvc", &[&endpoint], |b| {
        b.retry_policy(
            RetryPolicy::new(100)
                .base(Duration::from_millis(5))
                .cap(Duration::from_millis(10)),
        )
        .circuit_breaker(BreakerConfig {
            window: 4,
            min_calls: 2,
            failure_threshold: 0.5,
            open_for: Duration::from_millis(25),
        })
        .dead_target_ttl(Duration::from_millis(1))
    });

    // The first five frames die, then the endpoint heals (a budgeted
    // rule is a schedule, not a coin flip).
    orb.fault_plan()
        .add(FaultRule::new(endpoint.clone(), "*", FaultAction::Drop).budget(5));

    let out = proxy.invoke("ping", vec![]).unwrap();
    assert_eq!(out, Value::from("pong"));

    let snap = registry().snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    assert!(
        c("proxy.BrkSvc.breaker.opened") >= 1,
        "breaker never opened"
    );
    assert!(
        c("proxy.BrkSvc.breaker.half_open") >= 1,
        "breaker never probed half-open"
    );
    assert!(
        c("proxy.BrkSvc.breaker.closed") >= 1,
        "breaker never closed after recovery"
    );
    assert_eq!(
        proxy.breaker_state(&proxy.current_target().unwrap()),
        Some(adapta::core::BreakerState::Closed)
    );
}

/// Acceptance (ISSUE 3): `Orb::shutdown` loses zero accepted in-flight
/// requests — every call already being dispatched completes with its
/// reply before the transports close.
#[test]
fn shutdown_drains_inflight_requests_losslessly() {
    let (server, endpoint) = tcp_server("chaos-drain", "DrainSvc", Duration::from_millis(80));
    let client = Orb::new("chaos-drain-client");
    let target = ObjRef::new(endpoint, "svc", "DrainSvc");
    // Warm the pooled connection so every thread is in-flight fast.
    client.invoke_ref(&target, "echo", vec![]).unwrap();

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let client = client.clone();
            let target = target.clone();
            std::thread::spawn(move || client.invoke_ref(&target, "slow", vec![]))
        })
        .collect();
    // Let all six requests reach the servant, then pull the plug.
    std::thread::sleep(Duration::from_millis(30));
    assert!(
        server.shutdown(Duration::from_secs(2)),
        "drain must finish within the deadline"
    );
    for h in handles {
        assert_eq!(
            h.join().unwrap().unwrap(),
            Value::from("slow-pong"),
            "an accepted in-flight request was lost by shutdown"
        );
    }
    // The stopped node refuses further work.
    assert!(client.invoke_ref(&target, "ping", vec![]).is_err());
}

/// Callers that arrive while the node is draining are woken promptly
/// with the retryable `ShuttingDown` error instead of hanging until
/// their deadline.
#[test]
fn late_callers_get_a_prompt_retryable_shutdown_error() {
    let (server, endpoint) = tcp_server("chaos-late", "LateSvc", Duration::from_millis(250));
    let client = Orb::new("chaos-late-client");
    let target = ObjRef::new(endpoint, "svc", "LateSvc");
    client.invoke_ref(&target, "echo", vec![]).unwrap();

    let inflight = {
        let client = client.clone();
        let target = target.clone();
        std::thread::spawn(move || client.invoke_ref(&target, "slow", vec![]))
    };
    std::thread::sleep(Duration::from_millis(40));
    let drainer = std::thread::spawn(move || server.shutdown(Duration::from_secs(2)));
    std::thread::sleep(Duration::from_millis(40));

    // This request lands on a draining node: rejected, not executed.
    let started = Instant::now();
    let err = client.invoke_ref(&target, "ping", vec![]).unwrap_err();
    assert!(
        matches!(err, OrbError::ShuttingDown),
        "expected ShuttingDown, got: {err}"
    );
    assert!(err.is_retryable(), "shutdown rejections must be retryable");
    assert!(
        started.elapsed() < Duration::from_millis(150),
        "draining node kept a doomed caller waiting {:?}",
        started.elapsed()
    );

    // The earlier in-flight call still completes, and the drain reports
    // success.
    assert_eq!(inflight.join().unwrap().unwrap(), Value::from("slow-pong"));
    assert!(drainer.join().unwrap());
}

/// A gracefully stopping node withdraws its offers from the trader in
/// the shutdown-hook window (the `ServiceAgent` wiring), so importers
/// stop selecting it before its transports close.
#[test]
fn graceful_shutdown_withdraws_the_nodes_offers() {
    let trader_orb = Orb::new("chaos-withdraw-trader");
    let trader = Trader::new(&trader_orb);
    trader.add_type(ServiceTypeDef::new("WdSvc")).unwrap();

    let exporter = Orb::new("chaos-withdraw-exporter");
    let svc = exporter
        .activate(
            "svc",
            ServantFn::new("WdSvc", |_, _| Ok(Value::from("pong"))),
        )
        .unwrap();
    let agent = adapta::core::ServiceAgent::new(&exporter, Arc::new(trader.clone()));
    agent.announce(ExportRequest::new("WdSvc", svc)).unwrap();
    assert_eq!(trader.query(&Query::new("WdSvc")).unwrap().len(), 1);

    assert!(exporter.shutdown(Duration::from_secs(1)));
    assert!(
        trader.query(&Query::new("WdSvc")).unwrap().is_empty(),
        "a drained node's offers must not outlive it"
    );

    // An exporter that crashed *without* the courtesy of a shutdown is
    // caught by the liveness sweeper instead.
    let ghost = ObjRef::new("inproc://chaos-withdraw-ghost", "svc", "WdSvc");
    let id = trader.export(ExportRequest::new("WdSvc", ghost)).unwrap();
    trader.sweep_liveness(Duration::from_millis(50));
    assert_eq!(trader.quarantined_offers(), vec![id]);
    assert!(trader.query(&Query::new("WdSvc")).unwrap().is_empty());
}

/// Satellite regression: a retried call honors the *overall*
/// `call_deadline` budget — the per-attempt deadline must not reset on
/// every retry, or a 150 ms budget turns into attempts × 150 ms.
#[test]
fn retries_honor_the_overall_call_deadline() {
    let (_server, endpoint) = tcp_server("chaos-budget", "BudgetSvc", Duration::ZERO);
    let (orb, proxy) = chaos_proxy("chaos-budget-client", "BudgetSvc", &[&endpoint], |b| {
        b.call_deadline(Duration::from_millis(150))
            .retry_policy(
                RetryPolicy::new(10_000)
                    .base(Duration::from_millis(2))
                    .cap(Duration::from_millis(4)),
            )
            .dead_target_ttl(Duration::from_millis(1))
    });
    // Every frame dies: only the deadline can end this call.
    orb.fault_plan()
        .add(FaultRule::new(endpoint, "*", FaultAction::Drop));

    let started = Instant::now();
    let err = proxy.invoke("ping", vec![]).unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(100),
        "gave up suspiciously early ({elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_millis(800),
        "a 150ms budget ran for {elapsed:?}: the deadline reset per attempt"
    );
    assert!(
        err.to_string().contains("deadline") || err.to_string().contains("retries"),
        "unexpected terminal error: {err}"
    );
}

/// Satellite: `Trader::withdraw` must linearize against concurrent
/// queries — once a withdraw has acknowledged, no query started after
/// that point may return the offer, even though queries spend
/// milliseconds inside dynamic-property evaluation.
#[test]
fn withdraw_never_resurrects_offers_under_concurrent_queries() {
    let orb = Orb::new("chaos-withdraw-race");
    let trader = Trader::new(&orb);
    trader
        .add_type(ServiceTypeDef::new("RaceSvc").with_property(PropDef::new(
            "Load",
            TypeCode::Double,
            PropMode::Normal,
        )))
        .unwrap();
    // A deliberately slow dynamic-property evaluator: each query holds
    // a wide window between its candidate snapshot and its reply.
    let eval_ref = orb
        .activate(
            "dp",
            ServantFn::new("DynamicPropEval", |_, _| {
                std::thread::sleep(Duration::from_micros(200));
                Ok(Value::Double(1.0))
            }),
        )
        .unwrap();

    const OFFERS: usize = 40;
    let mut ids = Vec::new();
    for i in 0..OFFERS {
        ids.push(
            trader
                .export(
                    ExportRequest::new(
                        "RaceSvc",
                        ObjRef::new(
                            "inproc://chaos-withdraw-race",
                            format!("svc-{i}"),
                            "RaceSvc",
                        ),
                    )
                    .with_dynamic_property("Load", eval_ref.clone()),
                )
                .unwrap(),
        );
    }

    let withdrawn = Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
    let done = Arc::new(AtomicBool::new(false));
    let mut queriers = Vec::new();
    for _ in 0..3 {
        let trader = trader.clone();
        let withdrawn = withdrawn.clone();
        let done = done.clone();
        queriers.push(std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                // Snapshot BEFORE the query starts: everything in it was
                // acknowledged as withdrawn before this query began.
                let acked: std::collections::HashSet<String> = withdrawn.lock().unwrap().clone();
                let matches = trader
                    .query(&Query::new("RaceSvc").constraint("Load < 50"))
                    .unwrap();
                for m in &matches {
                    assert!(
                        !acked.contains(m.id.as_str()),
                        "query returned `{}` after its withdraw acked",
                        m.id
                    );
                }
            }
        }));
    }

    for id in &ids {
        trader.withdraw(id).unwrap();
        // Only after the ack does the offer enter the forbidden set.
        withdrawn.lock().unwrap().insert(id.as_str().to_owned());
        std::thread::sleep(Duration::from_millis(1));
    }
    done.store(true, Ordering::Relaxed);
    for q in queriers {
        q.join().unwrap();
    }
    assert!(trader.query(&Query::new("RaceSvc")).unwrap().is_empty());
}

/// The `_faults` servant: chaos toggled remotely at runtime, no
/// restart, no recompilation.
#[test]
fn fault_servant_scripts_chaos_remotely() {
    let orb = Orb::new("chaos-servant");
    orb.activate("svc", ServantFn::new("Tgt", |_, _| Ok(Value::from("pong"))))
        .unwrap();
    let target = ObjRef::new(orb.endpoint(), "svc", "Tgt");
    let faults = ObjRef::new(orb.endpoint(), "_faults", "FaultInjector");

    // Inject an error fault against `ping` only — the injector's own
    // operations stay clean.
    orb.invoke_ref(
        &faults,
        "inject",
        vec![
            Value::from("*"),
            Value::from("ping"),
            Value::from("error:chaos-monkey"),
        ],
    )
    .unwrap();
    let err = orb.invoke_ref(&target, "ping", vec![]).unwrap_err();
    assert!(
        err.to_string().contains("chaos-monkey"),
        "injected error missing: {err}"
    );
    assert_eq!(
        orb.invoke_ref(&target, "echo", vec![]).unwrap(),
        Value::from("pong"),
        "unmatched operations must pass through"
    );

    // And heal the node remotely.
    orb.invoke_ref(&faults, "clear", vec![]).unwrap();
    assert_eq!(
        orb.invoke_ref(&target, "ping", vec![]).unwrap(),
        Value::from("pong")
    );
}

/// Offer leases ride the wire: exported with a TTL through the trader
/// servant, expiring unless renewed.
#[test]
fn leased_offers_expire_over_the_wire_unless_renewed() {
    use adapta::trading::{RemoteTrader, TradingService};

    let trader_orb = Orb::new("chaos-lease-trader");
    let trader = Trader::new(&trader_orb);
    trader.add_type(ServiceTypeDef::new("LeaseSvc")).unwrap();
    let trader_ref = trader_orb
        .activate(
            "trader",
            adapta::trading::TraderServant::new(trader.clone()),
        )
        .unwrap();
    let client_orb = Orb::new("chaos-lease-client");
    let remote = RemoteTrader::new(client_orb.proxy(&trader_ref));

    let exporter_target = ObjRef::new("inproc://chaos-lease-client", "svc", "LeaseSvc");
    let id = remote
        .export(
            ExportRequest::new("LeaseSvc", exporter_target).with_lease(Duration::from_millis(40)),
        )
        .unwrap();
    assert_eq!(remote.query(&Query::new("LeaseSvc")).unwrap().len(), 1);

    // Two renewals keep it alive past several TTLs…
    for _ in 0..2 {
        std::thread::sleep(Duration::from_millis(25));
        remote.renew(&id, None).unwrap();
    }
    assert_eq!(remote.query(&Query::new("LeaseSvc")).unwrap().len(), 1);

    // …then the exporter goes quiet and the lease runs out.
    std::thread::sleep(Duration::from_millis(55));
    assert!(remote.query(&Query::new("LeaseSvc")).unwrap().is_empty());
    trader.sweep_liveness(Duration::from_millis(20));
    assert!(trader.list_offers().is_empty(), "expired lease not swept");
    assert!(
        remote.renew(&id, None).is_err(),
        "swept offers cannot renew"
    );
}
