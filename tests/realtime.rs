//! Wall-clock mode: the same stack driven by real time — monitor
//! driver threads, asynchronous oneway notifications — as it would run
//! in a deployment rather than a simulation. Periods are milliseconds
//! so the test stays fast.

use std::sync::Arc;
use std::time::Duration;

use adapta::idl::Value;
use adapta::monitor::{Monitor, MonitorDriver, MonitorServant, ScriptActor};
use adapta::orb::{Orb, ServantFn};
use adapta::sim::{Clock, RealClock};

#[test]
fn monitor_driver_detects_events_in_real_time() {
    let server = Orb::new("rt-server");
    let client = Orb::new("rt-client");
    let actor = ScriptActor::spawn("rt", |_| {});
    let clock: Arc<dyn Clock> = Arc::new(RealClock::new());

    // The monitored "load" rises with wall time.
    let clock_for_source = clock.clone();
    let monitor = Monitor::builder("Load")
        .source_native(move |_| Value::from(clock_for_source.now().as_secs_f64() * 1000.0))
        .build(&actor, &server)
        .unwrap();
    let monitor_ref = server
        .activate("mon", MonitorServant::new(monitor.clone()))
        .unwrap();

    // A remote observer notified over (async) oneway.
    let notified = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let notified_clone = notified.clone();
    let observer = client
        .activate(
            "obs",
            ServantFn::new("EventObserver", move |_, _| {
                notified_clone.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(Value::Null)
            }),
        )
        .unwrap();
    client
        .proxy(&monitor_ref)
        .invoke(
            "attachEventObserver",
            vec![
                Value::ObjRef(observer),
                Value::from("Rising"),
                Value::from("function(o, v, m) return v > 20 end"),
            ],
        )
        .unwrap();

    // Drive in real time at 5 ms.
    let driver = MonitorDriver::start(monitor.clone(), clock, Duration::from_millis(5));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while notified.load(std::sync::atomic::Ordering::Relaxed) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no notification within 5s (ticks: {}, errors: {})",
            monitor.ticks(),
            monitor.errors()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    driver.stop();
    assert!(monitor.ticks() > 0);
}

#[test]
fn tcp_and_real_time_together() {
    // A monitor served over TCP, polled by a remote client in real time.
    let server = Orb::new("rt-tcp-server");
    let endpoint = server.listen_tcp("127.0.0.1:0").unwrap();
    let actor = ScriptActor::spawn("rt-tcp", |_| {});
    let monitor = Monitor::builder("Temp")
        .source_native(|_| Value::from(21.5))
        .build(&actor, &server)
        .unwrap();
    server
        .activate("mon", MonitorServant::new(monitor.clone()))
        .unwrap();
    let clock: Arc<dyn Clock> = Arc::new(RealClock::new());
    let _driver = MonitorDriver::start(monitor, clock, Duration::from_millis(5));

    let client = Orb::new("rt-tcp-client");
    let proxy = client.proxy(&adapta::orb::ObjRef::new(endpoint, "mon", "EventMonitor"));
    // Poll until the driver has produced a value.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let v = proxy.invoke("getValue", vec![]).unwrap();
        if v == Value::from(21.5) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "value never arrived");
        std::thread::sleep(Duration::from_millis(5));
    }
}
