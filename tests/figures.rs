//! Reproduction of every figure in the paper, as executable code.
//!
//! * Figure 1 — the `AspectsManager` IDL, parsed verbatim and exercised
//!   over the ORB;
//! * Figure 2 — the `EventMonitor`/`EventObserver` IDL, including the
//!   `oneway notifyEvent` callback;
//! * Figure 3 — the LoadAverage event monitor listing, running verbatim
//!   as Rua source against a synthetic `/proc/loadavg`;
//! * Figure 4 — the event-observer attachment with a remote-evaluation
//!   predicate, verbatim;
//! * Figures 5 and 6 — the smart-proxy/architecture topology, exercised
//!   end to end in `tests/infrastructure.rs`;
//! * Figure 7 — the `LoadIncrease` adaptation strategy, installed
//!   verbatim through `smartproxy._strategies`.

use std::sync::Arc;
use std::time::Duration;

use adapta::core::{policies::LoadSharingConfig, Infrastructure, ServerSpec, Subscription};
use adapta::idl::{parse_idl, TypeCode, Value};
use adapta::monitor::{load_average_monitor, loadavg_reader, MonitorHost};
use adapta::orb::Orb;
use adapta::sim::{Clock, SimHost, VirtualClock};

/// Figure 1, verbatim (modulo the undeclared helper types, which the
/// parser maps to `any` — see `adapta-idl` docs).
const FIG1_IDL: &str = r#"
interface AspectsManager {
    PropertyValue getAspectValue(in AspectName name);
    AspectList definedAspects();
    void defineAspect(in AspectName name, in LuaCode updatef);
};
"#;

/// Figure 2, verbatim (with `BasicMonitor` declared so the base
/// resolves).
const FIG2_IDL: &str = r#"
interface BasicMonitor {
    any getValue();
    void setValue(in any v);
};
interface EventObserver {
    oneway void notifyEvent(in EventID evid);
};
interface EventMonitor : BasicMonitor {
    EventObserverID attachEventObserver(in EventObserver obj,
                                        in EventID evid,
                                        in LuaCode notifyf);
    void detachEventObserver(in EventObserverID id);
};
"#;

#[test]
fn fig1_aspects_manager_idl_round_trip() {
    let defs = parse_idl(FIG1_IDL).expect("figure 1 parses verbatim");
    assert_eq!(defs.len(), 1);
    let am = &defs[0];
    assert_eq!(am.name, "AspectsManager");
    let names: Vec<_> = am.operations.iter().map(|o| o.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["getAspectValue", "definedAspects", "defineAspect"]
    );
    assert_eq!(am.operation("defineAspect").unwrap().result, TypeCode::Void);

    // The interface is usable through the repository for dynamic
    // invocation checking.
    let repo = adapta::idl::InterfaceRepository::new();
    repo.register_all(defs).unwrap();
    let op = repo
        .lookup_operation("AspectsManager", "defineAspect")
        .unwrap();
    assert!(op
        .check_args(&[Value::from("Increasing"), Value::from("function() end")])
        .is_ok());
    assert!(op.check_args(&[Value::from("just-one")]).is_err());
}

#[test]
fn fig2_event_monitor_idl_round_trip() {
    let defs = parse_idl(FIG2_IDL).expect("figure 2 parses verbatim");
    let repo = adapta::idl::InterfaceRepository::new();
    repo.register_all(defs).unwrap();

    // notifyEvent is oneway void.
    let notify = repo
        .lookup_operation("EventObserver", "notifyEvent")
        .unwrap();
    assert!(notify.oneway);
    assert_eq!(notify.result, TypeCode::Void);

    // EventMonitor inherits BasicMonitor's operations.
    assert!(repo.lookup_operation("EventMonitor", "getValue").is_ok());
    assert!(repo.is_a("EventMonitor", "BasicMonitor"));
}

fn fig3_setup(node: &str) -> (VirtualClock, SimHost, MonitorHost) {
    let orb = Orb::new(node);
    orb.set_synchronous_oneway(true);
    let clock = VirtualClock::new();
    let host = SimHost::new(format!("{node}-host"), Duration::from_millis(20));
    let reader = loadavg_reader(host.clone(), Arc::new(clock.clone()));
    let mhost = MonitorHost::with_setup(node, &orb, move |interp| {
        interp.set_reader(reader);
    });
    (clock, host, mhost)
}

#[test]
fn fig3_load_average_monitor_runs_verbatim() {
    let (clock, host, mhost) = fig3_setup("fig3");
    // The listing itself lives in adapta-monitor as
    // LOAD_AVERAGE_MONITOR_SOURCE; load_average_monitor evals it.
    let monitor = load_average_monitor(&mhost).expect("figure 3 source runs");

    // A loaded machine for two minutes.
    host.set_background(clock.now(), 4.0);
    clock.advance(Duration::from_secs(120));
    monitor.tick(clock.now());

    // The property is the {1min, 5min, 15min} table of Figure 3.
    let value = monitor.value();
    let seq = value.as_seq().expect("three-tuple value");
    assert_eq!(seq.len(), 3);
    let one = seq[0].as_double().unwrap();
    let five = seq[1].as_double().unwrap();
    assert!(one > five, "rising load: {one} vs {five}");
    // The "Increasing" aspect defined in lines 14-21.
    assert_eq!(monitor.aspect_value("Increasing"), Some(Value::from("yes")));
}

#[test]
fn fig4_event_observer_attachment_runs_verbatim() {
    let (clock, host, mhost) = fig3_setup("fig4");
    load_average_monitor(&mhost).unwrap();

    // Figure 4, verbatim: a local observer and the event-diagnosing
    // function shipped as a string.
    mhost
        .eval(
            r#"
            notified = 0
            eventobserver = {notifyEvent = function(self, event)
                notified = notified + 1
            end}

            function_code = [[function(observer, value, monitor)
                local incr
                incr = monitor:getAspectValue("Increasing")
                return value[1] > 50 and incr == "yes"
            end]]

            mon = __lmon
            mon:attachEventObserver(
                eventobserver,
                "LoadIncrease",
                function_code)
        "#,
        )
        .expect("figure 4 source runs");

    // Low load: no notification.
    host.set_background(clock.now(), 2.0);
    clock.advance(Duration::from_secs(120));
    mhost.tick_all(clock.now());
    assert_eq!(mhost.eval("return notified").unwrap(), vec![Value::Long(0)]);

    // Load beyond the 50 threshold and increasing: notify.
    host.set_background(clock.now(), 80.0);
    clock.advance(Duration::from_secs(300));
    mhost.tick_all(clock.now());
    assert_eq!(mhost.eval("return notified").unwrap(), vec![Value::Long(1)]);
}

/// Figure 7, verbatim: the adaptation strategy for LoadIncrease events.
const FIG7_SOURCE: &str = r#"
smartproxy._strategies = {
    LoadIncrease = function(self)
        -- get the current load average
        self._loadavg = self._loadavgmon:getvalue()

        -- look for an alternative server
        local query
        query = "LoadAvg < 50 and LoadAvgIncreasing == no "
        if not self:_select(query) then
            self._loadavgmon:attachEventObserver(
                self._observer,
                "LoadIncrease",
                [[function(self, value, monitor)
                    local incr
                    incr = monitor:getAspectValue("Increasing")
                    return value[1] > 70 and incr == "yes"
                end]])
        end
    end
}
"#;

#[test]
fn fig7_strategy_reselects_and_relaxes_verbatim() {
    let infra = Infrastructure::in_process().unwrap();
    infra
        .spawn_server(ServerSpec::echo("Fig7Svc", "fig7-a"))
        .unwrap();
    infra
        .spawn_server(ServerSpec::echo("Fig7Svc", "fig7-b"))
        .unwrap();

    let cfg = LoadSharingConfig::default(); // thresholds 50/70, as in the figures
    let proxy = infra
        .smart_proxy("Fig7Svc")
        .constraint(cfg.constraint())
        .preference("min LoadAvg")
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            cfg.predicate(50.0),
        ))
        .build()
        .unwrap();
    proxy
        .install_strategies_script(FIG7_SOURCE)
        .expect("figure 7 source installs");

    let first = proxy.invoke("whoami", vec![]).unwrap();
    let first_host = first.as_str().unwrap().to_owned();

    // Overload the bound host beyond 50; the 1-minute average rises
    // first so "Increasing" is yes.
    infra.set_background(&first_host, 80.0);
    infra.advance_in_steps(Duration::from_secs(240), Duration::from_secs(30));

    // Next invocation applies the queued strategy: the verbatim Fig. 7
    // code queries the trader and switches servers.
    let second = proxy.invoke("whoami", vec![]).unwrap();
    assert_ne!(second.as_str().unwrap(), first_host, "strategy must rebind");
    assert!(proxy.events_received() > 0);

    // Now overload *both* hosts beyond 50 (but the strategy's relaxed
    // threshold is 70): no alternative fits, so Fig. 7 lines 10-17
    // re-attach the observer with the 70 threshold on the current
    // monitor.
    let second_host = second.as_str().unwrap().to_owned();
    let before = infra
        .server(&second_host)
        .unwrap()
        .monitor()
        .observer_count();
    infra.set_background(&first_host, 60.0);
    infra.set_background(&second_host, 60.0);
    infra.advance_in_steps(Duration::from_secs(240), Duration::from_secs(30));
    let third = proxy.invoke("whoami", vec![]).unwrap();
    // Still bound (to either host; no better option), with the extra
    // relaxed observer installed.
    let third_host = third.as_str().unwrap().to_owned();
    let after = infra
        .server(&third_host)
        .unwrap()
        .monitor()
        .observer_count();
    assert!(
        after > before || third_host != second_host,
        "expected the relaxed observer (Fig. 7) or a legitimate rebind; \
         observers before={before} after={after}"
    );
    // The strategy stored the load average it read on the facade.
    let stored = proxy
        .actor()
        .eval("return smartproxy._loadavg[1] ~= nil")
        .unwrap();
    assert_eq!(stored, vec![Value::Bool(true)]);
}
