//! Thread-safety and transport-concurrency tests: concurrent clients
//! hammering smart proxies, monitors ticking from another thread,
//! notifications racing with invocations — plus the multiplexed TCP
//! transport's guarantees (pipelining on one connection, per-call
//! deadlines that don't poison the pool, oneway/two-way interleaving).
//!
//! `ci.sh --stress` runs this file with `STRESS_ITERS` set, scaling
//! the iteration counts up to shake out transport races.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adapta::core::{Infrastructure, ServerSpec, Subscription};
use adapta::idl::Value;
use adapta::orb::{InvokeOptions, ObjRef, Orb, OrbError, ServantFn};

/// Multiplies `base` by the `STRESS_ITERS` environment variable when
/// set (the `ci.sh --stress` mode), so races get far more chances to
/// bite without slowing the default run.
fn stress_iters(base: usize) -> usize {
    std::env::var("STRESS_ITERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map_or(base, |m| base * m.max(1))
}

#[test]
fn many_threads_share_one_smart_proxy() {
    let infra = Infrastructure::in_process().unwrap();
    for host in ["conc-a", "conc-b"] {
        infra
            .spawn_server(ServerSpec::echo("ConcSvc", host))
            .unwrap();
    }
    let proxy = infra
        .smart_proxy("ConcSvc")
        .preference("min LoadAvg")
        .build()
        .unwrap();

    const THREADS: usize = 8;
    const CALLS: usize = 50;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let proxy = proxy.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..CALLS {
                let out = proxy
                    .invoke("echo", vec![Value::Long((t * CALLS + i) as i64)])
                    .expect("invoke under concurrency");
                assert_eq!(out, Value::Long((t * CALLS + i) as i64));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(proxy.invocations(), (THREADS * CALLS) as u64);
}

#[test]
fn invocations_race_with_monitor_ticks_and_events() {
    let infra = Infrastructure::in_process().unwrap();
    for host in ["race-a", "race-b", "race-c"] {
        infra
            .spawn_server(ServerSpec::echo("RaceSvc", host))
            .unwrap();
    }
    let proxy = infra
        .smart_proxy("RaceSvc")
        .preference("min LoadAvg")
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            "function(o, v, m) return v[1] > 0.5 end",
        ))
        .build()
        .unwrap();

    // One thread advances time and ticks monitors (generating events),
    // while others invoke through the proxy (draining + rebinding).
    let infra_ticker = infra.clone();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_ticker = stop.clone();
    let ticker = std::thread::spawn(move || {
        let mut phase = 0u64;
        while !stop_ticker.load(std::sync::atomic::Ordering::Relaxed) {
            phase += 1;
            for (i, server) in infra_ticker.servers().into_iter().enumerate() {
                let jobs = if (phase / 3) % 3 == i as u64 {
                    4.0
                } else {
                    0.0
                };
                server.sim_host().set_background(infra_ticker.now(), jobs);
            }
            infra_ticker.advance(Duration::from_secs(30));
            std::thread::yield_now();
        }
    });

    let mut handles = Vec::new();
    for _ in 0..4 {
        let proxy = proxy.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..100 {
                proxy
                    .invoke("hello", vec![Value::from("race")])
                    .expect("invoke during adaptation");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    ticker.join().unwrap();
    assert!(proxy.invocations() >= 400);
    // Events were flowing while we invoked.
    assert!(
        proxy.events_received() > 0,
        "ticker should have caused events"
    );
}

#[test]
fn concurrent_strategy_swaps_are_safe() {
    let infra = Infrastructure::in_process().unwrap();
    infra
        .spawn_server(ServerSpec::echo("SwapRace", "swaprace-a"))
        .unwrap();
    let proxy = infra.smart_proxy("SwapRace").build().unwrap();

    let swapper = {
        let proxy = proxy.clone();
        std::thread::spawn(move || {
            for i in 0..50 {
                proxy
                    .set_strategy_script(
                        "E",
                        &format!("function(self, event) generation = {i} end"),
                    )
                    .expect("swap strategy");
            }
        })
    };
    let invoker = {
        let proxy = proxy.clone();
        std::thread::spawn(move || {
            for _ in 0..50 {
                proxy.adapt_now("E");
                proxy.invoke("hello", vec![Value::from("x")]).unwrap();
            }
        })
    };
    swapper.join().unwrap();
    invoker.join().unwrap();
    // The actor's state reflects some generation; nothing wedged.
    let gen = proxy.actor().eval("return generation or -1").unwrap();
    assert!(matches!(gen[0], Value::Long(_)));
}

// ---- multiplexed TCP transport ---------------------------------------------

/// A servant that sleeps `delay` on the `"slow"` operation and echoes
/// its arguments on everything else.
fn slow_echo_server(name: &str, delay: Duration) -> (Orb, String) {
    let server = Orb::new(name);
    server
        .activate(
            "svc",
            ServantFn::new("SlowEcho", move |op, args| {
                if op == "slow" {
                    std::thread::sleep(delay);
                    return Ok(Value::from("slow-reply"));
                }
                Ok(Value::Seq(args))
            }),
        )
        .unwrap();
    let endpoint = server.listen_tcp("127.0.0.1:0").unwrap();
    (server, endpoint)
}

/// Acceptance: 8 concurrent invocations of a 100 ms servant on one
/// endpoint must pipeline on the multiplexed connection and finish in
/// roughly one call's latency — well under the 8×100 ms a
/// lock-the-stream-per-round-trip transport would take.
#[test]
fn eight_concurrent_calls_to_a_slow_servant_pipeline() {
    let (_server, endpoint) = slow_echo_server("mux-pipe", Duration::from_millis(100));
    let client = Orb::new("mux-pipe-client");
    let target = ObjRef::new(endpoint, "svc", "SlowEcho");
    // Warm the pooled connection so the measurement sees pipelining,
    // not connection setup.
    client.invoke_ref(&target, "echo", vec![]).unwrap();

    let started = Instant::now();
    let handles: Vec<_> = (0..8i64)
        .map(|i| {
            let client = client.clone();
            let target = target.clone();
            std::thread::spawn(move || client.invoke_ref(&target, "slow", vec![Value::Long(i)]))
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap().unwrap(), Value::from("slow-reply"));
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(450),
        "8 concurrent 100ms calls took {elapsed:?}: the transport is serializing round trips"
    );
}

/// Acceptance: a deadline-expired call fails alone. The pooled
/// connection stays usable, the next call gets *its own* reply (never
/// the expired call's late one), and once the late reply trickles in it
/// is discarded without desynchronizing the stream.
#[test]
fn deadline_expiry_fails_one_call_without_poisoning_the_connection() {
    let (_server, endpoint) = slow_echo_server("mux-deadline", Duration::from_millis(300));
    let client = Orb::new("mux-deadline-client");
    let target = ObjRef::new(endpoint, "svc", "SlowEcho");
    client.invoke_ref(&target, "echo", vec![]).unwrap();

    let err = client
        .invoke_ref_with(
            &target,
            "slow",
            vec![],
            InvokeOptions::new().deadline(Duration::from_millis(50)),
        )
        .unwrap_err();
    assert!(
        matches!(err, OrbError::DeadlineExpired { .. }),
        "expected DeadlineExpired, got: {err}"
    );

    // Immediately after the expiry (the slow reply is still pending on
    // the wire) the same pooled connection must serve fresh calls with
    // their own replies.
    let out = client
        .invoke_ref(&target, "echo", vec![Value::Long(1)])
        .unwrap();
    assert_eq!(out, Value::Seq(vec![Value::Long(1)]));

    // And after the late reply has arrived (and been discarded), the
    // connection is still healthy.
    std::thread::sleep(Duration::from_millis(350));
    let out = client
        .invoke_ref(&target, "echo", vec![Value::Long(2)])
        .unwrap();
    assert_eq!(out, Value::Seq(vec![Value::Long(2)]));
}

/// Oneway and two-way traffic interleaved on one pooled connection:
/// every two-way reply matches its own request, and every oneway is
/// eventually served.
#[test]
fn oneway_and_twoway_interleave_on_one_pooled_connection() {
    let (server, endpoint) = slow_echo_server("mux-interleave", Duration::from_millis(5));
    let client = Orb::new("mux-interleave-client");
    let target = ObjRef::new(endpoint, "svc", "SlowEcho");

    let rounds = stress_iters(25);
    for i in 0..rounds as i64 {
        client
            .invoke_oneway_ref(&target, "echo", vec![Value::Long(i)])
            .unwrap();
        let out = client
            .invoke_ref(&target, "echo", vec![Value::Long(i)])
            .unwrap();
        assert_eq!(out, Value::Seq(vec![Value::Long(i)]), "round {i}");
    }

    // All oneways (plus the two-ways) land on the server eventually.
    let expected = (rounds * 2) as u64;
    for _ in 0..1000 {
        if server.stats().requests_served >= expected {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!(
        "only {} of {expected} interleaved requests served",
        server.stats().requests_served
    );
}

/// A storm of concurrent callers from many threads over one endpoint:
/// no lost replies, no cross-talk, counters add up.
#[test]
fn concurrent_tcp_callers_never_cross_talk() {
    let (_server, endpoint) = slow_echo_server("mux-storm", Duration::from_millis(1));
    let client = Orb::new("mux-storm-client");
    let target = ObjRef::new(endpoint, "svc", "SlowEcho");
    let calls = stress_iters(20);
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let client = client.clone();
            let target = target.clone();
            std::thread::spawn(move || {
                for i in 0..calls {
                    let tag = (t * 1_000_000 + i) as i64;
                    let out = client
                        .invoke_ref(&target, "echo", vec![Value::Long(tag)])
                        .expect("storm invoke");
                    assert_eq!(out, Value::Seq(vec![Value::Long(tag)]), "reply cross-talk");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(client.stats().replies_received, 6 * calls as u64);
}
