//! Thread-safety smoke tests: concurrent clients hammering smart
//! proxies, monitors ticking from another thread, notifications racing
//! with invocations. None of these have deterministic outcomes to
//! assert beyond "no deadlock, no panic, counters add up".

use std::sync::Arc;
use std::time::Duration;

use adapta::core::{Infrastructure, ServerSpec, Subscription};
use adapta::idl::Value;

#[test]
fn many_threads_share_one_smart_proxy() {
    let infra = Infrastructure::in_process().unwrap();
    for host in ["conc-a", "conc-b"] {
        infra
            .spawn_server(ServerSpec::echo("ConcSvc", host))
            .unwrap();
    }
    let proxy = infra
        .smart_proxy("ConcSvc")
        .preference("min LoadAvg")
        .build()
        .unwrap();

    const THREADS: usize = 8;
    const CALLS: usize = 50;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let proxy = proxy.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..CALLS {
                let out = proxy
                    .invoke("echo", vec![Value::Long((t * CALLS + i) as i64)])
                    .expect("invoke under concurrency");
                assert_eq!(out, Value::Long((t * CALLS + i) as i64));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(proxy.invocations(), (THREADS * CALLS) as u64);
}

#[test]
fn invocations_race_with_monitor_ticks_and_events() {
    let infra = Infrastructure::in_process().unwrap();
    for host in ["race-a", "race-b", "race-c"] {
        infra
            .spawn_server(ServerSpec::echo("RaceSvc", host))
            .unwrap();
    }
    let proxy = infra
        .smart_proxy("RaceSvc")
        .preference("min LoadAvg")
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            "function(o, v, m) return v[1] > 0.5 end",
        ))
        .build()
        .unwrap();

    // One thread advances time and ticks monitors (generating events),
    // while others invoke through the proxy (draining + rebinding).
    let infra_ticker = infra.clone();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_ticker = stop.clone();
    let ticker = std::thread::spawn(move || {
        let mut phase = 0u64;
        while !stop_ticker.load(std::sync::atomic::Ordering::Relaxed) {
            phase += 1;
            for (i, server) in infra_ticker.servers().into_iter().enumerate() {
                let jobs = if (phase / 3) % 3 == i as u64 {
                    4.0
                } else {
                    0.0
                };
                server.sim_host().set_background(infra_ticker.now(), jobs);
            }
            infra_ticker.advance(Duration::from_secs(30));
            std::thread::yield_now();
        }
    });

    let mut handles = Vec::new();
    for _ in 0..4 {
        let proxy = proxy.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..100 {
                proxy
                    .invoke("hello", vec![Value::from("race")])
                    .expect("invoke during adaptation");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    ticker.join().unwrap();
    assert!(proxy.invocations() >= 400);
    // Events were flowing while we invoked.
    assert!(
        proxy.events_received() > 0,
        "ticker should have caused events"
    );
}

#[test]
fn concurrent_strategy_swaps_are_safe() {
    let infra = Infrastructure::in_process().unwrap();
    infra
        .spawn_server(ServerSpec::echo("SwapRace", "swaprace-a"))
        .unwrap();
    let proxy = infra.smart_proxy("SwapRace").build().unwrap();

    let swapper = {
        let proxy = proxy.clone();
        std::thread::spawn(move || {
            for i in 0..50 {
                proxy
                    .set_strategy_script(
                        "E",
                        &format!("function(self, event) generation = {i} end"),
                    )
                    .expect("swap strategy");
            }
        })
    };
    let invoker = {
        let proxy = proxy.clone();
        std::thread::spawn(move || {
            for _ in 0..50 {
                proxy.adapt_now("E");
                proxy.invoke("hello", vec![Value::from("x")]).unwrap();
            }
        })
    };
    swapper.join().unwrap();
    invoker.join().unwrap();
    // The actor's state reflects some generation; nothing wedged.
    let gen = proxy.actor().eval("return generation or -1").unwrap();
    assert!(matches!(gen[0], Value::Long(_)));
}
