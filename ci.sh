#!/usr/bin/env bash
# Local CI: the same gate the GitHub Actions workflow runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
