#!/usr/bin/env bash
# Local CI: the same gate the GitHub Actions workflow runs.
#
# `./ci.sh --stress` instead runs the concurrency-sensitive tests with
# 10x the iteration counts and high test-thread parallelism, to shake
# out transport races that a single quick run can miss. The stress run
# is advisory (a separate non-blocking CI job), not part of the gate.
#
# `./ci.sh --chaos` runs the fault-injection suite (tests/chaos.rs) and
# the E11 chaos experiment. Also advisory/non-blocking in CI.
#
# `./ci.sh --sandbox` runs the hostile-code suite (tests/sandbox.rs),
# the script crate's sandbox property tests and the E12 overload
# experiment. Also advisory/non-blocking in CI.
#
# `./ci.sh --lint` runs just the style gate (rustfmt + clippy with
# warnings denied) — the fast pre-push check, and its own CI job so
# style failures are reported separately from build/test failures.
#
# `./ci.sh --balancer` runs the replica-set/adaptive-routing suite
# (tests/balancer.rs) and a smoke-scale E13 experiment (emitting
# BENCH_exp_balancer.json). Advisory/non-blocking in CI.
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--lint" ]]; then
    echo "==> lint: cargo fmt --check"
    cargo fmt --all --check
    echo "==> lint: cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
    echo "Lint run green."
    exit 0
fi

if [[ "${1:-}" == "--balancer" ]]; then
    echo "==> balancer: replica sets, routing policies, load feedback"
    cargo test -q --test balancer
    cargo test -q -p adapta-balancer
    echo "==> balancer: experiment E13"
    BALANCER_CALLS="${BALANCER_CALLS:-80}" cargo run -q -p adapta-bench --release --bin exp_balancer
    echo "Balancer run green."
    exit 0
fi

if [[ "${1:-}" == "--sandbox" ]]; then
    echo "==> sandbox: hostile remote code, quarantine, admission control"
    cargo test -q --test sandbox
    echo "==> sandbox: script resource-budget property tests"
    cargo test -q -p adapta-script --test sandbox_props
    echo "==> sandbox: experiment E12"
    OVERLOAD_CALLS="${OVERLOAD_CALLS:-40}" cargo run -q -p adapta-bench --release --bin exp_overload
    echo "Sandbox run green."
    exit 0
fi

if [[ "${1:-}" == "--chaos" ]]; then
    echo "==> chaos: fault injection, recovery policy, graceful shutdown"
    cargo test -q --test chaos
    echo "==> chaos: experiment E11"
    CHAOS_CALLS="${CHAOS_CALLS:-120}" cargo run -q -p adapta-bench --release --bin exp_chaos
    echo "Chaos run green."
    exit 0
fi

if [[ "${1:-}" == "--stress" ]]; then
    echo "==> stress: transport + concurrency tests (STRESS_ITERS=10)"
    export STRESS_ITERS=10
    export RUST_TEST_THREADS=16
    cargo test -q --test concurrency -- --test-threads 16
    cargo test -q -p adapta-orb transport -- --test-threads 16
    cargo test -q --test adaptation -- --test-threads 16
    echo "Stress run green."
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
