//! Context-aware adaptation — the paper's ongoing-work section.
//!
//! "We are investigating the use of our infrastructure … to define and
//! apply adaptation strategies that consider not only quality of
//! service properties, but also other properties of the application's
//! execution environment, such as user location, user activity, and
//! time of day." (Section VI, the Gaia project.)
//!
//! This example builds exactly that on the released mechanisms: a
//! *context monitor* (user location as a plain monitored property), a
//! display service offered per room, and a smart proxy whose constraint
//! follows the user around the building. Nothing new is needed — the
//! monitor, trading and strategy machinery are the QoS ones.
//!
//! Run with: `cargo run --example context_aware`

use std::time::Duration;

use adapta::core::{Infrastructure, ServerSpec};
use adapta::idl::Value;
use adapta::monitor::{Monitor, MonitorServant, ScriptActor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infra = Infrastructure::in_process()?;

    // A display service in each room, tagged with its location.
    for room in ["room-101", "room-102", "auditorium"] {
        infra.spawn_server(
            ServerSpec::echo("DisplayService", room).with_prop("Location", Value::from(room)),
        )?;
    }
    // `Location` is not part of the default type; declare it.
    // (ensure_type added LoadAvg/Host; extend with Location.)
    // The spawn above would fail without the property, so it was
    // declared via static_props — add_type ran first; patch the type:
    // in this in-process demo we simply declared Location when the
    // first offer was exported. See assertion below.

    // The user's location: a context monitor fed by the positioning
    // system (here: scripted updates).
    let actor = ScriptActor::spawn("context", |_| {});
    let location = Monitor::builder("UserLocation")
        .initial(Value::from("room-101"))
        .build(&actor, infra.orb())?;
    infra
        .orb()
        .activate("user-location", MonitorServant::new(location.clone()))?;

    // An active-space proxy: follow the user; among displays in the
    // right room, prefer the least loaded.
    let proxy_for = |room: &str| {
        infra
            .smart_proxy("DisplayService")
            .constraint(format!("Location == '{room}'"))
            .preference("min LoadAvg")
            .build()
    };

    // The user walks around; the binding follows.
    for (t, room) in [(0u64, "room-101"), (600, "auditorium"), (1200, "room-102")] {
        location.set_value(Value::from(room));
        infra.advance(Duration::from_secs(if t == 0 { 1 } else { 600 }));
        let here = location.value();
        let display = proxy_for(here.as_str().unwrap())?;
        let out = display.invoke(
            "echo",
            vec![Value::from(format!("slides for the {room} screen"))],
        )?;
        let host = display.invoke("whoami", vec![])?;
        println!("t={t:>5}s  user in {here} -> display {host}: {out}");
        assert_eq!(host, Value::from(room));
    }

    println!("\nthe same trading/monitoring machinery served a context property");
    Ok(())
}
