//! Quickstart: the paper's HelloWorld validation app.
//!
//! One process hosts a trader, three "hosts" each running a HelloWorld
//! server with a Figure-3 LoadAverage monitor, and one client whose
//! smart proxy selects the least-loaded server and adapts when load
//! shifts — while the client keeps calling plain `hello()`.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use adapta::core::{Infrastructure, ServerSpec, Subscription};
use adapta::idl::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The infrastructure: trader + virtual clock, all in-process.
    let infra = Infrastructure::in_process()?;

    // 2. Three hosts offering HelloService, each announced by its
    //    service agent with the LoadAvg dynamic property.
    for host in ["rio", "gavea", "leblon"] {
        infra.spawn_server(ServerSpec::echo("HelloService", host))?;
    }

    // 3. A smart proxy: requirements are *nonfunctional* — low load,
    //    least-loaded first — and a monitor subscription with the
    //    paper's event predicate, shipped as code to the monitor.
    let proxy = infra
        .smart_proxy("HelloService")
        .constraint("LoadAvg < 4 and LoadAvgIncreasing == no")
        .preference("min LoadAvg")
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            r#"function(observer, value, monitor)
                local incr
                incr = monitor:getAspectValue("Increasing")
                return value[1] > 4 and incr == "yes"
            end"#,
        ))
        .build()?;

    // 4. The functional code: it just says hello. All adaptation is the
    //    proxy's business.
    let hello = |label: &str| -> Result<(), Box<dyn std::error::Error>> {
        let reply = proxy.invoke("hello", vec![Value::from("world")])?;
        let host = proxy.invoke("whoami", vec![])?;
        println!("[{label}] {reply} (served by {host})");
        Ok(())
    };

    hello("t=0, all idle")?;

    // Someone starts a heavy build on the bound host…
    let bound = proxy.invoke("whoami", vec![])?;
    let bound = bound.as_str().unwrap().to_owned();
    println!("… injecting background load on {bound}");
    infra.set_background(&bound, 8.0);
    infra.advance_in_steps(Duration::from_secs(180), Duration::from_secs(30));

    // …and the next call transparently lands somewhere calmer.
    hello("t=3min, after load spike")?;

    println!(
        "proxy stats: {} invocations, {} events, {} rebinds",
        proxy.invocations(),
        proxy.events_received(),
        proxy.rebinds()
    );
    assert_ne!(proxy.invoke("whoami", vec![])?, Value::from(bound));
    Ok(())
}
