//! The paper's Section V load-sharing example, end to end.
//!
//! Stateless servers on several hosts; clients are responsible for
//! sharing the load: they locate the least-loaded server through the
//! trader and — unlike the Badidi et al. baseline — keep adapting as
//! load shifts, driven by `LoadIncrease` events whose strategy is the
//! verbatim Figure-7 script.
//!
//! Run with: `cargo run --example load_sharing`

use std::sync::Arc;
use std::time::Duration;

use adapta::core::{
    policies::{load_sharing_proxy, BindingPolicy, LoadSharingConfig},
    Infrastructure, ServerSpec,
};
use adapta::idl::Value;

const HOSTS: [&str; 4] = ["node1", "node2", "node3", "node4"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infra = Infrastructure::in_process()?;
    for host in HOSTS {
        infra.spawn_server(ServerSpec::echo("Compute", host))?;
    }

    // Three clients, one per policy, sharing the same four servers.
    let config = LoadSharingConfig::with_threshold(3.0);
    let clients: Vec<_> = BindingPolicy::ALL
        .iter()
        .map(|&policy| {
            let proxy = load_sharing_proxy(
                infra.orb(),
                infra.repository(),
                Arc::new(infra.trader().clone()),
                "Compute",
                policy,
                config,
            )
            .expect("servers exist");
            (policy, proxy)
        })
        .collect();

    println!("phase 1: flat load");
    report(&clients)?;

    // Phase 2: the landscape shifts — node the trade-once client picked
    // gets swamped by background work.
    let victim = clients
        .iter()
        .find(|(p, _)| *p == BindingPolicy::TradeOnce)
        .map(|(_, proxy)| proxy.invoke("whoami", vec![]).unwrap())
        .unwrap();
    let victim = victim.as_str().unwrap().to_owned();
    println!("\nphase 2: background load lands on {victim}");
    infra.set_background(&victim, 6.0);
    infra.advance_in_steps(Duration::from_secs(300), Duration::from_secs(30));
    report(&clients)?;

    // Phase 3: the load moves to another host.
    infra.set_background(&victim, 0.0);
    let other = HOSTS.iter().find(|h| **h != victim).unwrap();
    println!("\nphase 3: load moves to {other}");
    infra.set_background(other, 6.0);
    infra.advance_in_steps(Duration::from_secs(300), Duration::from_secs(30));
    report(&clients)?;

    println!("\nsummary (rebinds show who adapted):");
    for (policy, proxy) in &clients {
        println!(
            "  {policy:<14} rebinds={} events={} invocations={}",
            proxy.rebinds(),
            proxy.events_received(),
            proxy.invocations()
        );
    }
    Ok(())
}

fn report(
    clients: &[(BindingPolicy, adapta::core::SmartProxy)],
) -> Result<(), Box<dyn std::error::Error>> {
    for (policy, proxy) in clients {
        let reply = proxy.invoke("hello", vec![Value::from("load-sharing")])?;
        let host = proxy.invoke("whoami", vec![])?;
        let load = proxy
            .current_offer()
            .and_then(|o| o.prop("LoadAvg").cloned())
            .and_then(|v| v.as_double())
            .unwrap_or(f64::NAN);
        println!("  {policy:<14} -> {host}  (offer LoadAvg at bind: {load:.2})  [{reply}]");
    }
    Ok(())
}
