//! Dynamic extension of live components (Section II) and
//! interceptor-based adaptation (Section VI, the paper's ongoing work).
//!
//! "Components implemented with a scripting language can be dynamically
//! modified and extended without compiling or linking phases, and so,
//! without interrupting their services. With an interpreted language,
//! it is easy to send code across a network, which allows the system to
//! do automatic or interactive remote modifications and extensions to
//! distributed components and services."
//!
//! This example (1) upgrades a script-implemented server's method while
//! a client keeps calling it, (2) *extends* it with a brand-new
//! operation shipped as source code, and (3) shows a completely
//! standard proxy being adapted by an [`AdaptiveRedirect`] interceptor —
//! no smart proxy anywhere.
//!
//! Run with: `cargo run --example dynamic_extension`

use std::sync::Arc;
use std::time::Duration;

use adapta::core::{AdaptiveRedirect, Infrastructure, ScriptServant, ServerSpec};
use adapta::idl::Value;
use adapta::monitor::ScriptActor;
use adapta::orb::Orb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- a component implemented in the scripting language ---
    let actor = ScriptActor::spawn("greeter-host", |_| {});
    let servant = ScriptServant::from_source(
        &actor,
        "Greeter",
        r#"return { greet = function(self, who) return "hello, " .. who end }"#,
    )?;
    let orb = Orb::new("greeter-node");
    let objref = orb.activate("greeter", servant.clone())?;
    let client = orb.proxy(&objref);

    println!(
        "v1:           {}",
        client.invoke("greet", vec![Value::from("ana")])?
    );

    // --- live modification: the new method body arrives as source ---
    servant.update_method("greet", r#"function(self, who) return "olá, " .. who end"#)?;
    println!(
        "v2 (patched): {}",
        client.invoke("greet", vec![Value::from("ana")])?
    );

    // --- live extension: a brand-new operation appears ---
    servant.update_method(
        "greet_many",
        r#"function(self, names)
            local out = {}
            for i, name in ipairs(names) do
                out[i] = self:greet(name)
            end
            return out
        end"#,
    )?;
    let many = client.invoke(
        "greet_many",
        vec![Value::Seq(vec![Value::from("ana"), Value::from("noemi")])],
    )?;
    println!("v3 (extended): greet_many -> {many}");

    // --- interceptor-based adaptation of a *standard* proxy ---
    // (Section VI: "plug our dynamic adaptation support into standard
    // CORBA applications" — the client below knows nothing about
    // adaptation; a request interceptor location-forwards its calls.)
    let infra = Infrastructure::in_process()?;
    let busy = infra.spawn_server(ServerSpec::echo("Compute", "ext-busy"))?;
    infra.spawn_server(ServerSpec::echo("Compute", "ext-calm"))?;
    let handle = AdaptiveRedirect::new(
        Arc::new(infra.trader().clone()),
        "Compute",
        "LoadAvg < 3 and LoadAvgIncreasing == no",
        "min LoadAvg",
    )
    .install(infra.orb());

    let standard = infra.orb().proxy(busy.target());
    println!(
        "\nstandard proxy initially served by {}",
        standard.invoke("whoami", vec![])?
    );
    infra.set_background("ext-busy", 6.0);
    infra.advance_in_steps(Duration::from_secs(180), Duration::from_secs(30));
    println!(
        "after the load spike, the same proxy is served by {} \
         ({} requests were location-forwarded)",
        standard.invoke("whoami", vec![])?,
        handle.redirects()
    );
    assert_eq!(standard.invoke("whoami", vec![])?, Value::from("ext-calm"));
    Ok(())
}
