//! The paper's second validation app: the QuO-derived image viewer.
//!
//! "In this application, the client requests images from the server and
//! displays them on the screen. Because the reconfiguration facilities
//! are transparent to the applications' functional behavior, we could
//! use the same adaptation code we used in the HelloWorld application."
//!
//! This example demonstrates exactly that: the adaptation setup below
//! is byte-for-byte the one `quickstart.rs` uses — only the functional
//! calls (`getImage` instead of `hello`) differ. The Bette Davis
//! photographs of the QuO distribution are substituted by deterministic
//! synthetic payloads.
//!
//! Run with: `cargo run --example image_viewer`

use std::time::Duration;

use adapta::core::{Infrastructure, ServerSpec, SmartProxy, Subscription};
use adapta::idl::Value;

/// The same adaptation code as the HelloWorld example — reused verbatim
/// (the paper's transparency claim).
fn adaptive_proxy(
    infra: &Infrastructure,
    service_type: &str,
) -> Result<SmartProxy, Box<dyn std::error::Error>> {
    Ok(infra
        .smart_proxy(service_type)
        .constraint("LoadAvg < 4 and LoadAvgIncreasing == no")
        .preference("min LoadAvg")
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            r#"function(observer, value, monitor)
                local incr
                incr = monitor:getAspectValue("Increasing")
                return value[1] > 4 and incr == "yes"
            end"#,
        ))
        .build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infra = Infrastructure::in_process()?;
    for host in ["gallery1", "gallery2"] {
        infra.spawn_server(ServerSpec::image("ImageService", host, 8, 64 * 1024))?;
    }

    let viewer = adaptive_proxy(&infra, "ImageService")?;

    let count = viewer.invoke("imageCount", vec![])?;
    println!("server offers {count} images");

    // "Display" the slideshow; halfway through, the serving gallery
    // gets overloaded and the viewer migrates mid-slideshow.
    let count = count.as_long().unwrap_or(0);
    let mut served_by = Vec::new();
    for i in 0..count {
        if i == count / 2 {
            let bound = viewer.invoke("whoami", vec![])?;
            println!("… load spike on {bound} after image {i}");
            infra.set_background(bound.as_str().unwrap(), 8.0);
            infra.advance_in_steps(Duration::from_secs(180), Duration::from_secs(30));
        }
        let image = viewer.invoke("getImage", vec![Value::Long(i)])?;
        let bytes = image.as_bytes().expect("image payload");
        let host = viewer.invoke("whoami", vec![])?;
        // A realistic viewer would render; we checksum.
        let checksum: u32 = bytes
            .iter()
            .fold(0u32, |acc, b| acc.wrapping_mul(31).wrapping_add(*b as u32));
        println!(
            "image {i}: {} bytes, checksum {checksum:08x}, from {host}",
            bytes.len()
        );
        served_by.push(host.as_str().unwrap().to_owned());
    }

    let first = &served_by[0];
    let last = served_by.last().unwrap();
    assert_ne!(first, last, "the slideshow should have migrated galleries");
    println!(
        "\nslideshow started on {first} and finished on {last} — adaptation was \
         transparent to the viewer code ({} rebinds, {} events)",
        viewer.rebinds(),
        viewer.events_received()
    );
    Ok(())
}
