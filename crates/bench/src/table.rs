//! Plain-text table rendering for experiment output.

/// A simple left-padded text table.
///
/// ```
/// use adapta_bench::Table;
/// let mut t = Table::new(vec!["policy", "p95"]);
/// t.row(vec!["trade-once".into(), "812ms".into()]);
/// let out = t.render();
/// assert!(out.contains("trade-once"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Table {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with blanks).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:<width$}"));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "longer"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Column 2 starts at the same offset in every row.
        let col2 = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("22").unwrap(), col2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
        assert!(t.render().contains("only-one"));
    }
}
