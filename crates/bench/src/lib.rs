//! Experiment harness for the `adapta` reproduction.
//!
//! The paper's evaluation is a programming example plus qualitative
//! claims; this crate quantifies each claim (see `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for recorded results):
//!
//! | binary | experiment |
//! |---|---|
//! | `exp_load_sharing` | E1 — client-driven load sharing: static-random vs trade-once (Badidi) vs auto-adaptive |
//! | `exp_monitoring` | E2 — event-driven notification vs polling |
//! | `exp_remote_eval` | E3 — remote evaluation vs value streaming |
//! | `exp_postponed` | E6 — postponed vs immediate event handling |
//! | `exp_hot_swap` | E7 — dynamic strategy replacement |
//! | `exp_trading_scale` | E5 — trader query scalability |
//! | `exp_failover` | E9 — component failure and re-selection |
//! | `exp_concurrency` | E10 — multiplexed TCP transport under concurrent callers |
//! | `exp_chaos` | E11 — fault injection: retry + circuit breaker under a chaos storm |
//! | `exp_overload` | E12 — overload: admission control vs a request storm |
//! | `exp_balancer` | E13 — adaptive request routing over a replica set |
//!
//! Criterion benches (`cargo bench`): `invocation` (E4), `trading`
//! (E5 micro), `script` (E8).
//!
//! Every experiment runs in virtual time with seeded randomness: the
//! numbers are exactly reproducible.

pub mod loadsim;
pub mod table;

pub use loadsim::{run_load_sharing, LoadPhase, LoadSharingOutcome, LoadSharingParams};
pub use table::Table;

/// Writes `BENCH_<experiment>.json`: the experiment name plus the full
/// telemetry-registry snapshot (counters, gauges, latency histograms
/// with quantiles), so CI and scripts can scrape machine-readable
/// results without parsing the human-oriented tables.
///
/// # Errors
///
/// Propagates the I/O error when the file cannot be written.
pub fn emit_bench_json(experiment: &str) -> std::io::Result<std::path::PathBuf> {
    let json = adapta_telemetry::json::Obj::new()
        .str("experiment", experiment)
        .raw(
            "metrics",
            &adapta_telemetry::registry().snapshot().to_json(),
        )
        .finish();
    let path = std::path::PathBuf::from(format!("BENCH_{experiment}.json"));
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// [`emit_bench_json`] with reporting: prints where the snapshot went
/// (or the error) instead of failing the experiment run.
pub fn finish(experiment: &str) {
    match emit_bench_json(experiment) {
        Ok(path) => println!("\nmetrics snapshot: {}", path.display()),
        Err(e) => eprintln!("\ncould not write BENCH_{experiment}.json: {e}"),
    }
}
