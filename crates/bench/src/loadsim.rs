//! The discrete-event load-sharing simulation behind experiment E1
//! (and reused by E6).
//!
//! The setup mirrors Section V: several stateless servers on hosts with
//! Linux-style load averages, a population of closed-loop clients that
//! are themselves responsible for load sharing, and background load
//! that shifts between hosts over time. Each run wires the *real*
//! infrastructure — trader, Figure-3 monitors, smart proxies — and only
//! the request service occupancy is simulated by the event scheduler.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use adapta_core::policies::{load_sharing_proxy, BindingPolicy, LoadSharingConfig};
use adapta_core::{Infrastructure, ServerSpec, SmartProxy};
use adapta_sim::workload::exp_duration;
use adapta_sim::{Histogram, Scheduler, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A background-load change: at `at`, host `host_index` switches to
/// `jobs` background jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPhase {
    /// When the phase starts.
    pub at: Duration,
    /// Which server's host (index into the spawned servers).
    pub host_index: usize,
    /// The background job count from then on.
    pub jobs: f64,
}

/// Parameters of one load-sharing run.
#[derive(Debug, Clone)]
pub struct LoadSharingParams {
    /// The client binding policy under test.
    pub policy: BindingPolicy,
    /// Number of servers (each on its own host).
    pub servers: usize,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Total simulated time.
    pub duration: Duration,
    /// Mean client think time (exponential).
    pub think_mean: Duration,
    /// No-contention service time per request.
    pub base_service: Duration,
    /// Monitor tick period.
    pub monitor_period: Duration,
    /// Load-sharing threshold (constraint + event predicate).
    pub threshold: f64,
    /// Background-load phases.
    pub phases: Vec<LoadPhase>,
    /// RNG seed for think times.
    pub seed: u64,
    /// When set, arrivals are an *open* Poisson process at this total
    /// rate (req/s) spread round-robin over the client proxies, instead
    /// of the closed loop.
    pub open_loop_rate: Option<f64>,
}

impl Default for LoadSharingParams {
    fn default() -> Self {
        LoadSharingParams {
            policy: BindingPolicy::AutoAdaptive,
            servers: 4,
            clients: 8,
            duration: Duration::from_secs(30 * 60),
            think_mean: Duration::from_secs(1),
            base_service: Duration::from_millis(200),
            monitor_period: Duration::from_secs(30),
            threshold: 3.0,
            phases: default_phases(),
            seed: 42,
            open_loop_rate: None,
        }
    }
}

/// The default load script: background work lands on host 0 a third of
/// the way in, then moves to host 1 — the "long client-server
/// interactions" scenario in which the paper says the trade-once
/// baseline "may become unbalanced".
pub fn default_phases() -> Vec<LoadPhase> {
    vec![
        LoadPhase {
            at: Duration::from_secs(10 * 60),
            host_index: 0,
            jobs: 5.0,
        },
        LoadPhase {
            at: Duration::from_secs(20 * 60),
            host_index: 0,
            jobs: 0.0,
        },
        LoadPhase {
            at: Duration::from_secs(20 * 60),
            host_index: 1,
            jobs: 5.0,
        },
    ]
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct LoadSharingOutcome {
    /// The policy that ran.
    pub policy: BindingPolicy,
    /// Per-request latency (service time under contention).
    pub latency: Histogram,
    /// Requests served per host, in server order.
    pub per_server_requests: Vec<u64>,
    /// Component switches across all clients.
    pub rebinds: u64,
    /// Monitor notifications received across all clients.
    pub events: u64,
    /// Trader queries issued during the run.
    pub trader_queries: u64,
    /// Requests completed.
    pub completed: u64,
}

impl LoadSharingOutcome {
    /// Coefficient of variation of the per-server request counts — the
    /// load-imbalance index (0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let counts: Vec<f64> = self.per_server_requests.iter().map(|&n| n as f64).collect();
        adapta_sim::metrics::coeff_of_variation(&counts)
    }
}

struct World {
    latency: Histogram,
    per_server: BTreeMap<String, u64>,
    completed: u64,
}

/// Runs one policy through the scenario; deterministic given the seed.
///
/// # Panics
///
/// Panics on infrastructure errors (experiments fail loudly).
pub fn run_load_sharing(params: &LoadSharingParams) -> LoadSharingOutcome {
    let infra = Infrastructure::in_process().expect("infrastructure");
    let host_names: Vec<String> = (0..params.servers).map(|i| format!("srv{i}")).collect();
    for name in &host_names {
        infra
            .spawn_server(
                ServerSpec::echo("LoadShared", name.as_str()).base_service(params.base_service),
            )
            .expect("spawn server");
    }

    let queries_at_start = infra.trader().query_count();
    let proxies: Vec<SmartProxy> = (0..params.clients)
        .map(|_| {
            load_sharing_proxy(
                infra.orb(),
                infra.repository(),
                Arc::new(infra.trader().clone()),
                "LoadShared",
                params.policy,
                LoadSharingConfig::with_threshold(params.threshold),
            )
            .expect("client proxy")
        })
        .collect();

    let mut sched: Scheduler<World> = Scheduler::with_clock(infra.clock().clone());
    let end = SimTime::ZERO + params.duration;

    // Monitor cycles on every host.
    {
        let infra = infra.clone();
        sched.every(params.monitor_period, end, move |_w, s| {
            let now = s.now();
            for server in infra.servers() {
                server.monitor_host().tick_all(now);
            }
        });
    }

    // Background-load phases.
    for phase in &params.phases {
        let infra = infra.clone();
        let host = host_names[phase.host_index].clone();
        let jobs = phase.jobs;
        sched.at(SimTime::ZERO + phase.at, move |_w, s| {
            if let Some(server) = infra.server(&host) {
                server.sim_host().set_background(s.now(), jobs);
            }
        });
    }

    match params.open_loop_rate {
        None => {
            // Closed-loop clients.
            let mut rng = StdRng::seed_from_u64(params.seed);
            for (i, proxy) in proxies.iter().enumerate() {
                let first = Duration::from_millis(10 * i as u64)
                    + exp_duration(&mut rng, params.think_mean);
                let client_seed =
                    params.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                schedule_request(
                    &mut sched,
                    SimTime::ZERO + first,
                    infra.clone(),
                    proxy.clone(),
                    StdRng::seed_from_u64(client_seed),
                    params.think_mean,
                    end,
                );
            }
        }
        Some(rate) => {
            // Open loop: Poisson arrivals, round-robin over proxies,
            // completions do not gate arrivals.
            let arrivals = adapta_sim::workload::PoissonArrivals::new(rate, params.seed);
            schedule_open_arrival(
                &mut sched,
                SimTime::ZERO,
                infra.clone(),
                proxies.clone(),
                arrivals,
                0,
                end,
            );
        }
    }

    let mut world = World {
        latency: Histogram::new(),
        per_server: host_names.iter().map(|h| (h.clone(), 0)).collect(),
        completed: 0,
    };
    sched.run_until(&mut world, end);

    LoadSharingOutcome {
        policy: params.policy,
        latency: world.latency,
        per_server_requests: host_names
            .iter()
            .map(|h| world.per_server.get(h).copied().unwrap_or(0))
            .collect(),
        rebinds: proxies.iter().map(SmartProxy::rebinds).sum(),
        events: proxies.iter().map(SmartProxy::events_received).sum(),
        trader_queries: infra.trader().query_count() - queries_at_start,
        completed: world.completed,
    }
}

/// Schedules one open-loop arrival; each arrival schedules the next.
#[allow(clippy::too_many_arguments)]
fn schedule_open_arrival(
    sched: &mut Scheduler<World>,
    from: SimTime,
    infra: Infrastructure,
    proxies: Vec<SmartProxy>,
    mut arrivals: adapta_sim::workload::PoissonArrivals,
    index: u64,
    end: SimTime,
) {
    let at = from + arrivals.next_gap();
    if at >= end {
        return;
    }
    sched.at(at, move |_w, s| {
        let now = s.now();
        let proxy = &proxies[(index as usize) % proxies.len()];
        if let Ok(host_value) = proxy.invoke("whoami", vec![]) {
            let host_name = host_value.as_str().unwrap_or("?").to_owned();
            if let Some(server) = infra.server(&host_name) {
                let host = server.sim_host().clone();
                host.begin_request(now);
                let service = host.service_time(now);
                sched_completion(s, now + service, host, service, host_name);
            }
        }
        schedule_open_arrival(s, now, infra, proxies, arrivals, index + 1, end);
    });
}

/// Schedules one request issue; completion schedules the next issue.
#[allow(clippy::too_many_arguments)]
fn schedule_request(
    sched: &mut Scheduler<World>,
    at: SimTime,
    infra: Infrastructure,
    proxy: SmartProxy,
    mut rng: StdRng,
    think_mean: Duration,
    end: SimTime,
) {
    sched.at(at, move |_w, s| {
        let now = s.now();
        // The real proxy path: postponed events drain here, selection
        // and failover run for real; `whoami` tells us where we landed.
        let Ok(host_value) = proxy.invoke("whoami", vec![]) else {
            return; // unbound and nothing to select: client stops
        };
        let host_name = host_value.as_str().unwrap_or("?").to_owned();
        let Some(server) = infra.server(&host_name) else {
            return;
        };
        let host = server.sim_host().clone();
        host.begin_request(now);
        let service = host.service_time(now);
        let done = now + service;
        sched_completion(s, done, host, service, host_name.clone());
        // Next request after the reply plus think time.
        let think = exp_duration(&mut rng, think_mean);
        let next = done + think;
        if next < end {
            schedule_request(s, next, infra, proxy, rng, think_mean, end);
        }
    });
}

fn sched_completion(
    sched: &mut Scheduler<World>,
    at: SimTime,
    host: adapta_sim::SimHost,
    service: Duration,
    host_name: String,
) {
    sched.at(at, move |w, s| {
        host.end_request(s.now());
        w.latency.record(service);
        *w.per_server.entry(host_name).or_insert(0) += 1;
        w.completed += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_params(policy: BindingPolicy) -> LoadSharingParams {
        LoadSharingParams {
            policy,
            servers: 3,
            clients: 4,
            duration: Duration::from_secs(8 * 60),
            monitor_period: Duration::from_secs(30),
            phases: vec![LoadPhase {
                at: Duration::from_secs(3 * 60),
                host_index: 0,
                jobs: 5.0,
            }],
            ..LoadSharingParams::default()
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let p = short_params(BindingPolicy::TradeOnce);
        let mut a = run_load_sharing(&p);
        let mut b = run_load_sharing(&p);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.per_server_requests, b.per_server_requests);
        assert_eq!(a.latency.mean(), b.latency.mean());
        assert_eq!(a.latency.quantile(0.95), b.latency.quantile(0.95));
    }

    #[test]
    fn auto_adaptive_beats_trade_once_after_load_shift() {
        let adaptive = run_load_sharing(&short_params(BindingPolicy::AutoAdaptive));
        let once = run_load_sharing(&short_params(BindingPolicy::TradeOnce));
        assert!(adaptive.completed > 0 && once.completed > 0);
        // The adaptive clients reacted (rebinds beyond the initial one
        // per client) and the baseline did not.
        assert!(
            adaptive.rebinds > 4,
            "adaptive rebinds: {}",
            adaptive.rebinds
        );
        assert_eq!(once.rebinds, 4, "trade-once binds once per client");
        assert!(adaptive.events > 0);
    }

    #[test]
    fn open_loop_runs_and_is_deterministic() {
        let mut p = short_params(BindingPolicy::AutoAdaptive);
        p.open_loop_rate = Some(8.0);
        let a = run_load_sharing(&p);
        let b = run_load_sharing(&p);
        assert!(
            a.completed > 100,
            "open loop should complete many: {}",
            a.completed
        );
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.per_server_requests, b.per_server_requests);
    }

    #[test]
    fn all_policies_complete_requests() {
        for policy in BindingPolicy::ALL {
            let out = run_load_sharing(&short_params(policy));
            assert!(out.completed > 50, "{policy}: {}", out.completed);
            assert_eq!(out.per_server_requests.len(), 3);
        }
    }
}
