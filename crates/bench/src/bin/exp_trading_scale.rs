//! Experiment E5 — trading-query scalability.
//!
//! The smart-proxy mechanism puts a trader query on every (re)selection,
//! so its cost model matters: query latency versus the number of
//! registered offers, the constraint's complexity, and — the expensive
//! axis — dynamic properties, each of which costs one remote
//! invocation per candidate offer at query time.
//!
//! Expected shape: latency linear in the candidate set; constraint
//! complexity a small constant factor; dynamic properties dominating
//! (one `evalDP` round trip per offer per dynamic property).
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_trading_scale`

use std::time::Instant;

use adapta_bench::Table;
use adapta_idl::{TypeCode, Value};
use adapta_orb::{ObjRef, Orb, ServantFn};
use adapta_trading::{ExportRequest, PropDef, PropMode, Query, ServiceTypeDef, Trader};

const CONSTRAINTS: [(&str, &str); 3] = [
    ("none", ""),
    ("simple", "LoadAvg < 50"),
    (
        "complex",
        "(LoadAvg < 50 and LoadAvgIncreasing == no) or (LoadAvg * 2 + 1 < 80 and exist Host and Host ~ 'node')",
    ),
];

fn trader_with_offers(n: usize, dynamic: bool) -> (Orb, Trader) {
    let orb = Orb::new(&format!("e5-{n}-{dynamic}"));
    let trader = Trader::new(&orb);
    trader
        .add_type(
            ServiceTypeDef::new("Svc")
                .with_property(PropDef::new("LoadAvg", TypeCode::Double, PropMode::Normal))
                .with_property(PropDef::new(
                    "LoadAvgIncreasing",
                    TypeCode::Str,
                    PropMode::Normal,
                ))
                .with_property(PropDef::new("Host", TypeCode::Str, PropMode::Readonly)),
        )
        .expect("type");
    let dp_ref = if dynamic {
        Some(
            orb.activate(
                "dp",
                ServantFn::new("DynamicPropEval", |_, args| {
                    match args.first().and_then(Value::as_str) {
                        Some("LoadAvg") => Ok(Value::Double(12.5)),
                        Some("LoadAvgIncreasing") => Ok(Value::from("no")),
                        _ => Ok(Value::Null),
                    }
                }),
            )
            .expect("dp servant"),
        )
    } else {
        None
    };
    for i in 0..n {
        let target = ObjRef::new(orb.endpoint(), format!("svc-{i}"), "Svc");
        let mut req = ExportRequest::new("Svc", target)
            .with_property("Host", Value::from(format!("node{i}")));
        match &dp_ref {
            Some(dp) => {
                req = req
                    .with_dynamic_property("LoadAvg", dp.clone())
                    .with_dynamic_property("LoadAvgIncreasing", dp.clone());
            }
            None => {
                req = req
                    .with_property("LoadAvg", Value::Double((i % 100) as f64))
                    .with_property(
                        "LoadAvgIncreasing",
                        Value::from(if i % 2 == 0 { "no" } else { "yes" }),
                    );
            }
        }
        trader.export(req).expect("export");
    }
    (orb, trader)
}

fn time_query(trader: &Trader, constraint: &str, reps: u32) -> (std::time::Duration, usize) {
    let q = Query::new("Svc")
        .constraint(constraint)
        .preference("min LoadAvg")
        .return_card(10)
        .search_card(u32::MAX);
    // Warm up.
    let matched = trader.query(&q).expect("query").len();
    let start = Instant::now();
    for _ in 0..reps {
        let _ = trader.query(&q).expect("query");
    }
    (start.elapsed() / reps, matched)
}

fn main() {
    println!("E5: trader query cost vs offers x constraint x property kind");
    println!("(per-query latency, preference `min LoadAvg`, return_card 10)\n");

    let mut table = Table::new(vec![
        "offers",
        "properties",
        "constraint",
        "matched",
        "latency/query",
    ]);
    for &n in &[10usize, 100, 1000, 10_000] {
        for dynamic in [false, true] {
            // Dynamic sweeps at 10k would take minutes; cap honestly.
            if dynamic && n > 1000 {
                continue;
            }
            let (_orb, trader) = trader_with_offers(n, dynamic);
            for (label, constraint) in CONSTRAINTS {
                let reps = if dynamic { 5 } else { 50 };
                let (latency, matched) = time_query(&trader, constraint, reps);
                table.row(vec![
                    n.to_string(),
                    if dynamic {
                        "dynamic".into()
                    } else {
                        "static".into()
                    },
                    label.into(),
                    matched.to_string(),
                    format!("{latency:.1?}"),
                ]);
            }
        }
    }
    table.print();
    println!(
        "\n(static queries are linear in candidates; dynamic properties add one\n\
         evalDP invocation per offer per property — the trader-side cost of\n\
         live nonfunctional data)"
    );

    adapta_bench::finish("exp_trading_scale");
}
