//! Experiment E9 (extension) — component failure and re-selection.
//!
//! The trading+monitoring machinery also buys availability: when the
//! bound component dies, a smart proxy re-selects (excluding the dead
//! server, whose stale offer may still sit in the trader) and retries —
//! the application sees nothing. A plain proxy fails on every call
//! until someone intervenes.
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_failover`

use adapta_bench::Table;
use adapta_core::{Infrastructure, ServerSpec};
use adapta_idl::Value;

const CALLS_BEFORE: usize = 100;
const CALLS_AFTER: usize = 100;

struct Outcome {
    ok: usize,
    failed: usize,
    first_ok_after_crash: Option<usize>,
    failovers: u64,
}

fn run(smart: bool) -> Outcome {
    let infra = Infrastructure::in_process().expect("infra");
    let a = infra
        .spawn_server(ServerSpec::echo("FoSvc", "fo-primary"))
        .expect("server a");
    infra
        .spawn_server(ServerSpec::echo("FoSvc", "fo-backup"))
        .expect("server b");

    // Both clients start bound to the primary.
    let smart_proxy = infra
        .smart_proxy("FoSvc")
        .preference("with Host == 'fo-primary'")
        .build()
        .expect("proxy");
    let plain_proxy = infra.orb().proxy(a.target());

    let mut out = Outcome {
        ok: 0,
        failed: 0,
        first_ok_after_crash: None,
        failovers: 0,
    };
    let call = |out: &mut Outcome, after_crash: Option<usize>| {
        let result = if smart {
            smart_proxy
                .invoke("hello", vec![Value::from("x")])
                .map(|_| ())
                .map_err(|e| e.to_string())
        } else {
            plain_proxy
                .invoke("hello", vec![Value::from("x")])
                .map(|_| ())
                .map_err(|e| e.to_string())
        };
        match result {
            Ok(()) => {
                out.ok += 1;
                if let (Some(i), None) = (after_crash, out.first_ok_after_crash) {
                    out.first_ok_after_crash = Some(i);
                }
            }
            Err(_) => out.failed += 1,
        }
    };

    for _ in 0..CALLS_BEFORE {
        call(&mut out, None);
    }
    // The primary dies without cleaning up its offer.
    a.crash();
    for i in 0..CALLS_AFTER {
        call(&mut out, Some(i + 1));
    }
    out.failovers = smart_proxy.failovers();
    out
}

fn main() {
    println!("E9 (extension): bound component crashes after {CALLS_BEFORE} calls;");
    println!("{CALLS_AFTER} more calls follow. The dead server's offer stays in the");
    println!("trader (no cleanup), so re-selection must actively exclude it.\n");

    let mut table = Table::new(vec![
        "client",
        "ok",
        "failed",
        "first success after crash",
        "proxy failovers",
    ]);
    for (label, smart) in [("plain proxy", false), ("smart proxy", true)] {
        let out = run(smart);
        table.row(vec![
            label.into(),
            out.ok.to_string(),
            out.failed.to_string(),
            out.first_ok_after_crash
                .map(|i| format!("call #{i}"))
                .unwrap_or_else(|| "never".into()),
            out.failovers.to_string(),
        ]);
    }
    table.print();
    println!(
        "\n(the smart proxy absorbs the failure inside the failing invocation:\n\
         zero observed errors; the plain proxy fails for the rest of the run)"
    );

    adapta_bench::finish("exp_failover");
}
