//! Experiment E12 — overload: admission control vs a request storm.
//!
//! A deliberately small TCP server (a handful of in-flight dispatches
//! node-wide, a short per-connection queue, two workers) is stormed by
//! an increasing number of client threads. Every request the server
//! cannot admit is shed *before* execution with the retryable
//! `TransientOverload` error, and the smart proxy's backoff policy
//! absorbs the sheds. The claim quantified: bounded queues turn
//! overload into latency instead of collapse — goodput stays flat and
//! no call is lost even when most arrivals are being shed.
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_overload`
//! (`OVERLOAD_CALLS` scales the per-thread call count, default 40).

use std::sync::Arc;
use std::time::{Duration, Instant};

use adapta_bench::Table;
use adapta_core::{RetryPolicy, SmartProxy};
use adapta_idl::{InterfaceRepository, TypeCode, Value};
use adapta_orb::{ObjRef, Orb, OrbOptions, ServantFn};
use adapta_telemetry::registry;
use adapta_trading::{ExportRequest, PropDef, PropMode, ServiceTypeDef, Trader};

fn calls_per_thread() -> usize {
    std::env::var("OVERLOAD_CALLS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40)
}

fn counter(name: &str) -> u64 {
    registry().snapshot().counter(name).unwrap_or(0)
}

struct PhaseStats {
    threads: usize,
    ok: usize,
    failed: usize,
    shed: u64,
    retries: u64,
    elapsed: Duration,
}

fn main() {
    let calls = calls_per_thread();
    println!("E12 — overload: admission control vs a request storm.");
    println!(
        "One TCP server with max_inflight=4, conn queue=4, 2 workers and\n\
         a 2ms servant; client threads ramp 1 → 16, {calls} calls each.\n\
         Shed requests carry `TransientOverload`; the proxy retries with\n\
         jittered backoff (cap 20ms).\n"
    );

    let server = Orb::with_options(
        "overload-e12",
        OrbOptions::new()
            .max_inflight(4)
            .max_conn_queue(4)
            .max_conn_workers(2),
    );
    server
        .activate(
            "svc",
            ServantFn::new("StormSvc", |_, _| {
                std::thread::sleep(Duration::from_millis(2));
                Ok(Value::from("pong"))
            }),
        )
        .unwrap();
    let endpoint = server.listen_tcp("127.0.0.1:0").unwrap();

    let client = Orb::new("overload-e12-client");
    let trader = Trader::new(&client);
    trader
        .add_type(ServiceTypeDef::new("StormSvc").with_property(PropDef::new(
            "Rank",
            TypeCode::Long,
            PropMode::Normal,
        )))
        .unwrap();
    trader
        .export(
            ExportRequest::new(
                "StormSvc",
                ObjRef::new(endpoint.as_str(), "svc", "StormSvc"),
            )
            .with_property("Rank", Value::Long(1)),
        )
        .unwrap();
    let repo = InterfaceRepository::new();
    let proxy = Arc::new(
        SmartProxy::builder(&client, &repo, Arc::new(trader), "StormSvc")
            .preference("max Rank")
            .retry_policy(
                RetryPolicy::new(40)
                    .base(Duration::from_millis(1))
                    .cap(Duration::from_millis(20)),
            )
            .build()
            .unwrap(),
    );

    let inflight_shed = "orb.overload-e12.shed";
    let queue_shed = "orb.overload-e12.tcp.server.shed";
    let mut stats = Vec::new();
    for threads in [1usize, 4, 8, 16] {
        let shed0 = counter(inflight_shed) + counter(queue_shed);
        let retries0 = proxy.retries();
        let started = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let proxy = proxy.clone();
                std::thread::spawn(move || {
                    let mut ok = 0;
                    let mut failed = 0;
                    for _ in 0..calls {
                        match proxy.invoke("ping", vec![]) {
                            Ok(_) => ok += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    (ok, failed)
                })
            })
            .collect();
        let (mut ok, mut failed) = (0, 0);
        for h in handles {
            let (o, f) = h.join().unwrap();
            ok += o;
            failed += f;
        }
        stats.push(PhaseStats {
            threads,
            ok,
            failed,
            shed: counter(inflight_shed) + counter(queue_shed) - shed0,
            retries: proxy.retries() - retries0,
            elapsed: started.elapsed(),
        });
    }

    let mut table = Table::new(vec![
        "client threads",
        "ok",
        "failed",
        "shed",
        "retries",
        "goodput (calls/s)",
        "elapsed",
    ]);
    let mut total_failed = 0;
    for s in &stats {
        total_failed += s.failed;
        let goodput = s.ok as f64 / s.elapsed.as_secs_f64();
        table.row(vec![
            s.threads.to_string(),
            s.ok.to_string(),
            s.failed.to_string(),
            s.shed.to_string(),
            s.retries.to_string(),
            format!("{goodput:.0}"),
            format!("{:?}", s.elapsed),
        ]);
    }
    table.print();
    println!(
        "\n(total failed calls: {total_failed} — past saturation the server\n\
         sheds the excess instead of queueing it unboundedly, and the\n\
         retry policy turns sheds into backoff; goodput tracks the\n\
         2-worker service rate instead of collapsing)"
    );

    adapta_bench::finish("exp_overload");
}
