//! Experiment E13 — adaptive request routing over a replica set.
//!
//! Four replicas of one service export themselves to the trader with
//! heterogeneous service times (1/1/2/4 ms). Clients compare binding
//! disciplines over two phases:
//!
//! * **static** — bind once to the first offer and never move (the
//!   trade-once baseline);
//! * **round_robin** — spread blindly, paying every slow replica its
//!   full share;
//! * **p2c_ewma** — power-of-two-choices over observed latency EWMAs;
//! * **weighted_property** — weight picks by the exported `Cost`
//!   property (static knowledge only, no feedback).
//!
//! Mid-run, the replica the static client is bound to — also the one
//! carrying most adaptive traffic — degrades 40x. The claim
//! quantified: feedback-driven policies (p2c_ewma) drain the degraded
//! replica within a few calls and hold p99 near the healthy replicas'
//! service time, while static binding and round-robin absorb the full
//! degradation into their tail.
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_balancer`
//! (`BALANCER_CALLS` scales the per-phase call count, default 240).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adapta_bench::Table;
use adapta_core::SmartProxy;
use adapta_idl::{InterfaceRepository, TypeCode, Value};
use adapta_orb::{ObjRef, Orb, ServantFn};
use adapta_trading::{ExportRequest, PropDef, PropMode, ServiceTypeDef, Trader};

/// Service times per replica, microseconds (index 0 degrades mid-run).
const SERVICE_US: [u64; 4] = [1_000, 1_000, 2_000, 4_000];
const DEGRADED_US: u64 = 40_000;
const THREADS: usize = 4;

fn calls_per_phase() -> usize {
    std::env::var("BALANCER_CALLS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(240)
}

struct Rig {
    #[allow(dead_code)]
    orb: Orb,
    proxy: Option<SmartProxy>,
    /// The fixed binding used by the `static` discipline.
    first: ObjRef,
    knobs: Vec<Arc<AtomicU64>>,
}

/// One orb + trader + four steerable replicas, routed by `policy`
/// (`None` = static binding to the first replica).
fn rig(policy: Option<&str>) -> Rig {
    let service = "E13Svc";
    let orb = Orb::new(&format!("e13-{}", policy.unwrap_or("static")));
    let trader = Trader::new(&orb);
    trader
        .add_type(ServiceTypeDef::new(service).with_property(PropDef::new(
            "Cost",
            TypeCode::Long,
            PropMode::Normal,
        )))
        .unwrap();
    let mut knobs = Vec::new();
    let mut first = None;
    for (i, us) in SERVICE_US.iter().enumerate() {
        let knob = Arc::new(AtomicU64::new(*us));
        let sleep = knob.clone();
        let target = orb
            .activate(
                &format!("replica-{i}"),
                ServantFn::new(service, move |_, args| {
                    std::thread::sleep(Duration::from_micros(sleep.load(Ordering::Relaxed)));
                    Ok(Value::Seq(args))
                }),
            )
            .unwrap();
        trader
            .export(
                ExportRequest::new(service, target.clone())
                    .with_property("Cost", Value::Long((*us / 1_000) as i64)),
            )
            .unwrap();
        first.get_or_insert(target);
        knobs.push(knob);
    }
    let proxy = policy.map(|p| {
        SmartProxy::builder(&orb, &InterfaceRepository::new(), Arc::new(trader), service)
            .balanced(p)
            .build()
            .unwrap()
    });
    Rig {
        orb,
        proxy,
        first: first.unwrap(),
        knobs,
    }
}

struct Phase {
    p50: Duration,
    p99: Duration,
    throughput: f64,
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// `calls` invocations from `THREADS` client threads; per-call latency
/// quantiles and aggregate throughput.
fn drive(rig: &Rig, calls: usize) -> Phase {
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let proxy = rig.proxy.clone();
        let orb = rig.orb.clone();
        let first = rig.first.clone();
        let per_thread = calls / THREADS;
        handles.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(per_thread);
            for i in 0..per_thread {
                let at = Instant::now();
                let args = vec![Value::Long((t * per_thread + i) as i64)];
                match &proxy {
                    Some(p) => {
                        p.invoke("echo", args).expect("balanced invoke");
                    }
                    None => {
                        orb.invoke_ref(&first, "echo", args).expect("static invoke");
                    }
                }
                lat.push(at.elapsed());
            }
            lat
        }));
    }
    let mut lat: Vec<Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let elapsed = started.elapsed();
    lat.sort_unstable();
    Phase {
        p50: quantile(&lat, 0.50),
        p99: quantile(&lat, 0.99),
        throughput: lat.len() as f64 / elapsed.as_secs_f64(),
    }
}

/// The degraded replica's share of picks accumulated so far (balanced
/// rigs only).
fn degraded_share(rig: &Rig) -> Option<f64> {
    let set = rig.proxy.as_ref()?.balancer()?;
    let mut degraded = 0u64;
    let mut total = 0u64;
    for r in set.replicas() {
        let picks = r.stats().picks();
        total += picks;
        if r.target().key == "replica-0" {
            degraded += picks;
        }
    }
    (total > 0).then(|| degraded as f64 / total as f64)
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn main() {
    let calls = calls_per_phase();
    println!("E13: four replicas, service times 1/1/2/4 ms; {THREADS} client threads,");
    println!("{calls} calls per phase. After phase 1 the 1 ms replica the static");
    println!(
        "client is bound to degrades to {} ms; a short detection",
        DEGRADED_US / 1_000
    );
    println!(
        "window ({} calls) runs unmeasured before phase 2.\n",
        calls / 8
    );

    let mut table = Table::new(vec![
        "policy",
        "p50 ms (healthy)",
        "p99 ms (healthy)",
        "p50 ms (degraded)",
        "p99 ms (degraded)",
        "calls/s (degraded)",
        "degraded share",
    ]);
    let mut p99 = std::collections::HashMap::new();
    for policy in [
        None,
        Some("round_robin"),
        Some("p2c_ewma"),
        Some("weighted_property:Cost"),
    ] {
        let label = policy.unwrap_or("static (trade-once)");
        let r = rig(policy);
        let healthy = drive(&r, calls);
        let before = degraded_share(&r);
        r.knobs[0].store(DEGRADED_US, Ordering::Relaxed);
        // Detection window: the first few calls after the degradation
        // inevitably pay the new service time once per client — those
        // probes ARE the adaptation mechanism, so they are driven but
        // excluded from the steady-state phase-2 measurement.
        let _ = drive(&r, calls / 8);
        let degraded = drive(&r, calls);
        // Share attributable to phase 2 alone is not recoverable from
        // cumulative counters; report the cumulative share, which the
        // drain still drags well below round-robin's 1/len.
        let share = degraded_share(&r);
        table.row(vec![
            label.into(),
            ms(healthy.p50),
            ms(healthy.p99),
            ms(degraded.p50),
            ms(degraded.p99),
            format!("{:.0}", degraded.throughput),
            match (before, share) {
                (Some(b), Some(a)) => format!("{:.0}% -> {:.0}%", b * 100.0, a * 100.0),
                _ => "bound".into(),
            },
        ]);
        p99.insert(label.to_string(), degraded.p99);
    }
    table.print();

    let adaptive = p99["p2c_ewma"];
    let blind = p99["round_robin"];
    println!(
        "\np2c_ewma p99 under degradation: {} ms vs round-robin {} ms — the\n\
         feedback loop drains the slow replica; blind spreading keeps paying it.",
        ms(adaptive),
        ms(blind)
    );

    adapta_bench::finish("exp_balancer");
}
