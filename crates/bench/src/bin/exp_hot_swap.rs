//! Experiment E7 — dynamic strategy replacement (Section II/VI).
//!
//! "Because Lua is an interpreted language, these strategies can be
//! dynamically updated" — without recompiling and without interrupting
//! service. We run a client under continuous (virtual-time) traffic,
//! swap its `LoadIncrease` strategy twice mid-run, and verify: zero
//! failed invocations across the swaps, the behaviour flip takes effect
//! at the next event, and the swap itself costs microseconds of wall
//! time (one compile in the script state).
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_hot_swap`

use std::time::{Duration, Instant};

use adapta_bench::Table;
use adapta_core::{Infrastructure, ServerSpec, Subscription};
use adapta_idl::Value;

fn main() {
    let infra = Infrastructure::in_process().expect("infra");
    for name in ["hs-a", "hs-b"] {
        infra
            .spawn_server(ServerSpec::echo("HotSwapSvc", name))
            .expect("server");
    }
    let proxy = infra
        .smart_proxy("HotSwapSvc")
        .preference("min LoadAvg")
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            "function(o, v, m) return v[1] > 1 end",
        ))
        .build()
        .expect("proxy");

    let mut table = Table::new(vec![
        "phase",
        "strategy version",
        "swap wall time",
        "invocations ok",
        "strategy runs (v1/v2/v3)",
    ]);

    let counts = |proxy: &adapta_core::SmartProxy| -> (i64, i64, i64) {
        let out = proxy
            .actor()
            .eval("return (v1 or 0), (v2 or 0), (v3 or 0)")
            .expect("counters");
        (
            out[0].as_long().unwrap_or(0),
            out[1].as_long().unwrap_or(0),
            out[2].as_long().unwrap_or(0),
        )
    };

    let mut ok_invocations = 0u64;
    let mut drive =
        |label: &str, version: &str, swap_cost: String, proxy: &adapta_core::SmartProxy| {
            // 5 minutes of traffic against a loaded binding: events flow,
            // strategies run, service never breaks.
            let bound = proxy.invoke("whoami", vec![]).expect("invoke");
            ok_invocations += 1;
            infra.set_background(bound.as_str().unwrap(), 4.0);
            for _ in 0..10 {
                infra.advance(Duration::from_secs(30));
                proxy
                    .invoke("hello", vec![Value::from("swap")])
                    .expect("service must not be interrupted");
                ok_invocations += 1;
            }
            let (v1, v2, v3) = counts(proxy);
            table.row(vec![
                label.into(),
                version.into(),
                swap_cost,
                ok_invocations.to_string(),
                format!("{v1}/{v2}/{v3}"),
            ]);
        };

    // Version 1.
    proxy
        .set_strategy_script(
            "LoadIncrease",
            "function(self, event) v1 = (v1 or 0) + 1 self:_reselect() end",
        )
        .expect("install v1");
    drive("phase 1", "v1", "-".into(), &proxy);

    // Hot swap to version 2 (no restart, traffic continues).
    let t0 = Instant::now();
    proxy
        .set_strategy_script(
            "LoadIncrease",
            "function(self, event) v2 = (v2 or 0) + 1 self:_reselect() end",
        )
        .expect("install v2");
    let swap1 = t0.elapsed();
    drive("phase 2", "v2", format!("{swap1:.0?}"), &proxy);

    // Hot swap to version 3: a *different policy* — stay put, relax.
    let t0 = Instant::now();
    proxy
        .set_strategy_script(
            "LoadIncrease",
            "function(self, event) v3 = (v3 or 0) + 1 end", // do nothing: tolerate load
        )
        .expect("install v3");
    let swap2 = t0.elapsed();
    let rebinds_before_v3 = proxy.rebinds();
    drive("phase 3", "v3 (tolerate)", format!("{swap2:.0?}"), &proxy);
    let rebinds_after_v3 = proxy.rebinds();

    table.print();
    println!(
        "\nv3 changed the policy itself: rebinds during phase 3 = {} \
         (v1/v2 reselect, v3 tolerates)\nall {} invocations succeeded across both swaps",
        rebinds_after_v3 - rebinds_before_v3,
        ok_invocations
    );
    let (v1, v2, v3) = counts(&proxy);
    assert!(
        v1 > 0 && v2 > 0 && v3 > 0,
        "all three versions must have run"
    );

    adapta_bench::finish("exp_hot_swap");
}
