//! Experiment E1 — client-driven load sharing (Section V).
//!
//! Compares the three client binding policies on the same shifting-load
//! scenario: `static-random`, `trade-once` (the Badidi et al. PDCS'99
//! baseline the paper extends) and `auto-adaptive` (the paper's smart
//! proxy with `LoadIncrease` events).
//!
//! Expected shape: auto-adaptive has the lowest tail latency and the
//! most balanced request distribution; trade-once is competitive before
//! the load shifts and degrades after (the paper: "if the client-server
//! interactions are long, the system may become unbalanced");
//! static-random ignores load entirely.
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_load_sharing`

use std::time::Duration;

use adapta_bench::{run_load_sharing, LoadSharingParams, Table};
use adapta_core::policies::BindingPolicy;
use adapta_telemetry::json::{Arr, Obj};

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    if json_mode {
        let mut rows = Arr::new();
        for &policy in BindingPolicy::ALL.iter() {
            let params = LoadSharingParams {
                policy,
                ..LoadSharingParams::default()
            };
            let mut out = run_load_sharing(&params);
            let mut servers = Arr::new();
            for &n in &out.per_server_requests {
                servers = servers.u64(n);
            }
            let row = Obj::new()
                .str("policy", policy.label())
                .f64("mean_ms", out.latency.mean().as_secs_f64() * 1e3)
                .f64("p50_ms", out.latency.quantile(0.50).as_secs_f64() * 1e3)
                .f64("p95_ms", out.latency.quantile(0.95).as_secs_f64() * 1e3)
                .f64("p99_ms", out.latency.quantile(0.99).as_secs_f64() * 1e3)
                .f64("imbalance", out.imbalance())
                .raw("per_server_requests", &servers.finish())
                .u64("rebinds", out.rebinds)
                .u64("events", out.events)
                .u64("trader_queries", out.trader_queries)
                .u64("completed", out.completed)
                .finish();
            rows = rows.raw(&row);
        }
        println!("{}", rows.finish());
        return;
    }

    println!("E1: client-driven load sharing — 4 servers, 8 closed-loop clients,");
    println!("30 simulated minutes; background load lands on srv0 at t=10min and");
    println!("moves to srv1 at t=20min. Latency = service time under contention.\n");

    let mut table = Table::new(vec![
        "policy",
        "mean",
        "p50",
        "p95",
        "p99",
        "imbalance",
        "req/server",
        "rebinds",
        "events",
        "queries",
    ]);
    for policy in BindingPolicy::ALL {
        let params = LoadSharingParams {
            policy,
            ..LoadSharingParams::default()
        };
        let mut out = run_load_sharing(&params);
        let shares: Vec<String> = out
            .per_server_requests
            .iter()
            .map(|n| n.to_string())
            .collect();
        let ms = |d: std::time::Duration| format!("{:.0}ms", d.as_secs_f64() * 1e3);
        table.row(vec![
            policy.label().into(),
            ms(out.latency.mean()),
            ms(out.latency.quantile(0.50)),
            ms(out.latency.quantile(0.95)),
            ms(out.latency.quantile(0.99)),
            format!("{:.3}", out.imbalance()),
            shares.join("/"),
            out.rebinds.to_string(),
            out.events.to_string(),
            out.trader_queries.to_string(),
        ]);
    }
    table.print();

    // Session-length sweep: the paper's claim is specifically about
    // *long* interactions. Short sessions end before the shift hurts.
    println!("\nE1b: p95 latency vs session length (when does trade-once degrade?)\n");
    let mut sweep = Table::new(vec![
        "session",
        "trade-once p95",
        "auto-adaptive p95",
        "adaptive advantage",
    ]);
    for minutes in [5u64, 15, 30, 60] {
        let mut results = Vec::new();
        for policy in [BindingPolicy::TradeOnce, BindingPolicy::AutoAdaptive] {
            let params = LoadSharingParams {
                policy,
                duration: Duration::from_secs(minutes * 60),
                ..LoadSharingParams::default()
            };
            let mut out = run_load_sharing(&params);
            results.push(out.latency.quantile(0.95));
        }
        let (once, adaptive) = (results[0], results[1]);
        let advantage = if adaptive.as_secs_f64() > 0.0 {
            once.as_secs_f64() / adaptive.as_secs_f64()
        } else {
            f64::NAN
        };
        sweep.row(vec![
            format!("{minutes} min"),
            format!("{:.0}ms", once.as_secs_f64() * 1e3),
            format!("{:.0}ms", adaptive.as_secs_f64() * 1e3),
            format!("{advantage:.2}x"),
        ]);
    }
    sweep.print();

    // E1c: the same comparison under an open (Poisson) arrival process —
    // completions no longer gate arrivals, so an overloaded server
    // builds a real queue instead of throttling its clients.
    println!("\nE1c: open-loop arrivals (12 req/s Poisson, same load script)\n");
    let mut open = Table::new(vec![
        "policy",
        "mean",
        "p95",
        "p99",
        "imbalance",
        "completed",
    ]);
    for policy in BindingPolicy::ALL {
        let params = LoadSharingParams {
            policy,
            open_loop_rate: Some(12.0),
            ..LoadSharingParams::default()
        };
        let mut out = run_load_sharing(&params);
        let ms = |d: std::time::Duration| format!("{:.0}ms", d.as_secs_f64() * 1e3);
        open.row(vec![
            policy.label().into(),
            ms(out.latency.mean()),
            ms(out.latency.quantile(0.95)),
            ms(out.latency.quantile(0.99)),
            format!("{:.3}", out.imbalance()),
            out.completed.to_string(),
        ]);
    }
    open.print();

    adapta_bench::finish("exp_load_sharing");
}
