//! Experiment E11 — chaos: the recovery policy under injected faults.
//!
//! A smart proxy armed with a retry policy (exponential backoff with
//! decorrelated jitter) and a per-target circuit breaker calls through
//! four phases of orchestrated misbehaviour on its preferred endpoint:
//! healthy, a drop+delay storm, a disconnect storm, and recovery. The
//! claim quantified: the same trading machinery that buys adaptation
//! also buys availability — the application sees zero failed calls
//! while the transport is actively sabotaged.
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_chaos`
//! (`CHAOS_CALLS` scales the per-phase call count, default 200).

use std::sync::Arc;
use std::time::{Duration, Instant};

use adapta_bench::Table;
use adapta_core::{BreakerConfig, RetryPolicy, SmartProxy};
use adapta_idl::{InterfaceRepository, TypeCode, Value};
use adapta_orb::{FaultAction, FaultRule, ObjRef, Orb, ServantFn};
use adapta_telemetry::registry;
use adapta_trading::{ExportRequest, PropDef, PropMode, ServiceTypeDef, Trader};

fn calls_per_phase() -> usize {
    std::env::var("CHAOS_CALLS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

fn tcp_echo(name: &str) -> (Orb, String) {
    let orb = Orb::new(name);
    orb.activate(
        "svc",
        ServantFn::new("ChaosSvc", |_, _| Ok(Value::from("pong"))),
    )
    .unwrap();
    let endpoint = orb.listen_tcp("127.0.0.1:0").unwrap();
    (orb, endpoint)
}

struct PhaseStats {
    name: &'static str,
    ok: usize,
    failed: usize,
    retries: u64,
    failovers: u64,
    injected: u64,
    opened: u64,
    closed: u64,
    elapsed: Duration,
}

fn counter(name: &str) -> u64 {
    registry().snapshot().counter(name).unwrap_or(0)
}

fn main() {
    let calls = calls_per_phase();
    println!("E11 — chaos: fault injection vs the recovery policy.");
    println!(
        "Two TCP servers; the preferred one is sabotaged per phase; the\n\
         smart proxy runs retry(6, jittered backoff) + a circuit breaker\n\
         (window 6, open 40ms). {calls} calls per phase.\n"
    );

    let (_flaky, flaky_ep) = tcp_echo("chaos-e11-flaky");
    let (_stable, stable_ep) = tcp_echo("chaos-e11-stable");

    let client = Orb::new("chaos-e11-client");
    let trader = Trader::new(&client);
    trader
        .add_type(ServiceTypeDef::new("ChaosSvc").with_property(PropDef::new(
            "Rank",
            TypeCode::Long,
            PropMode::Normal,
        )))
        .unwrap();
    for (endpoint, rank) in [(&flaky_ep, 2i64), (&stable_ep, 1)] {
        trader
            .export(
                ExportRequest::new(
                    "ChaosSvc",
                    ObjRef::new(endpoint.as_str(), "svc", "ChaosSvc"),
                )
                .with_property("Rank", Value::Long(rank)),
            )
            .unwrap();
    }
    let repo = InterfaceRepository::new();
    let proxy = SmartProxy::builder(&client, &repo, Arc::new(trader), "ChaosSvc")
        .preference("max Rank")
        .retry_policy(
            RetryPolicy::new(6)
                .base(Duration::from_millis(2))
                .cap(Duration::from_millis(10)),
        )
        .circuit_breaker(BreakerConfig {
            window: 6,
            min_calls: 3,
            failure_threshold: 0.5,
            open_for: Duration::from_millis(40),
        })
        .dead_target_ttl(Duration::from_millis(5))
        .build()
        .unwrap();

    let plan = client.fault_plan();
    let phases: Vec<(&'static str, Vec<FaultRule>)> = vec![
        ("healthy", vec![]),
        (
            "drop 30% + delay 20%",
            vec![
                FaultRule::new(flaky_ep.clone(), "*", FaultAction::Drop).probability(0.30),
                FaultRule::new(
                    flaky_ep.clone(),
                    "*",
                    FaultAction::Delay(Duration::from_millis(3)),
                )
                .probability(0.20),
            ],
        ),
        (
            "disconnect 25%",
            vec![FaultRule::new(flaky_ep.clone(), "*", FaultAction::Disconnect).probability(0.25)],
        ),
        ("recovered", vec![]),
    ];

    let opened_name = "proxy.ChaosSvc.breaker.opened";
    let closed_name = "proxy.ChaosSvc.breaker.closed";
    let mut stats = Vec::new();
    for (name, rules) in phases {
        plan.clear();
        for rule in rules {
            plan.add(rule);
        }
        // Let breaker cool-downs from the previous phase elapse, so
        // each phase shows steady-state behaviour (calls run ~70µs —
        // without this gap a whole phase fits inside one cool-down).
        std::thread::sleep(Duration::from_millis(60));
        let retries0 = proxy.retries();
        let failovers0 = proxy.failovers();
        let injected0 = plan.injected();
        let opened0 = counter(opened_name);
        let closed0 = counter(closed_name);
        let started = Instant::now();
        let mut ok = 0;
        let mut failed = 0;
        for _ in 0..calls {
            // Re-run component selection each call, as an adaptation
            // strategy would: traffic keeps preferring the sabotaged
            // high-rank endpoint instead of settling on the backup, so
            // the recovery policy stays under fire all phase.
            let _ = proxy.reselect();
            match proxy.invoke("ping", vec![]) {
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
        }
        stats.push(PhaseStats {
            name,
            ok,
            failed,
            retries: proxy.retries() - retries0,
            failovers: proxy.failovers() - failovers0,
            injected: plan.injected() - injected0,
            opened: counter(opened_name) - opened0,
            closed: counter(closed_name) - closed0,
            elapsed: started.elapsed(),
        });
    }

    let mut table = Table::new(vec![
        "phase",
        "ok",
        "failed",
        "faults injected",
        "retries",
        "failovers",
        "breaker opened",
        "breaker closed",
        "elapsed",
    ]);
    let mut total_failed = 0;
    for s in &stats {
        total_failed += s.failed;
        table.row(vec![
            s.name.into(),
            s.ok.to_string(),
            s.failed.to_string(),
            s.injected.to_string(),
            s.retries.to_string(),
            s.failovers.to_string(),
            s.opened.to_string(),
            s.closed.to_string(),
            format!("{:?}", s.elapsed),
        ]);
    }
    table.print();
    println!(
        "\n(total failed calls across all phases: {total_failed} — the recovery\n\
         policy absorbs the storm; the breaker sheds load from the flaky\n\
         endpoint instead of hammering it)"
    );

    adapta_bench::finish("exp_chaos");
}
