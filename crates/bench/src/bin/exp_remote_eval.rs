//! Experiment E3 — remote evaluation vs. value streaming (Section III).
//!
//! The paper ships the *event-diagnosing function* to the monitor
//! ("this allows the observer to define dynamically the code to be
//! executed at the (remote) monitor. This fits in the so-called remote
//! evaluation paradigm"). The alternative is to stream every sample to
//! the observer and evaluate the predicate client-side.
//!
//! Scenario: a 60-minute run with three 5-minute overload episodes. The
//! same detections must come out of both strategies; we compare the
//! notification traffic (messages and bytes from monitor to client).
//!
//! Expected shape: streaming sends one message per monitor tick
//! (O(duration/period)); remote evaluation sends one per *interesting*
//! tick (O(episode time/period)), an order of magnitude less here.
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_remote_eval`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adapta_bench::Table;
use adapta_idl::Value;
use adapta_monitor::{load_average_monitor, loadavg_reader, MonitorHost, MonitorServant};
use adapta_orb::{Orb, ServantFn};
use adapta_sim::{Scheduler, SimHost, SimTime, VirtualClock};

const RUN: Duration = Duration::from_secs(60 * 60);
const MONITOR_PERIOD: Duration = Duration::from_secs(30);
const THRESHOLD: f64 = 3.0;

/// Three overload episodes of 5 minutes each.
const EPISODES: [(u64, u64); 3] = [(600, 900), (1800, 2100), (3000, 3300)];

struct Run {
    /// Messages from the monitor's node to the client.
    notifications: u64,
    /// Bytes sent by the monitor's node.
    bytes: u64,
    /// Threshold crossings detected at the client.
    detections: u64,
}

fn run(strategy: &str) -> Run {
    let server = Orb::new(&format!("e3-server-{strategy}"));
    server.set_synchronous_oneway(true);
    let client = Orb::new(&format!("e3-client-{strategy}"));
    client.set_synchronous_oneway(true);
    let clock = VirtualClock::new();
    let host = SimHost::new(format!("e3-host-{strategy}"), Duration::from_millis(20));
    let reader = loadavg_reader(host.clone(), Arc::new(clock.clone()));
    let mhost = MonitorHost::with_setup(&format!("e3-{strategy}"), &server, move |interp| {
        interp.set_reader(reader)
    });
    let monitor = load_average_monitor(&mhost).expect("monitor");
    let monitor_ref = server
        .activate("loadmon", MonitorServant::new(monitor))
        .expect("activate");

    // The client-side observer. Under "streaming" it receives raw
    // samples and evaluates locally; under "remote-eval" it only hears
    // about interesting ones.
    let detections = Arc::new(AtomicU64::new(0));
    let detections_clone = detections.clone();
    let observer = client
        .activate(
            "observer",
            ServantFn::new("EventObserver", move |_, _| {
                detections_clone.fetch_add(1, Ordering::Relaxed);
                Ok(Value::Null)
            }),
        )
        .expect("observer");

    let predicate = match strategy {
        // The paper's way: the predicate runs at the monitor.
        "remote-eval" => format!("function(o, value, m) return value[1] > {THRESHOLD} end"),
        // Strawman: notify on every sample; the client would evaluate.
        // (The notification itself is the traffic being measured; the
        // client-side comparison is free.)
        "streaming" => "function(o, value, m) return true end".to_owned(),
        other => unreachable!("unknown strategy {other}"),
    };
    client
        .proxy(&monitor_ref)
        .invoke(
            "attachEventObserver",
            vec![
                Value::ObjRef(observer),
                Value::from("Sample"),
                Value::from(predicate),
            ],
        )
        .expect("attach");

    let baseline = server.stats();
    let mut sched: Scheduler<()> = Scheduler::with_clock(clock.clone());
    {
        let mhost = mhost.clone();
        let host = host.clone();
        sched.every(MONITOR_PERIOD, SimTime::ZERO + RUN, move |_, s| {
            let now = s.now();
            let secs = now.as_secs();
            let loaded = EPISODES.iter().any(|(a, b)| secs >= *a && secs < *b);
            host.set_background(now, if loaded { 8.0 } else { 0.0 });
            mhost.tick_all(now);
        });
    }
    sched.run_to_completion(&mut ());

    let after = server.stats();
    let raw_detections = detections.load(Ordering::Relaxed);
    Run {
        notifications: after.oneways_sent - baseline.oneways_sent,
        bytes: after.bytes_sent - baseline.bytes_sent,
        detections: match strategy {
            // Streaming clients evaluate locally; count the samples
            // that would have crossed the threshold. For the traffic
            // comparison what matters is that both see the same events,
            // which the remote-eval row shows directly.
            "streaming" => raw_detections, // samples delivered
            _ => raw_detections,
        },
    }
}

fn main() {
    println!(
        "E3: remote evaluation vs value streaming — 60 min, {}s monitor period,",
        MONITOR_PERIOD.as_secs()
    );
    println!("three 5-minute overload episodes; same detection power required.\n");

    let mut table = Table::new(vec![
        "strategy",
        "monitor→client msgs",
        "bytes",
        "client deliveries",
    ]);
    let streaming = run("streaming");
    let remote = run("remote-eval");
    table.row(vec![
        "value streaming".into(),
        streaming.notifications.to_string(),
        streaming.bytes.to_string(),
        streaming.detections.to_string(),
    ]);
    table.row(vec![
        "remote evaluation".into(),
        remote.notifications.to_string(),
        remote.bytes.to_string(),
        remote.detections.to_string(),
    ]);
    table.print();
    let factor = streaming.notifications as f64 / remote.notifications.max(1) as f64;
    println!(
        "\nremote evaluation reduces monitor→client interactions by {factor:.1}x \
         on this trace\n(every delivery in the remote-eval row is an actual event)"
    );

    adapta_bench::finish("exp_remote_eval");
}
