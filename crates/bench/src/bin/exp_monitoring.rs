//! Experiment E2 — event-driven monitoring vs. polling (Section III).
//!
//! The paper: "To avoid the need for applications to poll monitors
//! continuously … we decided to support an event-driven monitoring
//! strategy. … The transfer of event detection to monitors allows a
//! reduction in the number of interactions between these objects and
//! their observers."
//!
//! Scenario: one host idles for 17 minutes, then its load jumps past
//! the threshold; the run lasts 30 minutes. A polling client asks the
//! monitor `getValue` every `p` seconds; an event client registers one
//! observer (1 message) and receives oneway notifications. We report
//! messages exchanged and detection latency for each strategy.
//!
//! Expected shape: polling costs O(duration/p) messages with mean
//! detection latency ~p/2; the event strategy costs O(detections)
//! messages and detects within one monitor period.
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_monitoring`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adapta_bench::Table;
use adapta_idl::Value;
use adapta_monitor::{load_average_monitor, loadavg_reader, MonitorHost, MonitorServant};
use adapta_orb::{Orb, ServantFn};
use adapta_sim::{Clock, Scheduler, SimHost, SimTime, VirtualClock};

const RUN: Duration = Duration::from_secs(30 * 60);
const SPIKE_AT: Duration = Duration::from_secs(17 * 60);
const MONITOR_PERIOD: Duration = Duration::from_secs(30);
const THRESHOLD: f64 = 3.0;

struct Setup {
    clock: VirtualClock,
    server: Orb,
    client: Orb,
    host: SimHost,
    mhost: MonitorHost,
    monitor_ref: adapta_orb::ObjRef,
}

fn setup(tag: &str) -> Setup {
    let server = Orb::new(&format!("e2-server-{tag}"));
    server.set_synchronous_oneway(true);
    let client = Orb::new(&format!("e2-client-{tag}"));
    client.set_synchronous_oneway(true);
    let clock = VirtualClock::new();
    let host = SimHost::new(format!("e2-host-{tag}"), Duration::from_millis(20));
    let reader = loadavg_reader(host.clone(), Arc::new(clock.clone()));
    let mhost = MonitorHost::with_setup(&format!("e2-{tag}"), &server, move |interp| {
        interp.set_reader(reader)
    });
    let monitor = load_average_monitor(&mhost).expect("figure-3 monitor");
    let monitor_ref = server
        .activate("loadmon", MonitorServant::new(monitor))
        .expect("activate monitor");
    Setup {
        clock,
        server,
        client,
        host,
        mhost,
        monitor_ref,
    }
}

/// Drives the scenario; `on_tick` runs after each monitor cycle.
fn drive(s: &Setup, mut on_tick: impl FnMut(SimTime)) {
    let mut sched: Scheduler<()> = Scheduler::with_clock(s.clock.clone());
    {
        let mhost = s.mhost.clone();
        let host = s.host.clone();
        sched.every(MONITOR_PERIOD, SimTime::ZERO + RUN, move |_, sc| {
            let now = sc.now();
            if now >= SimTime::ZERO + SPIKE_AT {
                host.set_background(now, 6.0);
            }
            mhost.tick_all(now);
        });
    }
    // Interleave the client's observation points with the ticks.
    let mut world = ();
    let mut t = SimTime::ZERO;
    while t < SimTime::ZERO + RUN {
        let next = t + MONITOR_PERIOD;
        sched.run_until(&mut world, next);
        on_tick(next);
        t = next;
    }
}

fn polling_run(period: Duration) -> (u64, Option<Duration>) {
    let s = setup(&format!("poll{}", period.as_secs()));
    let proxy = s.client.proxy(&s.monitor_ref);
    let mut detected: Option<Duration> = None;
    let mut next_poll = SimTime::ZERO + period;
    drive(&s, |now| {
        while next_poll <= now {
            // One poll = request + reply.
            if detected.is_none() {
                if let Ok(v) = proxy.invoke("getValue", vec![]) {
                    let one = v.at(0).and_then(Value::as_double).unwrap_or(0.0);
                    if one > THRESHOLD {
                        detected = Some(next_poll - (SimTime::ZERO + SPIKE_AT));
                    }
                }
            } else {
                // Keep polling (a real client watches continuously).
                let _ = proxy.invoke("getValue", vec![]);
            }
            next_poll += period;
        }
    });
    let msgs = s.client.stats().requests_sent + s.client.stats().replies_received;
    (msgs, detected)
}

fn event_run() -> (u64, Option<Duration>) {
    let s = setup("event");
    let detected = Arc::new(AtomicU64::new(u64::MAX));
    let detected_clone = detected.clone();
    let clock = s.clock.clone();
    let observer = s
        .client
        .activate(
            "observer",
            ServantFn::new("EventObserver", move |_, _| {
                let now = clock.now().as_nanos();
                let _ = detected_clone.compare_exchange(
                    u64::MAX,
                    now,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                Ok(Value::Null)
            }),
        )
        .expect("observer");
    // One registration message carrying the predicate (remote
    // evaluation), then only oneway notifications.
    s.client
        .proxy(&s.monitor_ref)
        .invoke(
            "attachEventObserver",
            vec![
                Value::ObjRef(observer),
                Value::from("LoadIncrease"),
                Value::from(format!(
                    "function(o, value, m) return value[1] > {THRESHOLD} end"
                )),
            ],
        )
        .expect("attach");
    drive(&s, |_| {});
    let cs = s.client.stats();
    let ss = s.server.stats();
    // Client messages: the attach round trip; server → client: the
    // oneway notifications.
    let msgs = cs.requests_sent + cs.replies_received + ss.oneways_sent;
    let detected = match detected.load(Ordering::SeqCst) {
        u64::MAX => None,
        nanos => Some(SimTime::from_nanos(nanos) - (SimTime::ZERO + SPIKE_AT)),
    };
    (msgs, detected)
}

fn main() {
    println!("E2: event-driven monitoring vs polling — 30 min run, load spike at 17 min,");
    println!("monitor period {MONITOR_PERIOD:?}, threshold {THRESHOLD}.\n");

    let mut table = Table::new(vec![
        "strategy",
        "poll period",
        "messages",
        "detection latency",
    ]);
    for period in [5u64, 15, 30, 60, 120] {
        let (msgs, detected) = polling_run(Duration::from_secs(period));
        table.row(vec![
            "polling".into(),
            format!("{period}s"),
            msgs.to_string(),
            detected
                .map(|d| format!("{d:.0?}"))
                .unwrap_or_else(|| "missed".into()),
        ]);
    }
    let (msgs, detected) = event_run();
    table.row(vec![
        "event-driven".into(),
        "-".into(),
        msgs.to_string(),
        detected
            .map(|d| format!("{d:.0?}"))
            .unwrap_or_else(|| "missed".into()),
    ]);
    table.print();
    println!(
        "\n(polling trades messages for latency along the period sweep; the\n\
         event strategy gets both: O(detections) messages and detection\n\
         within one monitor period)"
    );

    adapta_bench::finish("exp_monitoring");
}
