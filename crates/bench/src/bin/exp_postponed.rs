//! Experiment E6 (ablation) — postponed vs. immediate event handling.
//!
//! The paper's design choice: "Typically, when the smart proxy receives
//! an event, it inserts it in a queue and postpones its handling until
//! the next service invocation. … The postponement of event handling
//! avoids conflicts with ongoing traffic when a reconfiguration is
//! done."
//!
//! Quantified here for a *slow* client (long think times) facing a
//! *noisy* monitor: with immediate handling, every notification runs
//! the strategy — trader queries and rebinds happen even while the
//! client is idle and will re-select again anyway before its next call;
//! with postponed handling, adaptation work is bounded by the
//! invocation rate. The cost of postponing is staleness: the binding
//! used at invocation time is chosen then, so its decision delay is
//! ~zero; the event just waits.
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_postponed`

use std::time::Duration;

use adapta_bench::Table;
use adapta_core::{Infrastructure, ServerSpec, Subscription};
use adapta_idl::Value;
use adapta_sim::workload::exp_duration;
use adapta_sim::{Scheduler, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

const RUN: Duration = Duration::from_secs(30 * 60);
const MONITOR_PERIOD: Duration = Duration::from_secs(30);
const THINK_MEAN: Duration = Duration::from_secs(120);

struct Outcome {
    events: u64,
    strategy_runs: u64,
    trader_queries: u64,
    rebinds: u64,
    invocations: u64,
}

fn run(immediate: bool) -> Outcome {
    let infra = Infrastructure::in_process().expect("infra");
    for name in ["e6-a", "e6-b", "e6-c"] {
        infra
            .spawn_server(ServerSpec::echo("E6Svc", name))
            .expect("server");
    }
    let queries0 = infra.trader().query_count();
    let mut builder = infra
        .smart_proxy("E6Svc")
        .preference("min LoadAvg")
        .subscribe(Subscription::new(
            "LoadAvg",
            "LoadIncrease",
            // A twitchy predicate: any visible load fires it, so the
            // monitor is noisy on purpose.
            "function(o, value, m) return value[1] > 0.5 end",
        ));
    if immediate {
        builder = builder.immediate_handling();
    }
    let proxy = builder.build().expect("proxy");
    // The default Reselect strategy counts via rebinds/queries; track
    // strategy runs with events_handled.

    let mut sched: Scheduler<()> = Scheduler::with_clock(infra.clock().clone());
    let end = SimTime::ZERO + RUN;
    {
        let infra = infra.clone();
        sched.every(MONITOR_PERIOD, end, move |_, s| {
            let now = s.now();
            // Load oscillates between hosts so the "best" keeps moving.
            let phase = (now.as_secs() / 300) % 3;
            for (i, server) in infra.servers().into_iter().enumerate() {
                let jobs = if i as u64 == phase { 4.0 } else { 0.5 };
                server.sim_host().set_background(now, jobs);
                server.monitor_host().tick_all(now);
            }
        });
    }
    // A slow closed-loop client.
    fn next_call(
        sched: &mut Scheduler<()>,
        at: SimTime,
        proxy: adapta_core::SmartProxy,
        mut rng: StdRng,
        end: SimTime,
    ) {
        sched.at(at, move |_, s| {
            let _ = proxy.invoke("hello", vec![Value::from("x")]);
            let think = exp_duration(&mut rng, THINK_MEAN);
            let next = s.now() + think;
            if next < end {
                next_call(s, next, proxy, rng, end);
            }
        });
    }
    next_call(
        &mut sched,
        SimTime::ZERO + Duration::from_secs(1),
        proxy.clone(),
        StdRng::seed_from_u64(7),
        end,
    );
    sched.run_to_completion(&mut ());

    Outcome {
        events: proxy.events_received(),
        strategy_runs: proxy.events_handled(),
        trader_queries: infra.trader().query_count() - queries0,
        rebinds: proxy.rebinds(),
        invocations: proxy.invocations(),
    }
}

fn main() {
    println!("E6: postponed vs immediate event handling — 30 min, noisy monitor");
    println!(
        "({}s period), slow client (mean think {}s).\n",
        MONITOR_PERIOD.as_secs(),
        THINK_MEAN.as_secs()
    );

    let mut table = Table::new(vec![
        "handling",
        "invocations",
        "events",
        "strategy runs",
        "trader queries",
        "rebinds",
        "adaptation work/invocation",
    ]);
    for (label, immediate) in [("postponed (paper)", false), ("immediate (ablation)", true)] {
        let out = run(immediate);
        table.row(vec![
            label.into(),
            out.invocations.to_string(),
            out.events.to_string(),
            out.strategy_runs.to_string(),
            out.trader_queries.to_string(),
            out.rebinds.to_string(),
            format!(
                "{:.1}",
                out.strategy_runs as f64 / out.invocations.max(1) as f64
            ),
        ]);
    }
    table.print();
    println!(
        "\n(immediate handling spends adaptation work on every notification,\n\
         even between invocations; postponement bounds it by the client's\n\
         own call rate — the paper's rationale, made measurable)"
    );

    adapta_bench::finish("exp_postponed");
}
