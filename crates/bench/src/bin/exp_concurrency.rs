//! Experiment E10 (extension) — transport concurrency.
//!
//! The TCP client transport multiplexes any number of in-flight
//! requests onto one pooled connection per endpoint, and the server
//! dispatches each request onto a per-connection worker pool. K
//! concurrent calls to a slow servant should therefore finish in
//! roughly *one* call's latency, where a lock-the-stream-per-round-trip
//! transport takes K round trips back to back.
//!
//! The experiment runs real sockets on the loopback interface (this is
//! a wall-clock measurement, not a virtual-time simulation): a servant
//! that sleeps `SERVANT_MS` per call, hit by 1, 2, 4, 8 and 16
//! concurrent callers sharing one client orb — hence one multiplexed
//! connection.
//!
//! Run with: `cargo run -p adapta-bench --release --bin exp_concurrency`

use std::time::{Duration, Instant};

use adapta_bench::Table;
use adapta_idl::Value;
use adapta_orb::{ObjRef, Orb, ServantFn};

const SERVANT_MS: u64 = 20;
const CALLERS: [usize; 5] = [1, 2, 4, 8, 16];
const ROUNDS: usize = 5;

/// One batch: `k` threads each make a single call, all on the shared
/// client orb; returns the batch wall-clock.
fn batch(client: &Orb, target: &ObjRef, k: usize) -> Duration {
    let started = Instant::now();
    let handles: Vec<_> = (0..k)
        .map(|i| {
            let client = client.clone();
            let target = target.clone();
            std::thread::spawn(move || {
                client
                    .invoke_ref(&target, "work", vec![Value::Long(i as i64)])
                    .expect("bench invoke")
            })
        })
        .collect();
    for h in handles {
        h.join().expect("bench caller panicked");
    }
    started.elapsed()
}

fn main() {
    println!("E10 (extension): K concurrent callers share one multiplexed TCP");
    println!("connection to a servant that takes {SERVANT_MS} ms per call. A");
    println!("serializing transport needs K x {SERVANT_MS} ms per batch; a");
    println!("multiplexed one stays near one call's latency.\n");

    let server = Orb::new("exp-conc-server");
    server
        .activate(
            "svc",
            ServantFn::new("ConcSvc", |_, args| {
                std::thread::sleep(Duration::from_millis(SERVANT_MS));
                Ok(Value::Seq(args))
            }),
        )
        .expect("activate");
    let endpoint = server.listen_tcp("127.0.0.1:0").expect("listen");
    let client = Orb::new("exp-conc-client");
    let target = ObjRef::new(endpoint, "svc", "ConcSvc");
    // Warm the pooled connection so measurements exclude setup.
    client
        .invoke_ref(&target, "work", vec![])
        .expect("warm-up call");

    let registry = adapta_telemetry::registry();
    let mut table = Table::new(vec![
        "callers",
        "batch wall-clock (best of 5)",
        "serial baseline",
        "speedup",
    ]);
    for k in CALLERS {
        let hist = registry.histogram(&format!("exp.concurrency.batch.{k}"));
        let mut best = Duration::MAX;
        for _ in 0..ROUNDS {
            let took = batch(&client, &target, k);
            hist.record(took);
            best = best.min(took);
        }
        let serial = Duration::from_millis(SERVANT_MS * k as u64);
        registry
            .gauge(&format!("exp.concurrency.speedup_pct.{k}"))
            .set((serial.as_secs_f64() / best.as_secs_f64() * 100.0) as i64);
        table.row(vec![
            k.to_string(),
            format!("{:.1} ms", best.as_secs_f64() * 1e3),
            format!("{} ms", serial.as_millis()),
            format!("{:.1}x", serial.as_secs_f64() / best.as_secs_f64()),
        ]);
    }
    table.print();
    println!(
        "\n(all batches ran over ONE pooled connection: client in-flight peak\n\
         and pipeline depth are in the metrics snapshot below)"
    );

    adapta_bench::finish("concurrency");
}
