//! Experiment E4 — the invocation-cost ladder.
//!
//! The paper's Section VI argues the interpreted layers are cheap
//! enough to interpose everywhere ("the Lua interpreter is typically
//! faster than other common scripting languages, and has a small
//! memory footprint"). This bench measures every rung:
//!
//! 1. direct servant call (no broker),
//! 2. dynamic invocation through the in-process broker (full
//!    marshalling round trip — the honest DII cost),
//! 3. the same through a smart proxy (selection cached, event-queue
//!    drain on each call),
//! 4. a script-implemented servant (the DSI + interpreter cost),
//! 5. dynamic invocation over TCP (loopback).

use std::hint::black_box;

use adapta_bridge::ScriptActor;
use adapta_core::{Infrastructure, ScriptServant, ServerSpec};
use adapta_idl::Value;
use adapta_orb::{Orb, Servant, ServantFn};
use criterion::{criterion_group, criterion_main, Criterion};

fn echo() -> ServantFn {
    ServantFn::new("Echo", |_, args| {
        Ok(args.into_iter().next().unwrap_or(Value::Null))
    })
}

fn bench_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("invocation");
    let arg = || vec![Value::from("payload-string"), Value::Long(42)];

    // 1. Direct servant call.
    {
        let servant = echo();
        group.bench_function("direct_servant", |b| {
            b.iter(|| servant.invoke(black_box("echo"), black_box(arg())).unwrap())
        });
    }

    // 2. In-process dynamic invocation (DII + marshalling).
    {
        let server = Orb::new("bench-inproc-server");
        let objref = server.activate("echo", echo()).unwrap();
        let client = Orb::new("bench-inproc-client");
        let proxy = client.proxy(&objref);
        group.bench_function("orb_inproc", |b| {
            b.iter(|| proxy.invoke(black_box("echo"), black_box(arg())).unwrap())
        });
    }

    // 3. Through a smart proxy (bound; measures interposition cost).
    {
        let infra = Infrastructure::in_process().unwrap();
        infra
            .spawn_server(ServerSpec::echo("BenchSvc", "bench-host"))
            .unwrap();
        let proxy = infra.smart_proxy("BenchSvc").build().unwrap();
        group.bench_function("smart_proxy", |b| {
            b.iter(|| proxy.invoke(black_box("echo"), black_box(arg())).unwrap())
        });
    }

    // 4. Script-implemented servant (interpreter on the server side).
    {
        let actor = ScriptActor::spawn("bench-script", |_| {});
        let servant = ScriptServant::from_source(
            &actor,
            "Echo",
            "return { echo = function(self, x) return x end }",
        )
        .unwrap();
        let server = Orb::new("bench-script-server");
        let objref = server.activate("echo", servant).unwrap();
        let client = Orb::new("bench-script-client");
        let proxy = client.proxy(&objref);
        group.bench_function("script_servant", |b| {
            b.iter(|| proxy.invoke(black_box("echo"), black_box(arg())).unwrap())
        });
    }

    // 5. Over TCP (loopback).
    {
        let server = Orb::new("bench-tcp-server");
        server.activate("echo", echo()).unwrap();
        let endpoint = server.listen_tcp("127.0.0.1:0").unwrap();
        let client = Orb::new("bench-tcp-client");
        let proxy = client.proxy(&adapta_orb::ObjRef::new(endpoint, "echo", "Echo"));
        group.bench_function("orb_tcp_loopback", |b| {
            b.iter(|| proxy.invoke(black_box("echo"), black_box(arg())).unwrap())
        });
    }

    // Marshalling alone, for scale.
    {
        let value = Value::map([
            ("s", Value::from("payload-string")),
            ("n", Value::Long(42)),
            ("seq", Value::Seq(vec![Value::Double(1.5); 8])),
        ]);
        group.bench_function("marshal_roundtrip", |b| {
            b.iter(|| {
                let bytes = adapta_orb::encode_value(black_box(&value));
                adapta_orb::decode_value(&bytes).unwrap()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_invocation);
criterion_main!(benches);
