//! Experiment E5 (micro) — trading-service operation costs.
//!
//! Complements `exp_trading_scale` with steady-state microbenches:
//! constraint parsing/evaluation, export, and full queries at a fixed
//! offer population.

use std::hint::black_box;

use adapta_idl::{TypeCode, Value};
use adapta_orb::{ObjRef, Orb};
use adapta_trading::{Constraint, ExportRequest, PropDef, PropMode, Query, ServiceTypeDef, Trader};
use criterion::{criterion_group, criterion_main, Criterion};

fn populated_trader(n: usize) -> (Orb, Trader) {
    let orb = Orb::new("bench-trading");
    let trader = Trader::new(&orb);
    trader
        .add_type(
            ServiceTypeDef::new("Svc")
                .with_property(PropDef::new("LoadAvg", TypeCode::Double, PropMode::Normal))
                .with_property(PropDef::new("Host", TypeCode::Str, PropMode::Readonly)),
        )
        .unwrap();
    for i in 0..n {
        trader
            .export(
                ExportRequest::new("Svc", ObjRef::new(orb.endpoint(), format!("s{i}"), "Svc"))
                    .with_property("LoadAvg", Value::Double((i % 100) as f64))
                    .with_property("Host", Value::from(format!("node{i}"))),
            )
            .unwrap();
    }
    (orb, trader)
}

fn bench_trading(c: &mut Criterion) {
    let mut group = c.benchmark_group("trading");

    group.bench_function("constraint_parse", |b| {
        b.iter(|| {
            Constraint::parse(black_box(
                "LoadAvg < 50 and LoadAvgIncreasing == no or Host ~ 'node'",
            ))
            .unwrap()
        })
    });

    {
        let constraint = Constraint::parse("LoadAvg < 50 and Host ~ 'node'").unwrap();
        let props = vec![
            ("LoadAvg".to_owned(), Value::Double(12.0)),
            ("Host".to_owned(), Value::from("node7")),
        ];
        group.bench_function("constraint_eval", |b| {
            b.iter(|| constraint.matches(black_box(&props)))
        });
    }

    {
        let (_orb, trader) = populated_trader(0);
        let mut i = 0u64;
        group.bench_function("export", |b| {
            b.iter(|| {
                i += 1;
                trader
                    .export(
                        ExportRequest::new(
                            "Svc",
                            ObjRef::new("inproc://x", format!("b{i}"), "Svc"),
                        )
                        .with_property("LoadAvg", Value::Double(1.0)),
                    )
                    .unwrap()
            })
        });
    }

    for n in [100usize, 1000] {
        let (_orb, trader) = populated_trader(n);
        let q = Query::new("Svc")
            .constraint("LoadAvg < 50")
            .preference("min LoadAvg")
            .return_card(10)
            .search_card(u32::MAX);
        group.bench_function(format!("query_{n}_offers"), |b| {
            b.iter(|| trader.query(black_box(&q)).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_trading);
criterion_main!(benches);
