//! Experiment E8 — Rua interpreter microbenchmarks.
//!
//! Supports the paper's "the interpreter is fast/small enough to embed
//! everywhere" argument (Section VI): parsing a strategy-sized chunk,
//! calling a stored predicate (the per-tick monitor cost), arithmetic
//! (fib), and table traffic.

use std::hint::black_box;

use adapta_script::{Interpreter, Value};
use criterion::{criterion_group, criterion_main, Criterion};

const PREDICATE: &str = r#"function(observer, value, monitor)
    local incr
    incr = monitor
    return value > 50 and incr ~= nil
end"#;

fn bench_script(c: &mut Criterion) {
    let mut group = c.benchmark_group("script");

    group.bench_function("parse_predicate", |b| {
        let mut rua = Interpreter::new();
        b.iter(|| rua.compile_function(black_box(PREDICATE)).unwrap())
    });

    group.bench_function("call_predicate", |b| {
        let mut rua = Interpreter::new();
        let f = rua.compile_function(PREDICATE).unwrap();
        let args = || vec![Value::Nil, Value::Num(80.0), Value::Bool(true)];
        b.iter(|| rua.call(&f, black_box(args())).unwrap())
    });

    group.bench_function("fib_15", |b| {
        let mut rua = Interpreter::new();
        rua.eval("function fib(n) if n < 2 then return n end return fib(n-1) + fib(n-2) end")
            .unwrap();
        let f = rua.global("fib");
        b.iter(|| rua.call(&f, vec![black_box(Value::Num(15.0))]).unwrap())
    });

    group.bench_function("table_churn", |b| {
        let mut rua = Interpreter::new();
        let f = rua
            .compile_function(
                r#"function(n)
                    local t = {}
                    for i = 1, n do t[i] = i * 2 end
                    local sum = 0
                    for i = 1, n do sum = sum + t[i] end
                    return sum
                end"#,
            )
            .unwrap();
        b.iter(|| rua.call(&f, vec![black_box(Value::Num(100.0))]).unwrap())
    });

    group.bench_function("string_ops", |b| {
        let mut rua = Interpreter::new();
        let f = rua
            .compile_function(
                r#"function(s)
                    local out = ""
                    for i = 1, 20 do out = out .. s .. i end
                    return string.len(out)
                end"#,
            )
            .unwrap();
        b.iter(|| rua.call(&f, vec![black_box(Value::str("x"))]).unwrap())
    });

    group.bench_function("interpreter_new", |b| {
        b.iter(|| black_box(Interpreter::new()))
    });

    group.finish();
}

criterion_group!(benches, bench_script);
criterion_main!(benches);
