//! Observability for the adapta middleware: distributed tracing and a
//! unified metrics registry, both dependency-free.
//!
//! # Tracing
//!
//! A [`Span`] measures one timed operation. Spans form trees: starting
//! a span on a thread that already has an active span makes it a child
//! sharing the parent's [`TraceId`]; otherwise a fresh trace begins.
//! The ORB carries `(TraceId, SpanId)` across process and network hops
//! in each request's *service context*, so a client invocation, the
//! server-side dispatch and any nested invocations (for example a
//! trader evaluating a dynamic property) all land in one trace.
//! Finished spans go to the process-wide [`collector`], a bounded ring
//! buffer exportable as text or JSON.
//!
//! ```
//! use adapta_telemetry::{collector, Span};
//!
//! let root = Span::start("request");
//! let trace = root.trace_id();
//! {
//!     let mut child = Span::start("marshal");
//!     child.attr("bytes", "128");
//! } // child records on drop
//! drop(root);
//! let spans = collector().for_trace(trace);
//! assert_eq!(spans.len(), 2);
//! ```
//!
//! # Metrics
//!
//! The global [`registry`] names three instrument kinds: monotone
//! [`Counter`]s, up/down [`Gauge`]s and latency [`HistogramHandle`]s
//! (exact-sample histograms with nearest-rank quantiles — the same
//! [`Histogram`] the simulator uses). [`Registry::snapshot`] captures
//! everything at a point in time; [`Snapshot::to_json`] renders it for
//! export through the middleware's own `_telemetry` object.

mod hist;
pub mod json;
mod metrics;
mod trace;

pub use hist::Histogram;
pub use metrics::{registry, Counter, Gauge, HistSummary, HistogramHandle, Registry, Snapshot};
pub use trace::{
    collector, current_context, Collector, Span, SpanId, SpanRecord, TraceId, SPAN_ID_KEY,
    TRACE_ID_KEY,
};
