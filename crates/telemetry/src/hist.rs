//! An exact-sample latency histogram.
//!
//! Promoted here from `adapta-sim` so the middleware's metrics registry
//! and the simulator's experiment harness share one implementation
//! (`adapta_sim::Histogram` re-exports this type).

use std::time::Duration;

/// A simple exact histogram of durations.
///
/// Samples are kept verbatim (experiments record at most a few hundred
/// thousand points) so quantiles are exact rather than bucketed.
///
/// ```
/// use adapta_telemetry::Histogram;
/// use std::time::Duration;
///
/// let mut h = Histogram::new();
/// for ms in [10u64, 20, 30, 40, 50] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.len(), 5);
/// assert_eq!(h.quantile(0.5), Duration::from_millis(30));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<Duration>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let total: f64 = self.samples.iter().map(Duration::as_secs_f64).sum();
        Duration::from_secs_f64(total / self.samples.len() as f64)
    }

    /// The `q`-quantile (nearest-rank), or zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Largest sample, or zero when empty.
    pub fn max(&mut self) -> Duration {
        self.quantile(1.0)
    }

    /// Merges all samples from `other`.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// One-line summary: `n / mean / p50 / p95 / p99 / max`.
    pub fn summary(&mut self) -> String {
        format!(
            "n={} mean={:.2?} p50={:.2?} p95={:.2?} p99={:.2?} max={:.2?}",
            self.len(),
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let mut h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.quantile(0.01), Duration::from_millis(1));
        assert_eq!(h.quantile(0.5), Duration::from_millis(50));
        assert_eq!(h.quantile(0.95), Duration::from_millis(95));
        assert_eq!(h.quantile(1.0), Duration::from_millis(100));
    }

    #[test]
    fn empty_is_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        a.record(Duration::from_millis(1));
        let mut b = Histogram::new();
        b.record(Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), Duration::from_millis(2));
    }
}
