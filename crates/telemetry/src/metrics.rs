//! The unified metrics registry: named counters, gauges and latency
//! histograms with point-in-time snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::hist::Histogram;
use crate::json::Obj;

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotone counter handle. Cloning shares the underlying cell, so a
/// hot path can keep the handle instead of re-resolving the name.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down gauge handle (e.g. a queue depth).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency histogram handle backed by a shared [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        relock(&self.0).record(d);
    }

    /// Runs `f`, recording its wall-clock duration.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// A copy of the underlying histogram.
    pub fn histogram(&self) -> Histogram {
        relock(&self.0).clone()
    }

    /// The current quantile summary.
    pub fn summary(&self) -> HistSummary {
        HistSummary::of(&mut relock(&self.0))
    }
}

/// Point-in-time quantile summary of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (nearest rank).
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Largest sample.
    pub max: Duration,
}

impl HistSummary {
    fn of(h: &mut Histogram) -> HistSummary {
        HistSummary {
            count: h.len() as u64,
            mean: h.mean(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }

    /// Renders the summary as a JSON object (durations in µs).
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("count", self.count)
            .u64("mean_us", self.mean.as_micros() as u64)
            .u64("p50_us", self.p50.as_micros() as u64)
            .u64("p90_us", self.p90.as_micros() as u64)
            .u64("p95_us", self.p95.as_micros() as u64)
            .u64("p99_us", self.p99.as_micros() as u64)
            .u64("max_us", self.max.as_micros() as u64)
            .finish()
    }
}

/// The instrument store. Names are free-form dotted paths
/// (`orb.<node>.requests_sent`, `smartproxy.events.queue_depth`, ...);
/// looking a name up creates the instrument on first use.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(
            relock(&self.counters)
                .entry(name.to_string())
                .or_default()
                .clone(),
        )
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(
            relock(&self.gauges)
                .entry(name.to_string())
                .or_default()
                .clone(),
        )
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(
            relock(&self.histograms)
                .entry(name.to_string())
                .or_default()
                .clone(),
        )
    }

    /// Captures every instrument's current value.
    pub fn snapshot(&self) -> Snapshot {
        let counters = relock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = relock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = relock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), HistSummary::of(&mut relock(v))))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Removes every instrument (test isolation helper; outstanding
    /// handles keep working but detach from the registry).
    pub fn clear(&self) {
        relock(&self.counters).clear();
        relock(&self.gauges).clear();
        relock(&self.histograms).clear();
    }
}

/// A point-in-time capture of the whole registry, name-sorted.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistSummary)>,
}

impl Snapshot {
    /// The captured value of counter `name`, if it existed.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// The captured value of gauge `name`, if it existed.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// The captured summary of histogram `name`, if it existed.
    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}`.
    pub fn to_json(&self) -> String {
        let mut counters = Obj::new();
        for (k, v) in &self.counters {
            counters = counters.u64(k, *v);
        }
        let mut gauges = Obj::new();
        for (k, v) in &self.gauges {
            gauges = gauges.i64(k, *v);
        }
        let mut histograms = Obj::new();
        for (k, v) in &self.histograms {
            histograms = histograms.raw(k, &v.to_json());
        }
        Obj::new()
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &histograms.finish())
            .finish()
    }

    /// Renders the snapshot as aligned `name value` lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter   {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge     {k} = {v}\n"));
        }
        for (k, s) in &self.histograms {
            out.push_str(&format!(
                "histogram {k} = n={} mean={:.2?} p50={:.2?} p95={:.2?} p99={:.2?} max={:.2?}\n",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_named_cell() {
        let a = registry().counter("test.metrics.shared");
        let b = registry().counter("test.metrics.shared");
        a.incr();
        b.add(2);
        assert_eq!(a.value(), 3);
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = registry().gauge("test.metrics.gauge");
        g.set(5);
        g.add(3);
        g.sub(4);
        assert_eq!(g.value(), 4);
    }

    #[test]
    fn snapshot_captures_and_exports() {
        let c = registry().counter("test.metrics.snap.count");
        c.add(7);
        let h = registry().histogram("test.metrics.snap.lat");
        h.record(Duration::from_millis(10));
        h.record(Duration::from_millis(30));
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.metrics.snap.count"), Some(7));
        let summary = snap.histogram("test.metrics.snap.lat").unwrap();
        assert_eq!(summary.count, 2);
        assert_eq!(summary.mean, Duration::from_millis(20));
        assert_eq!(summary.p99, Duration::from_millis(30));
        let json = snap.to_json();
        assert!(json.contains("\"test.metrics.snap.count\":7"), "{json}");
        assert!(json.contains("\"p99_us\":30000"), "{json}");
        assert!(snap.to_text().contains("test.metrics.snap.lat"));
    }

    #[test]
    fn timing_helper_records() {
        let h = registry().histogram("test.metrics.timed");
        let out = h.time(|| 42);
        assert_eq!(out, 42);
        assert_eq!(h.summary().count, 1);
    }
}
