//! A minimal JSON writer.
//!
//! The telemetry snapshot and the experiment binaries need to *emit*
//! JSON, never parse it, so a pair of append-only builders is enough —
//! no serde, no intermediate value tree.

use std::fmt::Write as _;

/// Escapes `s` for use inside a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value (`null` for NaN and infinities,
/// which JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // Rust prints integral floats without a dot; keep them as-is —
        // JSON numbers don't require one.
        if s == "-0" {
            s = "0".into();
        }
        s
    } else {
        "null".into()
    }
}

/// Builds one JSON object, field by field.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Obj {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Obj {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a floating-point field (`null` when not finite).
    pub fn f64(mut self, k: &str, v: f64) -> Obj {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Adds a pre-rendered JSON value verbatim.
    pub fn raw(mut self, k: &str, json: &str) -> Obj {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns its JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Builds one JSON array, element by element.
#[derive(Debug, Default)]
pub struct Arr {
    buf: String,
    any: bool,
}

impl Arr {
    /// Starts an empty array.
    pub fn new() -> Arr {
        Arr::default()
    }

    fn sep(&mut self) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
    }

    /// Appends a pre-rendered JSON value verbatim.
    pub fn raw(mut self, json: &str) -> Arr {
        self.sep();
        self.buf.push_str(json);
        self
    }

    /// Appends a string element.
    pub fn str(mut self, v: &str) -> Arr {
        self.sep();
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Appends an unsigned integer element.
    pub fn u64(mut self, v: u64) -> Arr {
        self.sep();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Appends a floating-point element (`null` when not finite).
    pub fn f64(mut self, v: f64) -> Arr {
        self.sep();
        self.buf.push_str(&number(v));
        self
    }

    /// Closes the array and returns its JSON text.
    pub fn finish(self) -> String {
        format!("[{}]", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn builders_compose() {
        let inner = Arr::new().u64(1).str("two").f64(f64::NAN).finish();
        let obj = Obj::new()
            .str("name", "x")
            .u64("count", 3)
            .raw("items", &inner)
            .finish();
        assert_eq!(obj, r#"{"name":"x","count":3,"items":[1,"two",null]}"#);
    }
}
