//! Span-based tracing: identifiers, the per-thread context stack and
//! the process-wide finished-span collector.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::json::{Arr, Obj};

/// Service-context key under which the trace id travels on the wire.
pub const TRACE_ID_KEY: &str = "trace-id";
/// Service-context key under which the caller's span id travels.
pub const SPAN_ID_KEY: &str = "span-id";

// ---- identifiers ---------------------------------------------------------

fn next_raw_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let seed = *SEED.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5AD5_0F75);
        t ^ (std::process::id() as u64) << 32
    });
    // splitmix64 of a unique counter value, offset by a per-process
    // seed so ids differ between runs but never collide within one.
    let mut z = seed.wrapping_add(
        COUNTER
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let id = z ^ (z >> 31);
    if id == 0 {
        1
    } else {
        id
    }
}

macro_rules! hex_id {
    ($name:ident, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u64);

        impl $name {
            /// Generates a fresh, process-unique id.
            pub fn generate() -> $name {
                $name(next_raw_id())
            }

            /// Wraps a raw value (zero is reserved for "absent").
            pub fn from_raw(raw: u64) -> $name {
                $name(raw)
            }

            /// The raw value.
            pub fn raw(self) -> u64 {
                self.0
            }

            /// Parses the 16-digit hex form produced by `Display`.
            pub fn from_hex(s: &str) -> Option<$name> {
                u64::from_str_radix(s, 16).ok().map($name)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:016x}", self.0)
            }
        }
    };
}

hex_id!(
    TraceId,
    "Identifies one distributed trace (a tree of spans)."
);
hex_id!(SpanId, "Identifies one span within a trace.");

// ---- per-thread context --------------------------------------------------

thread_local! {
    static CONTEXT: RefCell<Vec<(TraceId, SpanId)>> = const { RefCell::new(Vec::new()) };
}

/// The innermost active span on this thread, if any — what a new child
/// span or an outgoing request inherits.
pub fn current_context() -> Option<(TraceId, SpanId)> {
    CONTEXT.with(|c| c.borrow().last().copied())
}

fn push_context(trace: TraceId, span: SpanId) {
    CONTEXT.with(|c| c.borrow_mut().push((trace, span)));
}

fn pop_context(span: SpanId) {
    CONTEXT.with(|c| {
        let mut stack = c.borrow_mut();
        // Normally the span being dropped is on top; spans moved across
        // threads (or dropped out of order) just aren't on this stack.
        if let Some(pos) = stack.iter().rposition(|&(_, s)| s == span) {
            stack.remove(pos);
        }
    });
}

// ---- spans ---------------------------------------------------------------

/// A finished span as stored by the [`Collector`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Operation name.
    pub name: String,
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span, when not a root.
    pub parent: Option<SpanId>,
    /// Start time, microseconds since the collector's epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Attached key/value attributes.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = Obj::new()
            .str("name", &self.name)
            .str("trace", &self.trace.to_string())
            .str("span", &self.span.to_string());
        if let Some(parent) = self.parent {
            obj = obj.str("parent", &parent.to_string());
        }
        obj = obj
            .u64("start_us", self.start_us)
            .u64("duration_us", self.duration_us);
        if !self.attrs.is_empty() {
            let mut attrs = Obj::new();
            for (k, v) in &self.attrs {
                attrs = attrs.str(k, v);
            }
            obj = obj.raw("attrs", &attrs.finish());
        }
        obj.finish()
    }
}

/// An in-progress timed operation; records itself to the global
/// [`collector`] when dropped (or via [`Span::end`]).
///
/// While alive, the span is the thread's current context: spans started
/// on the same thread become its children, and the ORB stamps its ids
/// into outgoing request service contexts.
#[derive(Debug)]
pub struct Span {
    name: String,
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
    start: Instant,
    attrs: Vec<(String, String)>,
}

impl Span {
    fn build(name: &str, trace: TraceId, parent: Option<SpanId>) -> Span {
        let span = SpanId::generate();
        push_context(trace, span);
        Span {
            name: name.to_string(),
            trace,
            span,
            parent,
            start: Instant::now(),
            attrs: Vec::new(),
        }
    }

    /// Starts a span: a child of this thread's current span when one is
    /// active, otherwise the root of a new trace.
    pub fn start(name: &str) -> Span {
        match current_context() {
            Some((trace, parent)) => Span::build(name, trace, Some(parent)),
            None => Span::build(name, TraceId::generate(), None),
        }
    }

    /// Starts the root of a brand-new trace, ignoring any current span.
    pub fn root(name: &str) -> Span {
        Span::build(name, TraceId::generate(), None)
    }

    /// Starts a span under an explicitly supplied parent — the server
    /// side of a remote call, resuming the context extracted from the
    /// request's service context.
    pub fn child_of(name: &str, trace: TraceId, parent: Option<SpanId>) -> Span {
        Span::build(name, trace, parent)
    }

    /// Attaches a key/value attribute.
    pub fn attr(&mut self, key: &str, value: &str) {
        self.attrs.push((key.to_string(), value.to_string()));
    }

    /// The trace this span belongs to.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// This span's id.
    pub fn span_id(&self) -> SpanId {
        self.span
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        pop_context(self.span);
        collector().record(SpanRecord {
            name: std::mem::take(&mut self.name),
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            start_us: collector().elapsed_us_since_epoch(self.start),
            duration_us: self.start.elapsed().as_micros() as u64,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

// ---- collector -----------------------------------------------------------

const DEFAULT_CAPACITY: usize = 4096;

struct CollectorInner {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

/// The process-wide sink for finished spans: a bounded ring buffer
/// (oldest spans evicted first) with text and JSON export.
pub struct Collector {
    epoch: Instant,
    inner: Mutex<CollectorInner>,
}

/// The global span collector.
pub fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        inner: Mutex::new(CollectorInner {
            spans: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        }),
    })
}

impl Collector {
    fn lock(&self) -> std::sync::MutexGuard<'_, CollectorInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn elapsed_us_since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    fn record(&self, record: SpanRecord) {
        let mut inner = self.lock();
        while inner.spans.len() >= inner.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(record);
    }

    /// Changes the ring-buffer capacity, evicting oldest spans if the
    /// buffer is over the new size.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity.max(1);
        while inner.spans.len() > inner.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
    }

    /// Number of spans evicted so far to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// All retained finished spans, oldest first.
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.lock().spans.iter().cloned().collect()
    }

    /// Retained spans belonging to `trace`, oldest first.
    pub fn for_trace(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.lock()
            .spans
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// Discards all retained spans (test isolation helper).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.spans.clear();
        inner.dropped = 0;
    }

    /// Renders every retained span as a JSON array.
    pub fn export_json(&self) -> String {
        let spans = self.finished();
        let mut arr = Arr::new();
        for span in &spans {
            arr = arr.raw(&span.to_json());
        }
        arr.finish()
    }

    /// Renders retained spans grouped by trace, children indented under
    /// their parents.
    pub fn export_text(&self) -> String {
        let spans = self.finished();
        let mut out = String::new();
        let mut traces: Vec<TraceId> = Vec::new();
        for s in &spans {
            if !traces.contains(&s.trace) {
                traces.push(s.trace);
            }
        }
        for trace in traces {
            out.push_str(&format!("trace {trace}\n"));
            let members: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace == trace).collect();
            // Roots are spans whose parent isn't retained (or absent).
            let mut roots: Vec<&SpanRecord> = members
                .iter()
                .filter(|s| {
                    s.parent
                        .map(|p| !members.iter().any(|m| m.span == p))
                        .unwrap_or(true)
                })
                .copied()
                .collect();
            roots.sort_by_key(|s| s.start_us);
            for root in roots {
                render_subtree(&mut out, &members, root, 1);
            }
        }
        out
    }
}

fn render_subtree(out: &mut String, members: &[&SpanRecord], node: &SpanRecord, depth: usize) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{} [{}] {}us",
        node.name, node.span, node.duration_us
    ));
    for (k, v) in &node.attrs {
        out.push_str(&format!(" {k}={v}"));
    }
    out.push('\n');
    let mut children: Vec<&&SpanRecord> = members
        .iter()
        .filter(|s| s.parent == Some(node.span))
        .collect();
    children.sort_by_key(|s| s.start_us);
    for child in children {
        render_subtree(out, members, child, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_round_trip_hex() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b);
        assert_eq!(TraceId::from_hex(&a.to_string()), Some(a));
        assert_eq!(a.to_string().len(), 16);
    }

    #[test]
    fn nesting_links_parent_and_trace() {
        let root = Span::root("tele-nest-outer");
        let trace = root.trace_id();
        let root_id = root.span_id();
        let child = Span::start("tele-nest-inner");
        assert_eq!(child.trace_id(), trace);
        let child_id = child.span_id();
        drop(child);
        drop(root);
        let spans = collector().for_trace(trace);
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.span == child_id).unwrap();
        assert_eq!(inner.parent, Some(root_id));
        let outer = spans.iter().find(|s| s.span == root_id).unwrap();
        assert_eq!(outer.parent, None);
    }

    #[test]
    fn child_of_resumes_remote_context() {
        let trace = TraceId::generate();
        let parent = SpanId::generate();
        let span = Span::child_of("tele-remote-dispatch", trace, Some(parent));
        let id = span.span_id();
        drop(span);
        let spans = collector().for_trace(trace);
        let s = spans.iter().find(|s| s.span == id).unwrap();
        assert_eq!(s.parent, Some(parent));
    }

    #[test]
    fn context_stack_unwinds() {
        assert_eq!(current_context(), None);
        let a = Span::root("tele-stack-a");
        let (trace, top) = current_context().unwrap();
        assert_eq!(trace, a.trace_id());
        assert_eq!(top, a.span_id());
        drop(a);
        assert_eq!(current_context(), None);
    }

    #[test]
    fn export_renders_attrs_and_json() {
        let mut span = Span::root("tele-export");
        span.attr("k", "v");
        let trace = span.trace_id();
        drop(span);
        let text = collector().export_text();
        assert!(text.contains("tele-export"), "{text}");
        assert!(text.contains("k=v"), "{text}");
        let record = &collector().for_trace(trace)[0];
        let json = record.to_json();
        assert!(json.contains("\"name\":\"tele-export\""), "{json}");
        assert!(json.contains("\"attrs\":{\"k\":\"v\"}"), "{json}");
    }
}
