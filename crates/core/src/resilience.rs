//! Client-side recovery policy: bounded retries with decorrelated
//! jitter, and per-target circuit breakers.
//!
//! Both plug into [`SmartProxy::invoke`](crate::SmartProxy::invoke),
//! *ahead of* the existing failover/dead-target logic, and agree with
//! it on one error taxonomy — [`OrbError::is_retryable`]: only
//! environmental failures (transport faults, unreachable or draining
//! nodes, expired deadlines, vanished servants) are ever retried;
//! application exceptions mean the component is alive and are returned
//! as-is.
//!
//! A [`RetryPolicy`] bounds the attempts of one logical invocation and
//! spaces them with *decorrelated jitter* — each sleep is drawn
//! uniformly from `[base, 3 × previous]`, capped — which spreads
//! synchronized retry storms apart instead of letting every client
//! hammer a recovering server on the same schedule.
//!
//! A [`CircuitBreakerSet`] keeps one closed/open/half-open breaker per
//! concrete target the proxy has talked to. A breaker opens when the
//! failure rate over a sliding window of recent outcomes crosses a
//! threshold; while open, calls to that target are refused up front
//! (the proxy fails over instead of queueing on a corpse); after a
//! cool-down one *probe* call is admitted half-open — success closes
//! the breaker, failure re-opens it. Transitions are published under
//! the `proxy.<type>.breaker.*` metric family.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use adapta_orb::ObjRef;
use adapta_telemetry::registry;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[cfg(doc)]
use adapta_orb::OrbError;

/// Bounds and paces the attempts of one logical invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Lower bound of every backoff sleep; zero disables sleeping.
    pub base: Duration,
    /// Upper bound of every backoff sleep.
    pub cap: Duration,
}

impl RetryPolicy {
    /// `max_attempts` attempts with a 10 ms base and a 1 s cap.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
        }
    }

    /// The legacy smart-proxy behaviour: one immediate failover retry,
    /// no backoff. This is the default policy of every proxy.
    pub fn failover_only() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// Sets the backoff base (the minimum sleep between attempts).
    #[must_use]
    pub fn base(mut self, base: Duration) -> RetryPolicy {
        self.base = base;
        self
    }

    /// Sets the backoff cap (the maximum sleep between attempts).
    #[must_use]
    pub fn cap(mut self, cap: Duration) -> RetryPolicy {
        self.cap = cap;
        self
    }

    /// A fresh backoff sequence for one logical invocation.
    pub(crate) fn backoff(&self) -> Backoff {
        Backoff {
            base: self.base,
            cap: self.cap,
            prev: self.base,
            rng: StdRng::seed_from_u64(0x6A69_7474_6572), // "jitter"
        }
    }
}

/// One invocation's decorrelated-jitter state: each delay is uniform in
/// `[base, 3 × previous]`, capped — successive delays grow but stay
/// de-synchronized across callers.
pub(crate) struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: StdRng,
}

impl Backoff {
    pub(crate) fn next_delay(&mut self) -> Duration {
        if self.base.is_zero() || self.cap.is_zero() {
            return Duration::ZERO;
        }
        let lo = self.base.as_secs_f64();
        let hi = (self.prev.as_secs_f64() * 3.0).max(lo * 1.000_001);
        let delay = Duration::from_secs_f64(self.rng.gen_range(lo..hi)).min(self.cap);
        self.prev = delay;
        delay
    }
}

/// Circuit-breaker tuning. The defaults are deliberately small-window:
/// middleware targets see few calls between adaptations.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window length (outcomes per target).
    pub window: usize,
    /// Minimum outcomes in the window before the failure rate counts.
    pub min_calls: usize,
    /// Failure rate in `[0, 1]` at which the breaker opens.
    pub failure_threshold: f64,
    /// How long an open breaker refuses calls before probing half-open.
    pub open_for: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_calls: 4,
            failure_threshold: 0.5,
            open_for: Duration::from_secs(1),
        }
    }
}

/// Breaker states, in the classic closed → open → half-open cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; outcomes are recorded in the sliding window.
    Closed,
    /// Calls are refused up front until the cool-down elapses.
    Open,
    /// The cool-down elapsed; exactly one probe call is in flight.
    HalfOpen,
}

/// The verdict of [`CircuitBreakerSet::admit`] for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed breaker: proceed normally.
    Allow,
    /// Half-open breaker: proceed as *the* probe — the outcome decides
    /// whether the breaker closes or re-opens.
    Probe,
    /// Open breaker (or a probe is already in flight): do not call this
    /// target now; fail over or back off.
    Reject,
}

struct TargetBreaker {
    state: BreakerState,
    /// Sliding window of outcomes, `true` = failure.
    outcomes: VecDeque<bool>,
    opened_at: Instant,
    /// Whether the half-open probe slot is taken.
    probing: bool,
}

impl TargetBreaker {
    fn new() -> TargetBreaker {
        TargetBreaker {
            state: BreakerState::Closed,
            outcomes: VecDeque::new(),
            opened_at: Instant::now(),
            probing: false,
        }
    }

    fn record(&mut self, failure: bool, window: usize) {
        self.outcomes.push_back(failure);
        while self.outcomes.len() > window {
            self.outcomes.pop_front();
        }
    }

    fn failure_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|f| **f).count() as f64 / self.outcomes.len() as f64
    }
}

/// One breaker per concrete target, owned by a smart proxy (so the
/// window reflects that proxy's own traffic). Keyed by target URI.
pub struct CircuitBreakerSet {
    config: BreakerConfig,
    targets: Mutex<HashMap<String, TargetBreaker>>,
    /// `proxy.<type>.breaker` — the metric family's prefix.
    prefix: String,
}

impl CircuitBreakerSet {
    /// A breaker set for the proxy of `service_type`.
    pub fn new(config: BreakerConfig, service_type: &str) -> CircuitBreakerSet {
        CircuitBreakerSet {
            config,
            targets: Mutex::new(HashMap::new()),
            prefix: format!("proxy.{service_type}.breaker"),
        }
    }

    fn count(&self, transition: &str) {
        registry()
            .counter(&format!("{}.{transition}", self.prefix))
            .incr();
    }

    /// Publishes how many targets currently sit in a non-closed state.
    fn publish_open_gauge(&self, targets: &HashMap<String, TargetBreaker>) {
        let open = targets
            .values()
            .filter(|b| b.state != BreakerState::Closed)
            .count();
        registry()
            .gauge(&format!("{}.open_targets", self.prefix))
            .set(open as i64);
    }

    /// Asks whether a call to `target` may proceed right now.
    pub fn admit(&self, target: &ObjRef) -> Admission {
        let mut targets = self.targets.lock();
        let breaker = targets
            .entry(target.to_uri())
            .or_insert_with(TargetBreaker::new);
        match breaker.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                if breaker.opened_at.elapsed() >= self.config.open_for {
                    breaker.state = BreakerState::HalfOpen;
                    breaker.probing = true;
                    self.count("half_open");
                    Admission::Probe
                } else {
                    self.count("rejected");
                    Admission::Reject
                }
            }
            BreakerState::HalfOpen => {
                if breaker.probing {
                    self.count("rejected");
                    Admission::Reject
                } else {
                    breaker.probing = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Records a call that reached the target and got an answer (any
    /// answer — an application exception still proves liveness).
    pub fn on_success(&self, target: &ObjRef) {
        let mut targets = self.targets.lock();
        // Outcomes may arrive for targets that were never admitted
        // through `admit` (the balancer routes around open breakers by
        // state alone); they still must seed the sliding window.
        let breaker = targets
            .entry(target.to_uri())
            .or_insert_with(TargetBreaker::new);
        match breaker.state {
            BreakerState::HalfOpen => {
                breaker.state = BreakerState::Closed;
                breaker.outcomes.clear();
                breaker.probing = false;
                self.count("closed");
                self.publish_open_gauge(&targets);
            }
            _ => breaker.record(false, self.config.window),
        }
    }

    /// Records a retryable failure against the target.
    pub fn on_failure(&self, target: &ObjRef) {
        let mut targets = self.targets.lock();
        let breaker = targets
            .entry(target.to_uri())
            .or_insert_with(TargetBreaker::new);
        match breaker.state {
            BreakerState::HalfOpen => {
                // The probe failed: back to open, restart the cool-down.
                breaker.state = BreakerState::Open;
                breaker.opened_at = Instant::now();
                breaker.probing = false;
                self.count("opened");
                self.publish_open_gauge(&targets);
            }
            BreakerState::Open => {}
            BreakerState::Closed => {
                breaker.record(true, self.config.window);
                if breaker.outcomes.len() >= self.config.min_calls
                    && breaker.failure_rate() >= self.config.failure_threshold
                {
                    breaker.state = BreakerState::Open;
                    breaker.opened_at = Instant::now();
                    self.count("opened");
                    self.publish_open_gauge(&targets);
                }
            }
        }
    }

    /// The current state of the breaker for `target` (Closed when the
    /// target was never called).
    pub fn state(&self, target: &ObjRef) -> BreakerState {
        self.targets
            .lock()
            .get(&target.to_uri())
            .map_or(BreakerState::Closed, |b| b.state)
    }
}

impl std::fmt::Debug for CircuitBreakerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreakerSet")
            .field("config", &self.config)
            .field("targets", &self.targets.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(n: u16) -> ObjRef {
        ObjRef::new(format!("tcp://127.0.0.1:{n}"), "svc", "T")
    }

    #[test]
    fn failover_only_policy_never_sleeps() {
        let policy = RetryPolicy::failover_only();
        let mut backoff = policy.backoff();
        assert_eq!(backoff.next_delay(), Duration::ZERO);
        assert_eq!(backoff.next_delay(), Duration::ZERO);
    }

    #[test]
    fn backoff_grows_within_bounds() {
        let policy = RetryPolicy::new(10)
            .base(Duration::from_millis(10))
            .cap(Duration::from_millis(200));
        let mut backoff = policy.backoff();
        let mut prev = Duration::from_millis(10);
        for _ in 0..20 {
            let d = backoff.next_delay();
            assert!(d >= policy.base, "delay {d:?} under base");
            assert!(d <= policy.cap, "delay {d:?} over cap");
            // decorrelated: bounded by 3x the previous delay
            assert!(d <= (prev * 3).max(policy.base) + Duration::from_micros(1));
            prev = d;
        }
    }

    #[test]
    fn breaker_opens_at_failure_threshold() {
        let set = CircuitBreakerSet::new(
            BreakerConfig {
                window: 4,
                min_calls: 4,
                failure_threshold: 0.5,
                open_for: Duration::from_millis(50),
            },
            "T",
        );
        let t = target(1);
        assert_eq!(set.admit(&t), Admission::Allow);
        set.on_failure(&t);
        set.on_success(&t);
        set.on_failure(&t);
        assert_eq!(set.state(&t), BreakerState::Closed); // 2/3 but < min_calls
        set.on_failure(&t); // 3 failures / 4 outcomes
        assert_eq!(set.state(&t), BreakerState::Open);
        assert_eq!(set.admit(&t), Admission::Reject);
    }

    #[test]
    fn breaker_half_opens_then_closes_on_probe_success() {
        let set = CircuitBreakerSet::new(
            BreakerConfig {
                window: 2,
                min_calls: 2,
                failure_threshold: 0.5,
                open_for: Duration::from_millis(10),
            },
            "T",
        );
        let t = target(2);
        set.admit(&t);
        set.on_failure(&t);
        set.on_failure(&t);
        assert_eq!(set.state(&t), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(set.admit(&t), Admission::Probe);
        assert_eq!(set.state(&t), BreakerState::HalfOpen);
        // A second caller during the probe is still rejected.
        assert_eq!(set.admit(&t), Admission::Reject);
        set.on_success(&t);
        assert_eq!(set.state(&t), BreakerState::Closed);
        assert_eq!(set.admit(&t), Admission::Allow);
    }

    #[test]
    fn breaker_reopens_on_probe_failure() {
        let set = CircuitBreakerSet::new(
            BreakerConfig {
                window: 2,
                min_calls: 2,
                failure_threshold: 0.5,
                open_for: Duration::from_millis(10),
            },
            "T",
        );
        let t = target(3);
        set.admit(&t);
        set.on_failure(&t);
        set.on_failure(&t);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(set.admit(&t), Admission::Probe);
        set.on_failure(&t);
        assert_eq!(set.state(&t), BreakerState::Open);
        assert_eq!(set.admit(&t), Admission::Reject);
    }

    #[test]
    fn breakers_are_per_target() {
        let set = CircuitBreakerSet::new(
            BreakerConfig {
                window: 2,
                min_calls: 2,
                failure_threshold: 0.5,
                open_for: Duration::from_secs(10),
            },
            "T",
        );
        let (a, b) = (target(4), target(5));
        set.admit(&a);
        set.admit(&b);
        set.on_failure(&a);
        set.on_failure(&a);
        assert_eq!(set.state(&a), BreakerState::Open);
        assert_eq!(set.admit(&b), Admission::Allow);
    }
}
