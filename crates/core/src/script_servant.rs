//! Implementing servants *in* the scripting language — the LuaCorba
//! server side (DSI).
//!
//! A [`ScriptServant`] routes every invocation of an object key to a
//! method of a script table living in a [`ScriptActor`] — the paper's
//! *dynamic implementation routine*. Because the implementation is
//! interpreted, it can be modified and extended at run time without
//! recompiling or even interrupting the service (Section II).

use adapta_bridge::{from_wire, to_wire, ActorError, FuncHandle, ScriptActor};
use adapta_idl::Value;
use adapta_orb::{OrbError, OrbResult, Servant};

/// A servant whose implementation is a script object.
///
/// ```
/// use adapta_bridge::ScriptActor;
/// use adapta_core::ScriptServant;
/// use adapta_orb::Orb;
/// use adapta_idl::Value;
///
/// let actor = ScriptActor::spawn("srv", |_| {});
/// let servant = ScriptServant::from_source(&actor, "Hello", r#"
///     return {
///         hello = function(self, who) return "hello, " .. who end
///     }
/// "#).unwrap();
/// let orb = Orb::new("script-servant-doc");
/// let objref = orb.activate("h", servant).unwrap();
/// let out = orb.proxy(&objref).invoke("hello", vec![Value::from("world")]).unwrap();
/// assert_eq!(out, Value::from("hello, world"));
/// ```
#[derive(Debug, Clone)]
pub struct ScriptServant {
    actor: ScriptActor,
    interface: String,
    object: FuncHandle,
}

impl ScriptServant {
    /// Creates a servant from a chunk evaluating to a table of methods.
    ///
    /// # Errors
    ///
    /// Script errors, or the chunk not returning a table.
    pub fn from_source(
        actor: &ScriptActor,
        interface: impl Into<String>,
        source: &str,
    ) -> Result<ScriptServant, ActorError> {
        let source = source.to_owned();
        let object = actor.with(move |interp| -> Result<FuncHandle, ActorError> {
            let values = interp.eval(&source)?;
            match values.into_iter().next() {
                Some(v @ adapta_script::Value::Table(_)) => Ok(ScriptActor::stored_put(interp, v)),
                other => Err(ActorError::Script(format!(
                    "servant source must return a table, got {}",
                    other.map(|v| v.type_name()).unwrap_or("nothing")
                ))),
            }
        })??;
        Ok(ScriptServant {
            actor: actor.clone(),
            interface: interface.into(),
            object,
        })
    }

    /// Creates a servant from a *global* table already defined in the
    /// actor (lets configuration scripts build the object first).
    ///
    /// # Errors
    ///
    /// Script errors, or the global not being a table.
    pub fn from_global(
        actor: &ScriptActor,
        interface: impl Into<String>,
        global: &str,
    ) -> Result<ScriptServant, ActorError> {
        let global = global.to_owned();
        let object = actor.with(move |interp| -> Result<FuncHandle, ActorError> {
            match interp.global(&global) {
                v @ adapta_script::Value::Table(_) => Ok(ScriptActor::stored_put(interp, v)),
                other => Err(ActorError::Script(format!(
                    "global `{global}` is {} — expected the servant table",
                    other.type_name()
                ))),
            }
        })??;
        Ok(ScriptServant {
            actor: actor.clone(),
            interface: interface.into(),
            object,
        })
    }

    /// Replaces or adds one method on the live servant — dynamic
    /// extension without interrupting service.
    ///
    /// # Errors
    ///
    /// Script errors.
    pub fn update_method(&self, name: &str, code: &str) -> Result<(), ActorError> {
        let object = self.object;
        let name = name.to_owned();
        let code = code.to_owned();
        self.actor.with(move |interp| -> Result<(), ActorError> {
            let f = interp.compile_function(&code)?;
            let table = ScriptActor::stored_get(interp, object)
                .ok_or(ActorError::Script("servant table is gone".into()))?;
            if let Some(t) = table.as_table() {
                t.borrow_mut().set_str(&name, f);
            }
            Ok(())
        })?
    }
}

impl Servant for ScriptServant {
    fn interface(&self) -> &str {
        &self.interface
    }

    fn invoke(&self, op: &str, args: Vec<Value>) -> OrbResult<Value> {
        let object = self.object;
        let op_owned = op.to_owned();
        let out = self
            .actor
            .with(move |interp| -> Result<Value, ActorError> {
                let table = ScriptActor::stored_get(interp, object)
                    .ok_or(ActorError::Script("servant table is gone".into()))?;
                let method = table
                    .as_table()
                    .map(|t| t.borrow().get_str(&op_owned))
                    .unwrap_or(adapta_script::Value::Nil);
                if matches!(method, adapta_script::Value::Nil) {
                    return Err(ActorError::Script(format!(
                        "no method `{op_owned}` on script servant"
                    )));
                }
                let mut call_args = vec![table];
                call_args.extend(args.iter().map(from_wire));
                let out = interp.call(&method, call_args)?;
                Ok(out.first().map(to_wire).unwrap_or(Value::Null))
            })
            .map_err(|e| OrbError::exception(e.to_string()))?;
        out.map_err(|e| match &e {
            ActorError::Script(m) if m.contains("no method") => {
                OrbError::unknown_operation(&self.interface, op)
            }
            other => OrbError::exception(other.to_string()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapta_orb::Orb;

    fn servant() -> (Orb, ScriptServant) {
        let actor = ScriptActor::spawn("ss-test", |_| {});
        let servant = ScriptServant::from_source(
            &actor,
            "Counter",
            r#"
            local count = 0
            return {
                incr = function(self, by)
                    count = count + (by or 1)
                    return count
                end,
                get = function(self) return count end,
                boom = function(self) error("deliberate") end,
            }
        "#,
        )
        .unwrap();
        (Orb::new("ss-test"), servant)
    }

    #[test]
    fn script_servant_keeps_state_across_calls() {
        let (orb, servant) = servant();
        let objref = orb.activate("c", servant).unwrap();
        let proxy = orb.proxy(&objref);
        assert_eq!(
            proxy.invoke("incr", vec![Value::Long(5)]).unwrap(),
            Value::Long(5)
        );
        assert_eq!(
            proxy.invoke("incr", vec![Value::Long(2)]).unwrap(),
            Value::Long(7)
        );
        assert_eq!(proxy.invoke("get", vec![]).unwrap(), Value::Long(7));
    }

    #[test]
    fn unknown_method_maps_to_unknown_operation() {
        let (orb, servant) = servant();
        let objref = orb.activate("c", servant).unwrap();
        let err = orb.proxy(&objref).invoke("missing", vec![]).unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn script_exceptions_propagate() {
        let (orb, servant) = servant();
        let objref = orb.activate("c", servant).unwrap();
        let err = orb.proxy(&objref).invoke("boom", vec![]).unwrap_err();
        assert!(err.to_string().contains("deliberate"));
    }

    #[test]
    fn live_method_update_changes_behaviour() {
        let (orb, servant) = servant();
        let objref = orb.activate("c", servant.clone()).unwrap();
        let proxy = orb.proxy(&objref);
        assert_eq!(proxy.invoke("get", vec![]).unwrap(), Value::Long(0));
        servant
            .update_method("get", "function(self) return 999 end")
            .unwrap();
        assert_eq!(proxy.invoke("get", vec![]).unwrap(), Value::Long(999));
    }

    #[test]
    fn from_global_builds_on_configured_state() {
        let actor = ScriptActor::spawn("ss-global", |_| {});
        actor
            .eval("svc = { ping = function(self) return 'pong' end }")
            .unwrap();
        let servant = ScriptServant::from_global(&actor, "Ping", "svc").unwrap();
        let orb = Orb::new("ss-global");
        let objref = orb.activate("p", servant).unwrap();
        assert_eq!(
            orb.proxy(&objref).invoke("ping", vec![]).unwrap(),
            Value::from("pong")
        );
    }

    #[test]
    fn source_must_return_table() {
        let actor = ScriptActor::spawn("ss-bad", |_| {});
        assert!(ScriptServant::from_source(&actor, "X", "return 42").is_err());
        assert!(ScriptServant::from_global(&actor, "X", "nope").is_err());
    }
}
