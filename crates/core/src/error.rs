//! Errors of the adaptation infrastructure.

use std::error::Error;
use std::fmt;

use adapta_bridge::ActorError;
use adapta_orb::OrbError;
use adapta_trading::TradingError;

/// Errors raised by smart proxies, agents and the infrastructure.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A broker failure.
    Orb(OrbError),
    /// A trading-service failure.
    Trading(TradingError),
    /// A scripting failure (strategy/predicate code).
    Script(String),
    /// No offer satisfied even the relaxed query.
    NoSuitableOffer {
        /// The service type looked for.
        service_type: String,
    },
    /// The smart proxy has no bound component and selection failed.
    Unbound(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Orb(e) => write!(f, "{e}"),
            CoreError::Trading(e) => write!(f, "{e}"),
            CoreError::Script(m) => write!(f, "script error: {m}"),
            CoreError::NoSuitableOffer { service_type } => {
                write!(f, "no suitable offer for service type `{service_type}`")
            }
            CoreError::Unbound(m) => write!(f, "smart proxy is unbound: {m}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Orb(e) => Some(e),
            CoreError::Trading(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OrbError> for CoreError {
    fn from(e: OrbError) -> Self {
        CoreError::Orb(e)
    }
}

impl From<TradingError> for CoreError {
    fn from(e: TradingError) -> Self {
        CoreError::Trading(e)
    }
}

impl From<ActorError> for CoreError {
    fn from(e: ActorError) -> Self {
        CoreError::Script(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = OrbError::exception("x").into();
        assert!(e.to_string().contains('x'));
        let e: CoreError = TradingError::UnknownServiceType("T".into()).into();
        assert!(e.to_string().contains('T'));
        let e = CoreError::NoSuitableOffer {
            service_type: "Hello".into(),
        };
        assert!(e.to_string().contains("Hello"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}
