//! One-call wiring of the whole infrastructure (Figure 6).
//!
//! [`Infrastructure`] hosts a trader, spawns servers — each with its own
//! broker node, simulated host, script state and Figure-3 load monitor,
//! announced by a [`ServiceAgent`](crate::ServiceAgent) — and builds
//! client [`SmartProxy`]s. Time is virtual ([`VirtualClock`]) so
//! examples and tests are deterministic: advance it with
//! [`Infrastructure::advance`], which also ticks every monitor.

use std::sync::Arc;
use std::time::Duration;

use adapta_idl::{InterfaceRepository, TypeCode, Value};
use adapta_monitor::{load_average_monitor, loadavg_reader, Monitor, MonitorHost};
use adapta_orb::{ObjRef, Orb, OrbError, Servant};
use adapta_sim::{SimHost, SimTime, VirtualClock};
use adapta_trading::{PropDef, PropMode, ServiceTypeDef, Trader, TradingError};
use parking_lot::Mutex;

use crate::agent::ServiceAgent;
use crate::script_env;
use crate::script_servant::ScriptServant;
use crate::smart_proxy::{SmartProxy, SmartProxyBuilder};
use crate::{CoreError, Result};

/// What a spawned server serves.
#[derive(Debug, Clone)]
pub enum ServerKind {
    /// `hello(who)`, `echo(x)`, `whoami()`, `work()`.
    Echo,
    /// An image server (the QuO-style example): `getImage(i)` returns a
    /// deterministic byte payload, `imageCount()` the number of images.
    Image {
        /// Number of images served.
        count: u32,
        /// Size of each image in bytes.
        size: u32,
    },
    /// A servant implemented in Rua: the source must return the method
    /// table.
    Script {
        /// Chunk evaluating to the servant table.
        source: String,
    },
}

/// Specification of a server to spawn.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Trading service type of the offer.
    pub service_type: String,
    /// Host (node) name; also the `Host` offer property.
    pub host_name: String,
    /// No-contention service time of the simulated host.
    pub base_service: Duration,
    /// The servant behaviour.
    pub kind: ServerKind,
    /// Extra static offer properties.
    pub static_props: Vec<(String, Value)>,
}

impl ServerSpec {
    /// An echo/HelloWorld server (the paper's first validation app).
    pub fn echo(service_type: impl Into<String>, host_name: impl Into<String>) -> Self {
        ServerSpec {
            service_type: service_type.into(),
            host_name: host_name.into(),
            base_service: Duration::from_millis(20),
            kind: ServerKind::Echo,
            static_props: Vec::new(),
        }
    }

    /// An image server (the paper's QuO-derived second app).
    pub fn image(
        service_type: impl Into<String>,
        host_name: impl Into<String>,
        count: u32,
        size: u32,
    ) -> Self {
        ServerSpec {
            service_type: service_type.into(),
            host_name: host_name.into(),
            base_service: Duration::from_millis(40),
            kind: ServerKind::Image { count, size },
            static_props: Vec::new(),
        }
    }

    /// A script-implemented server.
    pub fn script(
        service_type: impl Into<String>,
        host_name: impl Into<String>,
        source: impl Into<String>,
    ) -> Self {
        ServerSpec {
            service_type: service_type.into(),
            host_name: host_name.into(),
            base_service: Duration::from_millis(20),
            kind: ServerKind::Script {
                source: source.into(),
            },
            static_props: Vec::new(),
        }
    }

    /// Sets the host's no-contention service time.
    pub fn base_service(mut self, d: Duration) -> Self {
        self.base_service = d;
        self
    }

    /// Adds a static offer property.
    pub fn with_prop(mut self, name: impl Into<String>, value: Value) -> Self {
        self.static_props.push((name.into(), value));
        self
    }
}

/// A running server: its broker node, simulated host, monitor and agent.
#[derive(Clone)]
pub struct ServerHandle {
    service_type: String,
    orb: Orb,
    sim_host: SimHost,
    monitor_host: MonitorHost,
    monitor: Monitor,
    agent: Arc<ServiceAgent>,
    target: ObjRef,
    servant_key: String,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("host", &self.sim_host.name())
            .field("service_type", &self.service_type)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The simulated machine (inject background load here).
    pub fn sim_host(&self) -> &SimHost {
        &self.sim_host
    }

    /// The host's script state.
    pub fn monitor_host(&self) -> &MonitorHost {
        &self.monitor_host
    }

    /// The host's LoadAverage monitor (Figure 3).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The server's object reference.
    pub fn target(&self) -> &ObjRef {
        &self.target
    }

    /// The server's broker node.
    pub fn orb(&self) -> &Orb {
        &self.orb
    }

    /// The server's service agent.
    pub fn agent(&self) -> &ServiceAgent {
        &self.agent
    }

    /// Failure injection: deactivates the servant (the offer stays in
    /// the trader, as after a crash without cleanup).
    pub fn crash(&self) {
        self.orb.deactivate(&self.servant_key);
    }

    /// Withdraws the server's offers from the trader.
    pub fn withdraw(&self) {
        self.agent.withdraw_all();
    }
}

struct InfraInner {
    clock: VirtualClock,
    orb: Orb,
    trader: Trader,
    repo: InterfaceRepository,
    servers: Mutex<Vec<ServerHandle>>,
}

/// The assembled adaptation infrastructure (see the module docs above).
#[derive(Clone)]
pub struct Infrastructure {
    inner: Arc<InfraInner>,
}

impl std::fmt::Debug for Infrastructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Infrastructure")
            .field("servers", &self.inner.servers.lock().len())
            .finish_non_exhaustive()
    }
}

impl Infrastructure {
    /// Creates an in-process infrastructure: one trader, virtual time,
    /// synchronous oneway delivery (so tests and examples are
    /// deterministic).
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` reserves room for transports.
    pub fn in_process() -> Result<Infrastructure> {
        let orb = Orb::new("infra");
        orb.set_synchronous_oneway(true);
        let trader = Trader::new(&orb);
        let repo = InterfaceRepository::new();
        script_env::register_monitor_interfaces(&repo);
        Ok(Infrastructure {
            inner: Arc::new(InfraInner {
                clock: VirtualClock::new(),
                orb,
                trader,
                repo,
                servers: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The infrastructure's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        use adapta_sim::Clock as _;
        self.inner.clock.now()
    }

    /// The client-side broker node.
    pub fn orb(&self) -> &Orb {
        &self.inner.orb
    }

    /// The trader.
    pub fn trader(&self) -> &Trader {
        &self.inner.trader
    }

    /// The shared interface repository.
    pub fn repository(&self) -> &InterfaceRepository {
        &self.inner.repo
    }

    /// Advances virtual time by `d` and ticks every server's monitors
    /// at the new time (one monitoring cycle).
    pub fn advance(&self, d: Duration) {
        self.inner.clock.advance(d);
        let now = self.now();
        for server in self.inner.servers.lock().iter() {
            server.monitor_host.tick_all(now);
        }
    }

    /// Advances time in `step`-sized monitor cycles until `total` has
    /// elapsed (so load averages and events evolve realistically).
    pub fn advance_in_steps(&self, total: Duration, step: Duration) {
        let mut elapsed = Duration::ZERO;
        while elapsed < total {
            let d = step.min(total - elapsed);
            self.advance(d);
            elapsed += d;
        }
    }

    /// Ensures the service type exists with the standard load-sharing
    /// properties (`LoadAvg`, `LoadAvgIncreasing`, `Host`) plus one
    /// `any`-typed property per extra static property of the spec.
    ///
    /// The type is created by the *first* spawn; later spawns with new
    /// extra properties for the same type will be rejected by the
    /// trader's schema check (declare all properties on the first one).
    fn ensure_type(&self, spec: &ServerSpec) -> Result<()> {
        let mut def = ServiceTypeDef::new(&spec.service_type)
            .with_property(PropDef::new("LoadAvg", TypeCode::Double, PropMode::Normal))
            .with_property(PropDef::new(
                "LoadAvgIncreasing",
                TypeCode::Str,
                PropMode::Normal,
            ))
            .with_property(PropDef::new("Host", TypeCode::Str, PropMode::Readonly));
        for (name, _) in &spec.static_props {
            def = def.with_property(PropDef::new(name, TypeCode::Any, PropMode::Normal));
        }
        match self.inner.trader.add_type(def) {
            Ok(()) | Err(TradingError::DuplicateServiceType(_)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Spawns a server per `spec`: broker node, simulated host, script
    /// state with the Figure-3 LoadAverage monitor, servant, and the
    /// agent announcement with dynamic load properties.
    ///
    /// # Errors
    ///
    /// Broker, trading or script errors.
    pub fn spawn_server(&self, spec: ServerSpec) -> Result<ServerHandle> {
        self.ensure_type(&spec)?;
        let orb = Orb::new(&spec.host_name);
        orb.set_synchronous_oneway(true);
        let sim_host = SimHost::new(spec.host_name.as_str(), spec.base_service);
        let clock: Arc<dyn adapta_sim::Clock> = Arc::new(self.inner.clock.clone());
        let reader = loadavg_reader(sim_host.clone(), clock);
        let monitor_host = MonitorHost::with_setup(&spec.host_name, &orb, move |interp| {
            interp.set_reader(reader);
        });
        let monitor =
            load_average_monitor(&monitor_host).map_err(|e| CoreError::Script(e.to_string()))?;

        let servant_key = "service".to_owned();
        let target = match &spec.kind {
            ServerKind::Echo => {
                let host = sim_host.clone();
                let clock = self.inner.clock.clone();
                orb.activate(
                    &servant_key,
                    echo_servant(spec.service_type.clone(), host, clock),
                )?
            }
            ServerKind::Image { count, size } => {
                let host = sim_host.clone();
                let clock = self.inner.clock.clone();
                orb.activate(
                    &servant_key,
                    image_servant(spec.service_type.clone(), host, clock, *count, *size),
                )?
            }
            ServerKind::Script { source } => {
                let servant =
                    ScriptServant::from_source(monitor_host.actor(), &spec.service_type, source)
                        .map_err(|e| CoreError::Script(e.to_string()))?;
                orb.activate(&servant_key, servant)?
            }
        };

        let agent = Arc::new(ServiceAgent::new(&orb, Arc::new(self.inner.trader.clone())));
        let mut props = vec![("Host".to_owned(), Value::from(spec.host_name.as_str()))];
        props.extend(spec.static_props.clone());
        agent.announce_load_monitored(&spec.service_type, target.clone(), &monitor, props)?;

        // Prime the monitor so the offer's dynamic properties have
        // values before the first query.
        monitor.tick(self.now());
        let handle = ServerHandle {
            service_type: spec.service_type,
            orb,
            sim_host,
            monitor_host,
            monitor,
            agent,
            target,
            servant_key,
        };
        self.inner.servers.lock().push(handle.clone());
        Ok(handle)
    }

    /// The spawned servers.
    pub fn servers(&self) -> Vec<ServerHandle> {
        self.inner.servers.lock().clone()
    }

    /// Finds a server by host name.
    pub fn server(&self, host_name: &str) -> Option<ServerHandle> {
        self.inner
            .servers
            .lock()
            .iter()
            .find(|s| s.sim_host.name() == host_name)
            .cloned()
    }

    /// Sets a host's background load at the current virtual time.
    pub fn set_background(&self, host_name: &str, jobs: f64) {
        if let Some(server) = self.server(host_name) {
            server.sim_host.set_background(self.now(), jobs);
        }
    }

    /// Starts building a smart proxy for a service type.
    pub fn smart_proxy(&self, service_type: impl Into<String>) -> SmartProxyBuilder {
        SmartProxy::builder(
            &self.inner.orb,
            &self.inner.repo,
            Arc::new(self.inner.trader.clone()),
            service_type,
        )
    }
}

/// Records a request on the simulated host and returns its (virtual)
/// service time; servants use it so host load reflects traffic.
fn record_request(host: &SimHost, clock: &VirtualClock) -> Duration {
    use adapta_sim::Clock as _;
    let now = clock.now();
    host.begin_request(now);
    let st = host.service_time(now);
    host.end_request(now);
    st
}

fn echo_servant(interface: String, host: SimHost, clock: VirtualClock) -> impl Servant + 'static {
    adapta_orb::ServantFn::new(interface.clone(), move |op, args| match op {
        "hello" => {
            record_request(&host, &clock);
            Ok(Value::from(format!(
                "hello, {}",
                args.first().and_then(Value::as_str).unwrap_or("world")
            )))
        }
        "echo" => {
            record_request(&host, &clock);
            Ok(args.into_iter().next().unwrap_or(Value::Null))
        }
        "whoami" => Ok(Value::from(host.name())),
        "work" => {
            let st = record_request(&host, &clock);
            Ok(Value::from(st.as_secs_f64()))
        }
        other => Err(OrbError::unknown_operation(&interface, other)),
    })
}

fn image_servant(
    interface: String,
    host: SimHost,
    clock: VirtualClock,
    count: u32,
    size: u32,
) -> impl Servant + 'static {
    adapta_orb::ServantFn::new(interface.clone(), move |op, args| match op {
        "imageCount" => Ok(Value::Long(count as i64)),
        "getImage" => {
            record_request(&host, &clock);
            let idx = args.first().and_then(Value::as_long).unwrap_or(0) as u32;
            if idx >= count {
                return Err(OrbError::exception(format!(
                    "image index {idx} out of range 0..{count}"
                )));
            }
            // Deterministic synthetic payload: the byte stream is a
            // function of (index, position), so clients can checksum it.
            let bytes: Vec<u8> = (0..size)
                .map(|i| (i.wrapping_mul(31).wrapping_add(idx * 7) & 0xff) as u8)
                .collect();
            Ok(Value::Bytes(bytes.into()))
        }
        "whoami" => Ok(Value::from(host.name())),
        other => Err(OrbError::unknown_operation(&interface, other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_shape_works() {
        let infra = Infrastructure::in_process().unwrap();
        for name in ["qs-hostA", "qs-hostB"] {
            infra
                .spawn_server(ServerSpec::echo("HelloService", name))
                .unwrap();
        }
        let proxy = infra
            .smart_proxy("HelloService")
            .constraint("LoadAvg < 50")
            .preference("min LoadAvg")
            .build()
            .unwrap();
        let reply = proxy.invoke("hello", vec![Value::from("world")]).unwrap();
        assert_eq!(reply, Value::from("hello, world"));
    }

    #[test]
    fn selection_prefers_least_loaded_host() {
        let infra = Infrastructure::in_process().unwrap();
        infra
            .spawn_server(ServerSpec::echo("Svc", "sel-busy"))
            .unwrap();
        infra
            .spawn_server(ServerSpec::echo("Svc", "sel-idle"))
            .unwrap();
        infra.set_background("sel-busy", 8.0);
        // Let load averages absorb the background difference.
        infra.advance_in_steps(Duration::from_secs(120), Duration::from_secs(30));
        let proxy = infra
            .smart_proxy("Svc")
            .preference("min LoadAvg")
            .build()
            .unwrap();
        let who = proxy.invoke("whoami", vec![]).unwrap();
        assert_eq!(who, Value::from("sel-idle"));
    }

    #[test]
    fn fallback_query_kicks_in_when_constraint_excludes_all() {
        let infra = Infrastructure::in_process().unwrap();
        infra
            .spawn_server(ServerSpec::echo("Svc2", "fb-only"))
            .unwrap();
        infra.set_background("fb-only", 9.0);
        infra.advance_in_steps(Duration::from_secs(300), Duration::from_secs(30));
        // Constraint excludes the only host; the relaxed query binds it
        // anyway (paper Section V).
        let proxy = infra
            .smart_proxy("Svc2")
            .constraint("LoadAvg < 0.5")
            .preference("min LoadAvg")
            .build()
            .unwrap();
        assert!(proxy.current_target().is_some());
    }

    #[test]
    fn no_servers_means_no_suitable_offer() {
        let infra = Infrastructure::in_process().unwrap();
        infra
            .trader()
            .add_type(ServiceTypeDef::new("Ghost"))
            .unwrap();
        let err = infra.smart_proxy("Ghost").build().unwrap_err();
        assert!(matches!(err, CoreError::NoSuitableOffer { .. }));
        // Lazy build defers the error to the first invocation.
        let proxy = infra.smart_proxy("Ghost").lazy().build().unwrap();
        assert!(matches!(
            proxy.invoke("op", vec![]),
            Err(CoreError::Unbound(_))
        ));
    }

    #[test]
    fn crash_triggers_failover_to_another_server() {
        let infra = Infrastructure::in_process().unwrap();
        let a = infra
            .spawn_server(ServerSpec::echo("FSvc", "fo-a"))
            .unwrap();
        infra
            .spawn_server(ServerSpec::echo("FSvc", "fo-b"))
            .unwrap();
        let proxy = infra
            .smart_proxy("FSvc")
            .preference("with Host == 'fo-a'")
            .build()
            .unwrap();
        assert_eq!(proxy.invoke("whoami", vec![]).unwrap(), Value::from("fo-a"));
        a.crash();
        // Next invocation fails over.
        let who = proxy.invoke("whoami", vec![]).unwrap();
        assert_eq!(who, Value::from("fo-b"));
        assert_eq!(proxy.failovers(), 1);
        assert!(proxy.rebinds() >= 2);
    }

    #[test]
    fn image_server_serves_deterministic_payloads() {
        let infra = Infrastructure::in_process().unwrap();
        infra
            .spawn_server(ServerSpec::image("ImageService", "img-1", 3, 256))
            .unwrap();
        let proxy = infra.smart_proxy("ImageService").build().unwrap();
        assert_eq!(proxy.invoke("imageCount", vec![]).unwrap(), Value::Long(3));
        let img = proxy.invoke("getImage", vec![Value::Long(1)]).unwrap();
        let bytes = img.as_bytes().unwrap();
        assert_eq!(bytes.len(), 256);
        // Same request, same payload.
        let again = proxy.invoke("getImage", vec![Value::Long(1)]).unwrap();
        assert_eq!(img, again);
        assert!(proxy.invoke("getImage", vec![Value::Long(99)]).is_err());
    }

    #[test]
    fn script_server_spec_works() {
        let infra = Infrastructure::in_process().unwrap();
        infra
            .spawn_server(ServerSpec::script(
                "ScriptedSvc",
                "scr-1",
                r#"return { greet = function(self, who) return "oi " .. who end }"#,
            ))
            .unwrap();
        let proxy = infra.smart_proxy("ScriptedSvc").build().unwrap();
        assert_eq!(
            proxy.invoke("greet", vec![Value::from("ana")]).unwrap(),
            Value::from("oi ana")
        );
    }

    #[test]
    fn requests_feed_host_load() {
        let infra = Infrastructure::in_process().unwrap();
        let server = infra
            .spawn_server(ServerSpec::echo("LoadSvc", "load-1"))
            .unwrap();
        let proxy = infra.smart_proxy("LoadSvc").build().unwrap();
        for _ in 0..5 {
            proxy.invoke("hello", vec![Value::from("x")]).unwrap();
        }
        assert_eq!(server.sim_host().total_requests(), 5);
    }
}
