//! Service agents: the server-side element announcing offers.
//!
//! "Service agents are the elements responsible for announcing service
//! offers to a trader. Besides managing the service offers of one or
//! more server components, these service agents — typically implemented
//! as Lua scripts — can create new monitors or configure existing ones."
//! (Section IV.) [`ServiceAgent`] provides that role natively, including
//! the standard wiring of a host's load monitor into an offer's dynamic
//! properties; script-driven agents use
//! [`MonitorHost::eval`](adapta_monitor::MonitorHost::eval) plus
//! [`announce`](ServiceAgent::announce).

use std::sync::Arc;

use adapta_idl::Value;
use adapta_monitor::{Monitor, MonitorServant};
use adapta_orb::{ObjRef, Orb};
use adapta_trading::{ExportRequest, OfferId, TradingService};
use parking_lot::Mutex;

use crate::Result;

/// Announces and manages the offers of one or more server components.
///
/// Offers exported through an agent are withdrawn when the agent is
/// dropped — and when the agent's orb [shuts down](Orb::shutdown), so a
/// gracefully stopping node disappears from the trader before its
/// transports close.
pub struct ServiceAgent {
    orb: Orb,
    trader: Arc<dyn TradingService>,
    offers: Arc<Mutex<Vec<OfferId>>>,
}

impl std::fmt::Debug for ServiceAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceAgent")
            .field("offers", &self.offers.lock().len())
            .finish_non_exhaustive()
    }
}

impl ServiceAgent {
    /// Creates an agent exporting through `trader` and serving monitors
    /// on `orb`.
    pub fn new(orb: &Orb, trader: Arc<dyn TradingService>) -> Self {
        let offers = Arc::new(Mutex::new(Vec::new()));
        // Withdraw this node's offers during graceful shutdown, in the
        // hook window where outbound invocations (to a remote trader)
        // still work.
        let hook_offers = Arc::downgrade(&offers);
        let hook_trader = trader.clone();
        orb.on_shutdown(move || {
            let Some(offers) = hook_offers.upgrade() else {
                return;
            };
            let ids: Vec<OfferId> = std::mem::take(&mut *offers.lock());
            for id in ids {
                let _ = hook_trader.withdraw(&id);
            }
        });
        ServiceAgent {
            orb: orb.clone(),
            trader,
            offers,
        }
    }

    /// Exports an offer and tracks it for withdrawal.
    ///
    /// # Errors
    ///
    /// Trading schema errors.
    pub fn announce(&self, request: ExportRequest) -> Result<OfferId> {
        let id = self.trader.export(request)?;
        self.offers.lock().push(id.clone());
        Ok(id)
    }

    /// The standard load-monitored announcement used by the paper's
    /// example: export `target` with the dynamic properties `LoadAvg`
    /// (the host's 1-minute load average) and `LoadAvgIncreasing`
    /// (`"yes"`/`"no"`), both evaluated by `monitor`, plus any static
    /// properties.
    ///
    /// The scalar `LoadAvg` and `LoadAvgIncreasing` aspects are defined
    /// on the monitor here (natively, so agents work with any monitor
    /// whose property is either the Figure-3 three-tuple or a plain
    /// number).
    ///
    /// # Errors
    ///
    /// Broker or trading errors.
    pub fn announce_load_monitored(
        &self,
        service_type: &str,
        target: ObjRef,
        monitor: &Monitor,
        static_props: Vec<(String, Value)>,
    ) -> Result<OfferId> {
        monitor.define_aspect_native("LoadAvg", |v| match v {
            Value::Seq(items) => items.first().cloned().unwrap_or(Value::Double(0.0)),
            other => other.clone(),
        });
        monitor.define_aspect_native("LoadAvgIncreasing", |v| {
            let increasing = match v {
                Value::Seq(items) => {
                    let one = items.first().and_then(Value::as_double).unwrap_or(0.0);
                    let five = items.get(1).and_then(Value::as_double).unwrap_or(0.0);
                    one > five
                }
                _ => false,
            };
            Value::from(if increasing { "yes" } else { "no" })
        });
        let monitor_ref = self.orb.activate_auto(MonitorServant::new(monitor.clone()));
        let mut request = ExportRequest::new(service_type, target)
            .with_dynamic_property("LoadAvg", monitor_ref.clone())
            .with_dynamic_property("LoadAvgIncreasing", monitor_ref);
        for (name, value) in static_props {
            request = request.with_property(name, value);
        }
        self.announce(request)
    }

    /// Offers currently managed by this agent.
    pub fn offers(&self) -> Vec<OfferId> {
        self.offers.lock().clone()
    }

    /// Withdraws one managed offer.
    ///
    /// # Errors
    ///
    /// Trading errors (unknown offer).
    pub fn withdraw(&self, id: &OfferId) -> Result<()> {
        self.trader.withdraw(id)?;
        self.offers.lock().retain(|o| o != id);
        Ok(())
    }

    /// Withdraws every managed offer (best effort).
    pub fn withdraw_all(&self) {
        let ids = std::mem::take(&mut *self.offers.lock());
        for id in ids {
            let _ = self.trader.withdraw(&id);
        }
    }
}

impl Drop for ServiceAgent {
    fn drop(&mut self) {
        self.withdraw_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapta_bridge::ScriptActor;
    use adapta_idl::TypeCode;
    use adapta_sim::SimTime;
    use adapta_trading::{PropDef, PropMode, Query, ServiceTypeDef, Trader};

    fn setup() -> (Orb, Trader) {
        let orb = Orb::new("agent-test");
        let trader = Trader::new(&orb);
        trader
            .add_type(
                ServiceTypeDef::new("Hello")
                    .with_property(PropDef::new("LoadAvg", TypeCode::Double, PropMode::Normal))
                    .with_property(PropDef::new(
                        "LoadAvgIncreasing",
                        TypeCode::Str,
                        PropMode::Normal,
                    ))
                    .with_property(PropDef::new("Host", TypeCode::Str, PropMode::Readonly)),
            )
            .unwrap();
        (orb, trader)
    }

    #[test]
    fn load_monitored_offer_exposes_dynamic_scalar() {
        let (orb, trader) = setup();
        let actor = ScriptActor::spawn("agent-test", |_| {});
        // A Figure-3-shaped monitor: value is the 1/5/15 table.
        let monitor = Monitor::builder("LoadAvg")
            .source_native(|_| {
                Value::Seq(vec![Value::from(12.0), Value::from(8.0), Value::from(3.0)])
            })
            .build(&actor, &orb)
            .unwrap();
        let agent = ServiceAgent::new(&orb, Arc::new(trader.clone()));
        let target = ObjRef::new(orb.endpoint(), "svc", "Hello");
        agent
            .announce_load_monitored(
                "Hello",
                target,
                &monitor,
                vec![("Host".into(), Value::from("node1"))],
            )
            .unwrap();
        monitor.tick(SimTime::ZERO);

        let matches = trader
            .query(&Query::new("Hello").constraint("LoadAvg < 50 and LoadAvgIncreasing == yes"))
            .unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].prop("LoadAvg"), Some(&Value::from(12.0)));
        assert!(matches[0].dynamic_ref("LoadAvg").is_some());
        assert_eq!(matches[0].prop("Host"), Some(&Value::from("node1")));
    }

    #[test]
    fn scalar_monitors_work_too() {
        let (orb, trader) = setup();
        let actor = ScriptActor::spawn("agent-test2", |_| {});
        let monitor = Monitor::builder("LoadAvg")
            .source_native(|_| Value::from(7.5))
            .build(&actor, &orb)
            .unwrap();
        let agent = ServiceAgent::new(&orb, Arc::new(trader.clone()));
        let target = ObjRef::new(orb.endpoint(), "svc", "Hello");
        agent
            .announce_load_monitored("Hello", target, &monitor, vec![])
            .unwrap();
        monitor.tick(SimTime::ZERO);
        let matches = trader
            .query(&Query::new("Hello").constraint("LoadAvg == 7.5"))
            .unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(
            matches[0].prop("LoadAvgIncreasing"),
            Some(&Value::from("no"))
        );
    }

    #[test]
    fn dropping_the_agent_withdraws_offers() {
        let (orb, trader) = setup();
        let target = ObjRef::new(orb.endpoint(), "svc", "Hello");
        {
            let agent = ServiceAgent::new(&orb, Arc::new(trader.clone()));
            agent
                .announce(
                    ExportRequest::new("Hello", target).with_property("LoadAvg", Value::from(1.0)),
                )
                .unwrap();
            assert_eq!(trader.query(&Query::new("Hello")).unwrap().len(), 1);
            assert_eq!(agent.offers().len(), 1);
        }
        assert_eq!(trader.query(&Query::new("Hello")).unwrap().len(), 0);
    }

    #[test]
    fn explicit_withdraw() {
        let (orb, trader) = setup();
        let agent = ServiceAgent::new(&orb, Arc::new(trader.clone()));
        let target = ObjRef::new(orb.endpoint(), "svc", "Hello");
        let id = agent
            .announce(
                ExportRequest::new("Hello", target).with_property("LoadAvg", Value::from(1.0)),
            )
            .unwrap();
        agent.withdraw(&id).unwrap();
        assert!(agent.offers().is_empty());
        assert!(agent.withdraw(&id).is_err());
    }
}
