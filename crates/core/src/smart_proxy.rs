//! Smart proxies: transparent, auto-adaptive service access.
//!
//! A [`SmartProxy`] stands for a *type of service*, not a specific
//! server (Figure 5). It selects the concrete component through the
//! trading service, registers itself as an event observer with the
//! monitors behind the offer's dynamic properties, queues notifications,
//! and applies adaptation strategies *immediately before the next
//! service invocation* — the paper's postponed event handling, which
//! "avoids conflicts with ongoing traffic when a reconfiguration is
//! done". Strategies live outside the application's functional code and
//! can be native Rust or Rua source installed (and replaced) at run
//! time.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use adapta_balancer::{Replica, ReplicaSet};
use adapta_bridge::{FuncHandle, ScriptActor};
use adapta_idl::{InterfaceRepository, Value};
use adapta_orb::{InvokeOptions, ObjRef, Orb, OrbError, OrbResult, ServantFn};
use adapta_telemetry::registry;
use adapta_trading::{OfferMatch, Query, TradingService};
use parking_lot::Mutex;

use crate::error::CoreError;
use crate::resilience::{Admission, BreakerConfig, BreakerState, CircuitBreakerSet, RetryPolicy};
use crate::script_env;
use crate::Result;

/// A monitor subscription the proxy (re-)establishes on every binding.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// The offer's dynamic property whose evaluator is the monitor.
    pub property: String,
    /// Event id to register (e.g. `"LoadIncrease"`).
    pub event_id: String,
    /// Rua source of the event-diagnosing predicate, evaluated at the
    /// monitor (remote evaluation): `function(observer, value, monitor)`.
    pub predicate: String,
}

/// How long a target that failed at the transport level is remembered
/// (and its stale trader offers skipped during re-selection) before the
/// proxy is willing to try it again.
const DEFAULT_DEAD_TARGET_TTL: Duration = Duration::from_secs(5);

/// Bound on the deferred-event queue. Events only drive *when* the
/// proxy reconsiders its binding, so under a notification storm the
/// oldest entries are the most stale — they are dropped first (counted
/// under `smartproxy.<type>.events_dropped`).
const MAX_PENDING_EVENTS: usize = 256;

/// Event posted (when a strategy is registered for it) each time the
/// strict query came back empty and the proxy fell back to the relaxed
/// query — adaptation code can observe constraint relaxation instead
/// of it happening silently.
pub const RELAXED_QUERY_EVENT: &str = "RelaxedQuery";

impl Subscription {
    /// Creates a subscription.
    pub fn new(
        property: impl Into<String>,
        event_id: impl Into<String>,
        predicate: impl Into<String>,
    ) -> Self {
        Subscription {
            property: property.into(),
            event_id: event_id.into(),
            predicate: predicate.into(),
        }
    }
}

/// The closure type behind [`Strategy::Native`]: receives the proxy
/// and the event id.
pub type NativeStrategy = Arc<dyn Fn(&SmartProxy, &str) + Send + Sync>;

/// How a smart proxy reacts to an event.
pub enum Strategy {
    /// Re-run the primary query; keep the current component when
    /// nothing better matches (the default).
    Reselect,
    /// A native strategy.
    Native(NativeStrategy),
    /// A script strategy `function(self, event)` stored in the proxy's
    /// actor; `self` is the script facade (with `_select`, `_observer`,
    /// monitor proxies…).
    Script(FuncHandle),
}

impl std::fmt::Debug for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Reselect => write!(f, "Reselect"),
            Strategy::Native(_) => write!(f, "Native"),
            Strategy::Script(_) => write!(f, "Script"),
        }
    }
}

struct Binding {
    target: ObjRef,
    offer: OfferMatch,
    /// `(monitor, observer id)` pairs to detach on rebind.
    attachments: Vec<(ObjRef, i64)>,
}

/// Configuration of the proxy's balanced mode (see
/// [`SmartProxyBuilder::balanced`]).
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Routing policy name (see `adapta_balancer::policy_named`).
    pub policy: String,
    /// Base interval of the background replica-set refresh (jittered
    /// ±50% by the set).
    pub refresh_interval: Duration,
    /// The dynamic property whose monitor pushes feed per-replica load
    /// (the [`WeightedProperty`](adapta_balancer::WeightedProperty)
    /// signal).
    pub load_property: String,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            policy: "round_robin".into(),
            refresh_interval: Duration::from_millis(250),
            load_property: "LoadAvg".into(),
        }
    }
}

/// Balanced-mode runtime state: the replica set plus the monitor
/// attachments feeding each replica's load stat.
struct BalancedState {
    set: ReplicaSet,
    load_property: String,
    /// replica key → `(monitor, observer id)` pairs to detach when the
    /// replica is evicted.
    attachments: Mutex<HashMap<String, Vec<(ObjRef, i64)>>>,
}

/// Event-id prefix of balanced-mode load pushes; the suffix is the
/// replica key, so one observer servant serves every replica.
const LOAD_EVENT_PREFIX: &str = "balancer-load:";

/// Always-true monitor predicate: every tick's value is pushed (the
/// monitor layer coalesces consecutive pushes per observer).
const LOAD_FEED_PREDICATE: &str = "function(observer, value, monitor) return true end";

fn value_to_f64(v: &Value) -> Option<f64> {
    match v {
        // Monitors publish their sample window as a sequence; the head
        // is the most recent observation.
        Value::Seq(items) => items.first().and_then(value_to_f64),
        _ => v.as_double().or_else(|| v.as_long().map(|l| l as f64)),
    }
}

struct SpInner {
    orb: Orb,
    repo: InterfaceRepository,
    trader: Arc<dyn TradingService>,
    service_type: String,
    constraint: String,
    preference: String,
    fallback_on_empty: bool,
    immediate_handling: bool,
    call_deadline: Option<Duration>,
    dead_target_ttl: Duration,
    retry: RetryPolicy,
    breakers: Option<CircuitBreakerSet>,
    subscriptions: Vec<Subscription>,
    strategies: Mutex<HashMap<String, Strategy>>,
    binding: Mutex<Option<Binding>>,
    /// Recently failed targets with their time of death: re-selection
    /// skips their (possibly stale) trader offers until the TTL lapses,
    /// so repeated failovers converge instead of ping-ponging back onto
    /// a dead server.
    dead_targets: Mutex<Vec<(ObjRef, Instant)>>,
    balanced: Option<BalancedState>,
    events: Mutex<VecDeque<String>>,
    observer_ref: OnceLock<ObjRef>,
    observer_key: Mutex<String>,
    actor: Mutex<Option<ScriptActor>>,
    facade: OnceLock<FuncHandle>,
    invocations: AtomicU64,
    rebinds: AtomicU64,
    events_received: AtomicU64,
    events_handled: AtomicU64,
    failovers: AtomicU64,
    retries: AtomicU64,
    repicks_avoided: AtomicU64,
    relaxed_queries: AtomicU64,
}

impl SpInner {
    /// Remembers `target` as dead (refreshing its timestamp) and prunes
    /// expired entries.
    fn note_dead(&self, target: &ObjRef) {
        let now = Instant::now();
        let mut dead = self.dead_targets.lock();
        dead.retain(|(t, since)| t != target && now.duration_since(*since) < self.dead_target_ttl);
        dead.push((target.clone(), now));
    }

    /// The targets still considered dead right now.
    fn dead_snapshot(&self) -> Vec<ObjRef> {
        let now = Instant::now();
        let mut dead = self.dead_targets.lock();
        dead.retain(|(_, since)| now.duration_since(*since) < self.dead_target_ttl);
        dead.iter().map(|(t, _)| t.clone()).collect()
    }
    /// Registry metric name under this proxy's `smartproxy.<type>.`
    /// namespace.
    fn metric(&self, stat: &str) -> String {
        format!("smartproxy.{}.{stat}", self.service_type)
    }

    /// Publishes the current event-queue depth as a gauge.
    fn publish_queue_depth(&self, depth: usize) {
        registry()
            .gauge(&self.metric("queue_depth"))
            .set(depth as i64);
    }

    /// Enqueues an event for postponed handling (bounded queue, oldest
    /// dropped first). Used by the observer servant and by internally
    /// generated events like `RelaxedQuery`.
    fn push_event(&self, event: String) {
        let depth = {
            let mut events = self.events.lock();
            if events.len() >= MAX_PENDING_EVENTS {
                events.pop_front();
                registry().counter(&self.metric("events_dropped")).incr();
            }
            events.push_back(event);
            events.len()
        };
        self.publish_queue_depth(depth);
    }

    /// Subscribes the proxy's observer to the load monitor behind a
    /// replica's dynamic property, so monitor pushes keep the replica's
    /// `last load` stat current (balanced mode only).
    fn attach_load_feed(&self, replica: &Arc<Replica>) {
        let Some(bal) = &self.balanced else { return };
        let Some(observer) = self.observer_ref.get() else {
            return;
        };
        let mut ids = Vec::new();
        for (prop, monitor) in replica.dynamic_refs() {
            if prop != bal.load_property {
                continue;
            }
            let event = format!("{LOAD_EVENT_PREFIX}{}", replica.key());
            if let Ok(Value::Long(id)) = self.orb.invoke_ref(
                &monitor,
                "attachEventObserver",
                vec![
                    Value::ObjRef(observer.clone()),
                    Value::from(event.as_str()),
                    Value::from(LOAD_FEED_PREDICATE),
                ],
            ) {
                ids.push((monitor.clone(), id));
            }
            // An unreachable monitor is not fatal: the replica is still
            // routable, just without a live load signal.
        }
        if !ids.is_empty() {
            bal.attachments
                .lock()
                .insert(replica.key().to_string(), ids);
        }
    }

    /// Detaches the load-feed subscriptions of an evicted replica.
    fn detach_load_feed(&self, replica: &Arc<Replica>) {
        let Some(bal) = &self.balanced else { return };
        let Some(ids) = bal.attachments.lock().remove(replica.key()) else {
            return;
        };
        for (monitor, id) in ids {
            let _ = self
                .orb
                .invoke_ref(&monitor, "detachEventObserver", vec![Value::Long(id)]);
        }
    }

    /// Routes a `balancer-load:<replica>` push into that replica's
    /// stats; `true` if the event was a load push (handled here, not an
    /// adaptation event).
    fn record_load_push(&self, event: &str, args: &[Value]) -> bool {
        let Some(key) = event.strip_prefix(LOAD_EVENT_PREFIX) else {
            return false;
        };
        let Some(bal) = &self.balanced else {
            return true;
        };
        if let (Some(replica), Some(load)) =
            (bal.set.replica(key), args.get(1).and_then(value_to_f64))
        {
            replica.stats().record_load(load);
            registry()
                .counter(&format!("balancer.{}.load_pushes", self.service_type))
                .incr();
        }
        true
    }
}

/// The client-side auto-adaptation mechanism. See the module docs
/// above and [`SmartProxyBuilder`].
#[derive(Clone)]
pub struct SmartProxy {
    inner: Arc<SpInner>,
}

impl std::fmt::Debug for SmartProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmartProxy")
            .field("service_type", &self.inner.service_type)
            .field("constraint", &self.inner.constraint)
            .field("bound_to", &self.current_target().map(|r| r.to_uri()))
            .field("pending_events", &self.pending_events())
            .finish_non_exhaustive()
    }
}

/// Builder for [`SmartProxy`]; obtained from
/// [`SmartProxy::builder`] or `Infrastructure::smart_proxy`.
pub struct SmartProxyBuilder {
    orb: Orb,
    repo: InterfaceRepository,
    trader: Arc<dyn TradingService>,
    service_type: String,
    constraint: String,
    preference: String,
    fallback_on_empty: bool,
    immediate_handling: bool,
    lazy: bool,
    call_deadline: Option<Duration>,
    dead_target_ttl: Duration,
    retry: RetryPolicy,
    breaker: Option<BreakerConfig>,
    balancer: Option<BalancerConfig>,
    subscriptions: Vec<Subscription>,
    native_strategies: Vec<(String, Strategy)>,
    script_strategies: Vec<(String, String)>,
}

impl SmartProxyBuilder {
    /// Sets the primary selection constraint.
    pub fn constraint(mut self, c: impl Into<String>) -> Self {
        self.constraint = c.into();
        self
    }

    /// Sets the offer-ordering preference.
    pub fn preference(mut self, p: impl Into<String>) -> Self {
        self.preference = p.into();
        self
    }

    /// Disables the paper's relaxed fallback query (sort-only, no
    /// filtering) when the primary query matches nothing.
    pub fn no_fallback(mut self) -> Self {
        self.fallback_on_empty = false;
        self
    }

    /// Handle events at notification time instead of postponing to the
    /// next invocation (the ablation of experiment E6).
    pub fn immediate_handling(mut self) -> Self {
        self.immediate_handling = true;
        self
    }

    /// Skip the initial selection; the first invocation will select.
    pub fn lazy(mut self) -> Self {
        self.lazy = true;
        self
    }

    /// Bounds every two-way invocation through this proxy: a reply that
    /// misses the deadline fails (and triggers failover) instead of
    /// hanging on the transport's 30-second backstop.
    pub fn call_deadline(mut self, deadline: Duration) -> Self {
        self.call_deadline = Some(deadline);
        self
    }

    /// How long a failed target stays on the proxy's dead list (its
    /// stale trader offers are skipped during re-selection within the
    /// TTL). Defaults to 5 seconds.
    pub fn dead_target_ttl(mut self, ttl: Duration) -> Self {
        self.dead_target_ttl = ttl;
        self
    }

    /// Sets the retry policy for retryable failures (see
    /// [`RetryPolicy`]). Defaults to [`RetryPolicy::failover_only`]:
    /// one immediate failover retry, no backoff — the proxy's
    /// historical behaviour.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Enables a per-target circuit breaker (see [`BreakerConfig`]).
    /// Off by default. An open breaker makes the proxy fail over (or
    /// back off) instead of calling a target that keeps failing;
    /// transitions are published under `proxy.<type>.breaker.*`.
    pub fn circuit_breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(config);
        self
    }

    /// Routes every invocation through an `adapta-balancer`
    /// [`ReplicaSet`] with the named routing policy (`round_robin`,
    /// `least_inflight`, `p2c_ewma`, `weighted_property[:<Prop>]`,
    /// `consistent_hash`) instead of a single bound offer. The set
    /// materializes this proxy's primary query, refreshes in the
    /// background, and feeds call outcomes back into per-replica
    /// stats; the policy can be swapped at run time with
    /// [`SmartProxy::set_balancer_policy`]. The relaxed fallback query
    /// does not apply in balanced mode (the set tracks the strict
    /// constraint only).
    pub fn balanced(mut self, policy: impl Into<String>) -> Self {
        self.balancer
            .get_or_insert_with(BalancerConfig::default)
            .policy = policy.into();
        self
    }

    /// Base interval of the balanced-mode background refresh (jittered
    /// ±50%). Defaults to 250 ms. Implies [`balanced`](Self::balanced)
    /// with the default policy.
    pub fn balancer_refresh(mut self, interval: Duration) -> Self {
        self.balancer
            .get_or_insert_with(BalancerConfig::default)
            .refresh_interval = interval;
        self
    }

    /// The dynamic property whose monitor feeds per-replica load in
    /// balanced mode. Defaults to `LoadAvg`.
    pub fn balancer_load_property(mut self, property: impl Into<String>) -> Self {
        self.balancer
            .get_or_insert_with(BalancerConfig::default)
            .load_property = property.into();
        self
    }

    /// Adds a monitor subscription (re-established on every rebind).
    pub fn subscribe(mut self, subscription: Subscription) -> Self {
        self.subscriptions.push(subscription);
        self
    }

    /// Registers a native strategy for an event.
    pub fn strategy_native(
        mut self,
        event: impl Into<String>,
        f: impl Fn(&SmartProxy, &str) + Send + Sync + 'static,
    ) -> Self {
        self.native_strategies
            .push((event.into(), Strategy::Native(Arc::new(f))));
        self
    }

    /// Registers a script strategy (`function(self, event) … end`).
    pub fn strategy_script(mut self, event: impl Into<String>, code: impl Into<String>) -> Self {
        self.script_strategies.push((event.into(), code.into()));
        self
    }

    /// Builds the proxy; unless [`lazy`](Self::lazy), performs the
    /// initial component selection.
    ///
    /// # Errors
    ///
    /// Trading/broker errors, script compilation errors, or
    /// [`CoreError::NoSuitableOffer`] when nothing is available.
    pub fn build(self) -> Result<SmartProxy> {
        let breakers = self
            .breaker
            .map(|config| CircuitBreakerSet::new(config, &self.service_type));
        let balancer_config = self.balancer;
        let balanced = balancer_config.as_ref().map(|cfg| {
            let query = Query::new(&self.service_type)
                .constraint(&self.constraint)
                .preference(&self.preference);
            BalancedState {
                set: ReplicaSet::new(self.trader.clone(), query).with_policy_named(&cfg.policy),
                load_property: cfg.load_property.clone(),
                attachments: Mutex::new(HashMap::new()),
            }
        });
        let inner = Arc::new(SpInner {
            orb: self.orb,
            repo: self.repo,
            trader: self.trader,
            service_type: self.service_type,
            constraint: self.constraint,
            preference: self.preference,
            fallback_on_empty: self.fallback_on_empty,
            immediate_handling: self.immediate_handling,
            call_deadline: self.call_deadline,
            dead_target_ttl: self.dead_target_ttl,
            retry: self.retry,
            breakers,
            subscriptions: self.subscriptions,
            strategies: Mutex::new(HashMap::new()),
            binding: Mutex::new(None),
            dead_targets: Mutex::new(Vec::new()),
            balanced,
            events: Mutex::new(VecDeque::new()),
            observer_ref: OnceLock::new(),
            observer_key: Mutex::new(String::new()),
            actor: Mutex::new(None),
            facade: OnceLock::new(),
            invocations: AtomicU64::new(0),
            rebinds: AtomicU64::new(0),
            events_received: AtomicU64::new(0),
            events_handled: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            repicks_avoided: AtomicU64::new(0),
            relaxed_queries: AtomicU64::new(0),
        });
        let proxy = SmartProxy { inner };

        // The proxy's EventObserver servant (Figure 2's callback
        // interface): notifications enqueue, or handle immediately.
        let weak = Arc::downgrade(&proxy.inner);
        let observer = ServantFn::new("EventObserver", move |op, args| {
            if op != "notifyEvent" {
                return Err(OrbError::unknown_operation("EventObserver", op));
            }
            let event = args
                .first()
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_owned();
            if let Some(inner) = weak.upgrade() {
                // Balanced-mode load pushes update replica stats and
                // stop here: they are a data feed, not an adaptation
                // event.
                if inner.record_load_push(&event, &args) {
                    return Ok(Value::Null);
                }
                inner.events_received.fetch_add(1, Ordering::Relaxed);
                registry().counter(&inner.metric("events_received")).incr();
                let proxy = SmartProxy { inner };
                if proxy.inner.immediate_handling {
                    proxy.handle_event(&event);
                } else {
                    // Bounded: a notification storm cannot grow the
                    // queue without limit — beyond the cap the oldest
                    // (stalest) event is dropped and counted.
                    proxy.inner.push_event(event);
                }
            }
            Ok(Value::Null)
        });
        let objref = proxy.inner.orb.activate_auto(observer);
        *proxy.inner.observer_key.lock() = objref.key.clone();
        proxy
            .inner
            .observer_ref
            .set(objref)
            .expect("observer ref set once");

        for (event, strategy) in self.native_strategies {
            proxy.inner.strategies.lock().insert(event, strategy);
        }
        for (event, code) in self.script_strategies {
            proxy.set_strategy_script(&event, &code)?;
        }

        if let Some(bal) = &proxy.inner.balanced {
            // Lifecycle hooks attach/detach the load feed; installed
            // before the first refresh so the initial replicas get one.
            let weak = Arc::downgrade(&proxy.inner);
            bal.set.on_added(Box::new(move |replica| {
                if let Some(inner) = weak.upgrade() {
                    inner.attach_load_feed(replica);
                }
            }));
            let weak = Arc::downgrade(&proxy.inner);
            bal.set.on_evicted(Box::new(move |replica| {
                if let Some(inner) = weak.upgrade() {
                    inner.detach_load_feed(replica);
                }
            }));
            bal.set.refresh()?;
            if !self.lazy && bal.set.is_empty() {
                return Err(CoreError::NoSuitableOffer {
                    service_type: proxy.inner.service_type.clone(),
                });
            }
            let interval = balancer_config
                .as_ref()
                .map(|c| c.refresh_interval)
                .unwrap_or_else(|| BalancerConfig::default().refresh_interval);
            bal.set.start_refresher(interval);
        } else if !self.lazy && !proxy.select_with(&proxy.inner.constraint.clone(), true)? {
            return Err(CoreError::NoSuitableOffer {
                service_type: proxy.inner.service_type.clone(),
            });
        }
        Ok(proxy)
    }
}

impl SmartProxy {
    /// Starts building a smart proxy against an explicit orb, interface
    /// repository and trading service.
    pub fn builder(
        orb: &Orb,
        repo: &InterfaceRepository,
        trader: Arc<dyn TradingService>,
        service_type: impl Into<String>,
    ) -> SmartProxyBuilder {
        SmartProxyBuilder {
            orb: orb.clone(),
            repo: repo.clone(),
            trader,
            service_type: service_type.into(),
            constraint: String::new(),
            preference: String::new(),
            fallback_on_empty: true,
            immediate_handling: false,
            lazy: false,
            call_deadline: None,
            dead_target_ttl: DEFAULT_DEAD_TARGET_TTL,
            retry: RetryPolicy::failover_only(),
            breaker: None,
            balancer: None,
            subscriptions: Vec::new(),
            native_strategies: Vec::new(),
            script_strategies: Vec::new(),
        }
    }

    /// The represented service type.
    pub fn service_type(&self) -> &str {
        &self.inner.service_type
    }

    /// The currently bound component, if any.
    pub fn current_target(&self) -> Option<ObjRef> {
        self.inner.binding.lock().as_ref().map(|b| b.target.clone())
    }

    /// The offer behind the current binding, if any.
    pub fn current_offer(&self) -> Option<OfferMatch> {
        self.inner.binding.lock().as_ref().map(|b| b.offer.clone())
    }

    /// The proxy's observer reference (scripts see it as `_observer`).
    pub fn observer_ref(&self) -> ObjRef {
        self.inner
            .observer_ref
            .get()
            .expect("observer activated at build")
            .clone()
    }

    /// Number of events waiting for postponed handling.
    pub fn pending_events(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// Functional invocations made through this proxy.
    pub fn invocations(&self) -> u64 {
        self.inner.invocations.load(Ordering::Relaxed)
    }

    /// Times the proxy switched components.
    pub fn rebinds(&self) -> u64 {
        self.inner.rebinds.load(Ordering::Relaxed)
    }

    /// Notifications received from monitors.
    pub fn events_received(&self) -> u64 {
        self.inner.events_received.load(Ordering::Relaxed)
    }

    /// Events whose strategy ran.
    pub fn events_handled(&self) -> u64 {
        self.inner.events_handled.load(Ordering::Relaxed)
    }

    /// Invocation-time failovers after a component failure.
    ///
    /// Counts *failing invocations* (once per `invoke` that hit at
    /// least one retryable failure), not individual retry attempts —
    /// see [`retries`](Self::retries) for those.
    pub fn failovers(&self) -> u64 {
        self.inner.failovers.load(Ordering::Relaxed)
    }

    /// Extra attempts made after retryable failures (per attempt, where
    /// [`failovers`](Self::failovers) counts per invocation).
    pub fn retries(&self) -> u64 {
        self.inner.retries.load(Ordering::Relaxed)
    }

    /// The circuit-breaker state for `target`, when a breaker is
    /// configured (see [`SmartProxyBuilder::circuit_breaker`]).
    pub fn breaker_state(&self, target: &ObjRef) -> Option<crate::resilience::BreakerState> {
        self.inner.breakers.as_ref().map(|b| b.state(target))
    }

    /// Stale offers of known-dead targets skipped during re-selection
    /// (within the dead-target TTL).
    pub fn repicks_avoided(&self) -> u64 {
        self.inner.repicks_avoided.load(Ordering::Relaxed)
    }

    /// Times the strict query came back empty and the proxy fell back
    /// to the relaxed query (also `smartproxy.<type>.failover.relaxed_queries`
    /// and, with a strategy registered, the [`RELAXED_QUERY_EVENT`]).
    pub fn relaxed_queries(&self) -> u64 {
        self.inner.relaxed_queries.load(Ordering::Relaxed)
    }

    // ---- balanced mode ---------------------------------------------------

    /// The replica set behind balanced mode (see
    /// [`SmartProxyBuilder::balanced`]); `None` on a classic
    /// single-binding proxy.
    pub fn balancer(&self) -> Option<&ReplicaSet> {
        self.inner.balanced.as_ref().map(|b| &b.set)
    }

    /// Swaps the routing policy at run time (balanced mode): in-flight
    /// calls keep their already-picked replica, later calls use the new
    /// policy. Counted under `balancer.<type>.policy_switches`.
    /// Returns `false` when not balanced or the name is unknown.
    pub fn set_balancer_policy(&self, name: &str) -> bool {
        self.inner
            .balanced
            .as_ref()
            .is_some_and(|b| b.set.set_policy_named(name))
    }

    /// The current routing policy's name (balanced mode).
    pub fn balancer_policy(&self) -> Option<String> {
        self.inner.balanced.as_ref().map(|b| b.set.policy_name())
    }

    // ---- strategies ------------------------------------------------------

    /// Registers (or replaces) a strategy for an event.
    pub fn set_strategy(&self, event: impl Into<String>, strategy: Strategy) {
        self.inner.strategies.lock().insert(event.into(), strategy);
    }

    /// Registers a native strategy.
    pub fn set_strategy_native(
        &self,
        event: impl Into<String>,
        f: impl Fn(&SmartProxy, &str) + Send + Sync + 'static,
    ) {
        self.set_strategy(event, Strategy::Native(Arc::new(f)));
    }

    /// Compiles and registers a script strategy
    /// (`function(self, event) … end`). Because strategies are
    /// interpreted, they can be replaced at any time without stopping
    /// the application.
    ///
    /// # Errors
    ///
    /// Script compilation errors.
    pub fn set_strategy_script(&self, event: &str, code: &str) -> Result<()> {
        let actor = self.actor();
        let handle = actor.store_function(code)?;
        self.set_strategy(event, Strategy::Script(handle));
        Ok(())
    }

    /// Runs a configuration script that assigns the proxy's strategies
    /// table, Figure-7 style: the script sees the global `smartproxy`
    /// (the proxy facade) and typically ends with
    /// `smartproxy._strategies = { EventName = function(self) … end }`.
    ///
    /// # Errors
    ///
    /// Script errors.
    pub fn install_strategies_script(&self, source: &str) -> Result<()> {
        let actor = self.actor();
        let facade = self.facade_handle(&actor)?;
        let source = source.to_owned();
        let events: Vec<(String, FuncHandle)> =
            actor.with(
                move |interp| -> std::result::Result<
                    Vec<(String, FuncHandle)>,
                    adapta_bridge::ActorError,
                > {
                    let facade_table = ScriptActor::stored_get(interp, facade)
                        .ok_or(adapta_bridge::ActorError::UnknownFunction(0))?;
                    interp.set_global("smartproxy", facade_table.clone());
                    interp.eval(&source)?;
                    // Read back the `_strategies` table.
                    let strategies = facade_table
                        .as_table()
                        .map(|t| t.borrow().get_str("_strategies"))
                        .unwrap_or(adapta_script::Value::Nil);
                    let mut out = Vec::new();
                    if let Some(t) = strategies.as_table() {
                        let entries: Vec<_> = t.borrow().iter().collect();
                        for (k, v) in entries {
                            if let (Some(event), adapta_script::Value::Function(_)) =
                                (k.as_str().map(str::to_owned), &v)
                            {
                                out.push((event, ScriptActor::stored_put(interp, v.clone())));
                            }
                        }
                    }
                    Ok(out)
                },
            )??;
        if events.is_empty() {
            return Err(CoreError::Script(
                "strategies script did not define smartproxy._strategies".into(),
            ));
        }
        let mut strategies = self.inner.strategies.lock();
        for (event, handle) in events {
            strategies.insert(event, Strategy::Script(handle));
        }
        Ok(())
    }

    /// The proxy's script actor (created on first use).
    pub fn actor(&self) -> ScriptActor {
        let mut guard = self.inner.actor.lock();
        if guard.is_none() {
            let name = format!("sp-{}", self.inner.service_type);
            *guard = Some(ScriptActor::spawn(&name, |_| {}));
        }
        guard.clone().expect("just set")
    }

    /// The persistent facade table handle (created on first use).
    fn facade_handle(&self, actor: &ScriptActor) -> Result<FuncHandle> {
        if let Some(h) = self.inner.facade.get() {
            return Ok(*h);
        }
        let proxy = self.clone();
        let handle = actor.with(move |interp| build_facade(interp, &proxy))?;
        let _ = self.inner.facade.set(handle);
        Ok(*self.inner.facade.get().expect("just set"))
    }

    // ---- selection -------------------------------------------------------

    /// Re-runs the primary query (no fallback); rebinds on a match.
    ///
    /// # Errors
    ///
    /// Trading errors.
    pub fn reselect(&self) -> Result<bool> {
        if let Some(bal) = &self.inner.balanced {
            // Balanced mode has no single binding to re-pick; the
            // equivalent adaptation is refreshing the replica set.
            let summary = bal.set.refresh()?;
            return Ok(summary.added > 0 || summary.evicted > 0);
        }
        self.select_with(&self.inner.constraint.clone(), false)
    }

    /// Runs a query with an explicit constraint; rebinds on a match.
    /// With `fallback`, an empty result triggers the paper's relaxed
    /// query (preference only, no filtering).
    ///
    /// # Errors
    ///
    /// Trading errors.
    pub fn select_with(&self, constraint: &str, fallback: bool) -> Result<bool> {
        self.select_excluding(constraint, fallback, None)
    }

    /// Like [`select_with`](Self::select_with), skipping offers whose
    /// target is `exclude` (used after a component failure so the
    /// failover does not rebind the dead server, whose stale offer may
    /// still be registered). Every selection additionally skips targets
    /// on the proxy's short-TTL dead list, so a `reselect()` moments
    /// after a failover cannot re-pick the dead server's stale offer.
    ///
    /// # Errors
    ///
    /// Trading errors.
    pub fn select_excluding(
        &self,
        constraint: &str,
        fallback: bool,
        exclude: Option<&ObjRef>,
    ) -> Result<bool> {
        let dead = self.inner.dead_snapshot();
        let filter = |matches: Vec<OfferMatch>| -> Vec<OfferMatch> {
            matches
                .into_iter()
                .filter(|m| {
                    if exclude.is_some_and(|x| m.target == *x) {
                        return false;
                    }
                    if dead.contains(&m.target) {
                        self.inner.repicks_avoided.fetch_add(1, Ordering::Relaxed);
                        registry()
                            .counter(&self.inner.metric("failover.repicks_avoided"))
                            .incr();
                        return false;
                    }
                    true
                })
                .collect()
        };
        let q = Query::new(&self.inner.service_type)
            .constraint(constraint)
            .preference(&self.inner.preference);
        let mut matches = filter(self.inner.trader.query(&q)?);
        if matches.is_empty() && fallback && self.inner.fallback_on_empty {
            // The paper's relaxed fallback (preference only, no
            // filtering) — no longer silent: it is counted, and posted
            // as a `RelaxedQuery` event when a strategy wants to react
            // (e.g. widen the constraint, raise an alarm). Without a
            // registered strategy nothing is enqueued: the default
            // Reselect plan would just churn queries.
            self.inner.relaxed_queries.fetch_add(1, Ordering::Relaxed);
            registry()
                .counter(&self.inner.metric("failover.relaxed_queries"))
                .incr();
            if self
                .inner
                .strategies
                .lock()
                .contains_key(RELAXED_QUERY_EVENT)
            {
                self.inner.push_event(RELAXED_QUERY_EVENT.to_string());
            }
            let relaxed = Query::new(&self.inner.service_type).preference(&self.inner.preference);
            matches = filter(self.inner.trader.query(&relaxed)?);
        }
        if matches.is_empty() {
            return Ok(false);
        }
        self.bind(matches.swap_remove(0));
        Ok(true)
    }

    /// Drops the current binding (the next invocation selects afresh).
    pub fn unbind(&self) {
        let old = self.inner.binding.lock().take();
        if let Some(binding) = old {
            self.detach(&binding);
        }
    }

    fn detach(&self, binding: &Binding) {
        for (monitor, observer_id) in &binding.attachments {
            let _ = self.inner.orb.invoke_ref(
                monitor,
                "detachEventObserver",
                vec![Value::Long(*observer_id)],
            );
        }
    }

    fn bind(&self, offer: OfferMatch) {
        let observer = self.observer_ref();
        let mut attachments = Vec::new();
        for sub in &self.inner.subscriptions {
            let Some(monitor) = offer.dynamic_ref(&sub.property) else {
                continue;
            };
            match self.inner.orb.invoke_ref(
                monitor,
                "attachEventObserver",
                vec![
                    Value::ObjRef(observer.clone()),
                    Value::from(sub.event_id.as_str()),
                    Value::from(sub.predicate.as_str()),
                ],
            ) {
                Ok(Value::Long(id)) => attachments.push((monitor.clone(), id)),
                _ => {
                    // Monitor unreachable: proceed without this
                    // subscription (the offer itself is still usable).
                }
            }
        }
        let new_binding = Binding {
            target: offer.target.clone(),
            offer,
            attachments,
        };
        let old = {
            let mut slot = self.inner.binding.lock();
            let changed = slot
                .as_ref()
                .map(|b| b.target != new_binding.target)
                .unwrap_or(true);
            if changed {
                self.inner.rebinds.fetch_add(1, Ordering::Relaxed);
                registry().counter(&self.inner.metric("rebinds")).incr();
            }
            slot.replace(new_binding)
        };
        if let Some(old) = old {
            self.detach(&old);
        }
    }

    // ---- events ----------------------------------------------------------

    /// Handles all queued events now (normally done automatically
    /// before each invocation; public for explicit activation).
    ///
    /// Duplicate event ids queued since the last invocation are
    /// coalesced: a burst of identical `LoadIncrease` notifications
    /// runs its strategy once, not once per notification.
    pub fn handle_pending_events(&self) {
        let drained: Vec<String> = self.inner.events.lock().drain(..).collect();
        self.inner.publish_queue_depth(0);
        if drained.is_empty() {
            return;
        }
        let drain_hist = registry().histogram(&self.inner.metric("drain_latency"));
        drain_hist.time(|| {
            let mut seen = std::collections::HashSet::new();
            for event in drained {
                if seen.insert(event.clone()) {
                    self.handle_event(&event);
                }
            }
        });
    }

    /// Applies the strategy for `event` immediately (on-demand
    /// adaptation, independent of notifications).
    pub fn adapt_now(&self, event: &str) {
        self.handle_event(event);
    }

    fn handle_event(&self, event: &str) {
        self.inner.events_handled.fetch_add(1, Ordering::Relaxed);
        enum Plan {
            Reselect,
            Native(NativeStrategy),
            Script(FuncHandle),
        }
        let plan = {
            let strategies = self.inner.strategies.lock();
            match strategies.get(event) {
                None | Some(Strategy::Reselect) => Plan::Reselect,
                Some(Strategy::Native(f)) => Plan::Native(f.clone()),
                Some(Strategy::Script(h)) => Plan::Script(*h),
            }
        };
        let kind = match &plan {
            Plan::Reselect => "reselect",
            Plan::Native(_) => "native",
            Plan::Script(_) => "script",
        };
        registry()
            .counter(&self.inner.metric(&format!("strategy.{kind}.runs")))
            .incr();
        let failed = match plan {
            Plan::Reselect => self.reselect().is_err(),
            Plan::Native(f) => {
                f(self, event);
                false
            }
            Plan::Script(handle) => {
                let actor = self.actor();
                let Ok(facade) = self.facade_handle(&actor) else {
                    registry()
                        .counter(&self.inner.metric("strategy.script.failures"))
                        .incr();
                    return;
                };
                let proxy = self.clone();
                let event = event.to_owned();
                actor
                    .call_with(handle, move |interp| {
                        let table = ScriptActor::stored_get(interp, facade)
                            .unwrap_or(adapta_script::Value::Nil);
                        refresh_facade(interp, &proxy, &table);
                        vec![table, adapta_script::Value::str(event)]
                    })
                    .is_err()
            }
        };
        if failed {
            registry()
                .counter(&self.inner.metric(&format!("strategy.{kind}.failures")))
                .incr();
        }
    }

    // ---- invocation ------------------------------------------------------

    /// Invokes an operation on the represented service.
    ///
    /// Queued events are handled first (postponed handling). Retryable
    /// failures ([`OrbError::is_retryable`]) drive the recovery policy:
    /// the proxy marks the target dead, fails over to an alternative
    /// offer when one exists (retrying the *same* target otherwise —
    /// it may heal), sleeps the [`RetryPolicy`]'s decorrelated-jitter
    /// backoff, and tries again up to `max_attempts`. A configured
    /// [circuit breaker](SmartProxyBuilder::circuit_breaker) is
    /// consulted before every attempt, so a target that keeps failing
    /// is refused up front instead of being called into a black hole.
    /// The proxy's [`call_deadline`](SmartProxyBuilder::call_deadline)
    /// bounds the *whole* invocation — attempts and backoff sleeps
    /// together — not each attempt separately.
    ///
    /// Application-level errors are returned immediately: the component
    /// answered, so retrying would re-run a possibly non-idempotent
    /// operation for nothing.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unbound`] when no component can be selected;
    /// otherwise broker/servant errors (the last attempt's, when
    /// retries are exhausted).
    pub fn invoke(&self, op: &str, args: Vec<Value>) -> Result<Value> {
        self.invoke_keyed(op, args, None)
    }

    /// Like [`invoke`](Self::invoke), with an affinity key for
    /// key-aware routing policies (balanced mode with
    /// [`ConsistentHash`](adapta_balancer::ConsistentHash): calls with
    /// the same key stick to the same replica). The key is ignored by
    /// key-oblivious policies and by classic single-binding proxies.
    ///
    /// # Errors
    ///
    /// As [`invoke`](Self::invoke).
    pub fn invoke_keyed(&self, op: &str, args: Vec<Value>, affinity: Option<u64>) -> Result<Value> {
        self.inner.invocations.fetch_add(1, Ordering::Relaxed);
        self.handle_pending_events();
        if self.inner.balanced.is_some() {
            return self.invoke_balanced(op, args, affinity);
        }
        let overall = self.inner.call_deadline.map(|d| (d, Instant::now() + d));
        let mut backoff = self.inner.retry.backoff();
        let max_attempts = self.inner.retry.max_attempts.max(1);
        let mut counted_failover = false;
        let mut last_err: Option<CoreError> = None;
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                self.inner.retries.fetch_add(1, Ordering::Relaxed);
                registry().counter(&self.inner.metric("retries")).incr();
            }
            if let Some((budget, end)) = overall {
                if Instant::now() >= end {
                    return Err(last_err
                        .unwrap_or_else(|| OrbError::DeadlineExpired { after: budget }.into()));
                }
            }
            let target = self.ensure_bound()?;
            if let Some(breakers) = &self.inner.breakers {
                if breakers.admit(&target) == Admission::Reject {
                    last_err = Some(CoreError::Orb(OrbError::Transport(format!(
                        "circuit open for `{}`",
                        target.to_uri()
                    ))));
                    // Prefer a different component while this one cools
                    // down; with nowhere to go, wait out the backoff —
                    // the breaker will eventually admit a probe.
                    let moved =
                        self.select_excluding(&self.inner.constraint.clone(), true, Some(&target))?
                            && self.current_target().is_some_and(|t| t != target);
                    if !moved {
                        self.sleep_backoff(&mut backoff, overall);
                    }
                    continue;
                }
            }
            match self.invoke_transport(&target, op, args.clone(), overall) {
                Ok(v) => {
                    if let Some(breakers) = &self.inner.breakers {
                        breakers.on_success(&target);
                    }
                    return Ok(v);
                }
                Err(e) if e.is_retryable() => {
                    if let Some(breakers) = &self.inner.breakers {
                        breakers.on_failure(&target);
                    }
                    if !counted_failover {
                        // Counted once per invocation, not per attempt:
                        // `failovers()` means "invocations that hit a
                        // failure", matching its historical semantics.
                        counted_failover = true;
                        self.inner.failovers.fetch_add(1, Ordering::Relaxed);
                        registry().counter(&self.inner.metric("failovers")).incr();
                    }
                    self.inner.note_dead(&target);
                    last_err = Some(e.into());
                    if attempt == max_attempts {
                        break;
                    }
                    // Fail over to an alternative offer when one exists;
                    // `bind` replaces the binding, so when nothing else
                    // matches the proxy stays bound to the failed target
                    // and the next attempt retries it (it may heal).
                    let _ =
                        self.select_excluding(&self.inner.constraint.clone(), true, Some(&target))?;
                    self.sleep_backoff(&mut backoff, overall);
                }
                Err(e) => {
                    // The component answered (application error): it is
                    // alive as far as the breaker is concerned.
                    if let Some(breakers) = &self.inner.breakers {
                        breakers.on_success(&target);
                    }
                    return Err(e.into());
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            CoreError::Unbound(format!(
                "retries exhausted for `{}`",
                self.inner.service_type
            ))
        }))
    }

    /// Picks the replica for one balanced attempt.
    ///
    /// First the breaker-probe scan: a replica whose breaker cool-down
    /// elapsed gets one deliberate probe call (otherwise a drained
    /// replica could never rejoin — `state()` only moves Open→HalfOpen
    /// through `admit`). Then the policy picks among replicas that are
    /// not excluded (failed earlier in this invocation), not on the
    /// dead list, and whose breaker is closed — so breaker-open
    /// replicas receive zero policy picks. With nothing admissible the
    /// dead list is waived (a dead-listed replica may have healed),
    /// and as a last resort the exclusion set is cleared for a fresh
    /// round.
    fn pick_balanced(
        &self,
        bal: &BalancedState,
        affinity: Option<u64>,
        excluded: &mut Vec<String>,
    ) -> Option<Arc<Replica>> {
        let dead = self.inner.dead_snapshot();
        if let Some(breakers) = &self.inner.breakers {
            for r in bal.set.replicas() {
                if excluded.iter().any(|k| k == r.key()) || dead.contains(r.target()) {
                    continue;
                }
                if breakers.state(r.target()) == BreakerState::Closed {
                    continue;
                }
                if breakers.admit(r.target()) != Admission::Reject {
                    bal.set.record_pick(&r);
                    return Some(r);
                }
            }
        }
        let admissible = |r: &Replica, check_dead: bool| {
            !excluded.iter().any(|k| k == r.key())
                && (!check_dead || !dead.contains(r.target()))
                && self
                    .inner
                    .breakers
                    .as_ref()
                    .is_none_or(|b| b.state(r.target()) == BreakerState::Closed)
        };
        if let Some(r) = bal.set.pick_where(affinity, |r| admissible(r, true)) {
            return Some(r);
        }
        if let Some(r) = bal.set.pick_where(affinity, |r| admissible(r, false)) {
            return Some(r);
        }
        if excluded.is_empty() {
            return None;
        }
        let fresh_round = bal.set.pick_where(affinity, |r| {
            self.inner
                .breakers
                .as_ref()
                .is_none_or(|b| b.state(r.target()) == BreakerState::Closed)
        });
        excluded.clear();
        fresh_round
    }

    /// The balanced-mode invocation loop: every attempt routes through
    /// the routing policy (feeding latency/outcome back into the picked
    /// replica's stats) instead of the single bound offer.
    fn invoke_balanced(&self, op: &str, args: Vec<Value>, affinity: Option<u64>) -> Result<Value> {
        let bal = self.inner.balanced.as_ref().expect("balanced mode");
        let overall = self.inner.call_deadline.map(|d| (d, Instant::now() + d));
        let mut backoff = self.inner.retry.backoff();
        let max_attempts = self.inner.retry.max_attempts.max(1);
        let mut counted_failover = false;
        let mut excluded: Vec<String> = Vec::new();
        let mut last_err: Option<CoreError> = None;
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                self.inner.retries.fetch_add(1, Ordering::Relaxed);
                registry().counter(&self.inner.metric("retries")).incr();
            }
            if let Some((budget, end)) = overall {
                if Instant::now() >= end {
                    return Err(last_err
                        .unwrap_or_else(|| OrbError::DeadlineExpired { after: budget }.into()));
                }
            }
            if bal.set.is_empty() {
                let _ = bal.set.refresh();
            }
            let Some(replica) = self.pick_balanced(bal, affinity, &mut excluded) else {
                // Nothing admissible at all: ask the trader again (new
                // replicas may have been exported) and wait out the
                // backoff before the next attempt.
                last_err.get_or_insert_with(|| {
                    CoreError::Unbound(format!(
                        "no admissible replica for `{}`",
                        self.inner.service_type
                    ))
                });
                let _ = bal.set.refresh();
                self.sleep_backoff(&mut backoff, overall);
                continue;
            };
            let target = replica.target().clone();
            replica.stats().on_start();
            let started = Instant::now();
            match self.invoke_transport(&target, op, args.clone(), overall) {
                Ok(v) => {
                    replica.stats().on_complete(started.elapsed(), true);
                    if let Some(breakers) = &self.inner.breakers {
                        breakers.on_success(&target);
                    }
                    return Ok(v);
                }
                Err(e) if e.is_retryable() => {
                    replica.stats().on_complete(started.elapsed(), false);
                    if let Some(breakers) = &self.inner.breakers {
                        breakers.on_failure(&target);
                    }
                    if !counted_failover {
                        counted_failover = true;
                        self.inner.failovers.fetch_add(1, Ordering::Relaxed);
                        registry().counter(&self.inner.metric("failovers")).incr();
                    }
                    self.inner.note_dead(&target);
                    excluded.push(replica.key().to_string());
                    last_err = Some(e.into());
                    if attempt == max_attempts {
                        break;
                    }
                    self.sleep_backoff(&mut backoff, overall);
                }
                Err(e) => {
                    // Application error: the replica answered, so its
                    // latency observation and breaker liveness stand.
                    replica.stats().on_complete(started.elapsed(), true);
                    if let Some(breakers) = &self.inner.breakers {
                        breakers.on_success(&target);
                    }
                    return Err(e.into());
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            CoreError::Unbound(format!(
                "retries exhausted for `{}`",
                self.inner.service_type
            ))
        }))
    }

    /// Sleeps the next backoff delay, clipped to the remaining overall
    /// deadline budget (so a retried call can never overshoot it).
    fn sleep_backoff(
        &self,
        backoff: &mut crate::resilience::Backoff,
        overall: Option<(Duration, Instant)>,
    ) {
        let mut delay = backoff.next_delay();
        if let Some((_, end)) = overall {
            delay = delay.min(end.saturating_duration_since(Instant::now()));
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// One two-way invocation with this proxy's per-call deadline (if
    /// configured): a hung server fails fast and triggers failover. The
    /// transport deadline is the *remaining* overall budget, so retries
    /// honor the invocation's `call_deadline` instead of resetting it
    /// per attempt.
    fn invoke_transport(
        &self,
        target: &ObjRef,
        op: &str,
        args: Vec<Value>,
        overall: Option<(Duration, Instant)>,
    ) -> OrbResult<Value> {
        let opts = match overall {
            Some((budget, end)) => {
                let remaining = end.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(OrbError::DeadlineExpired { after: budget });
                }
                InvokeOptions::new().deadline(remaining)
            }
            None => InvokeOptions::default(),
        };
        self.inner.orb.invoke_ref_with(target, op, args, opts)
    }

    /// Invokes a oneway operation on the represented service.
    ///
    /// # Errors
    ///
    /// As [`invoke`](Self::invoke), without failover retry semantics
    /// beyond selection.
    pub fn invoke_oneway(&self, op: &str, args: Vec<Value>) -> Result<()> {
        self.inner.invocations.fetch_add(1, Ordering::Relaxed);
        self.handle_pending_events();
        if let Some(bal) = &self.inner.balanced {
            if bal.set.is_empty() {
                let _ = bal.set.refresh();
            }
            let mut excluded = Vec::new();
            let replica = self
                .pick_balanced(bal, None, &mut excluded)
                .ok_or_else(|| {
                    CoreError::Unbound(format!(
                        "no admissible replica for `{}`",
                        self.inner.service_type
                    ))
                })?;
            return Ok(self
                .inner
                .orb
                .invoke_oneway_ref(replica.target(), op, args)?);
        }
        let target = self.ensure_bound()?;
        Ok(self.inner.orb.invoke_oneway_ref(&target, op, args)?)
    }

    fn ensure_bound(&self) -> Result<ObjRef> {
        if let Some(target) = self.current_target() {
            return Ok(target);
        }
        if self.select_with(&self.inner.constraint.clone(), true)? {
            return Ok(self
                .current_target()
                .expect("select_with(true) bound a component"));
        }
        Err(CoreError::Unbound(format!(
            "no component for `{}`",
            self.inner.service_type
        )))
    }
}

// ---- script facade ---------------------------------------------------------

/// Builds the persistent script facade table for a proxy.
fn build_facade(interp: &mut adapta_script::Interpreter, proxy: &SmartProxy) -> FuncHandle {
    let table = adapta_script::Value::table();
    if let Some(t) = table.as_table() {
        // _select(self, query) -> bool
        let p = proxy.clone();
        t.borrow_mut().set_str(
            "_select",
            adapta_script::Interpreter::native("_select", move |interp, args| {
                let query = args
                    .get(1)
                    .and_then(|v| v.as_str().map(str::to_owned))
                    .unwrap_or_default();
                let ok = p.select_with(&query, false).unwrap_or(false);
                if ok {
                    // Rebinding changed the monitors: refresh the facade
                    // the strategy is holding.
                    if let Some(self_table) = args.first() {
                        refresh_facade(interp, &p, self_table);
                    }
                }
                Ok(vec![adapta_script::Value::Bool(ok)])
            }),
        );
        // _reselect(self) -> bool (primary constraint)
        let p = proxy.clone();
        t.borrow_mut().set_str(
            "_reselect",
            adapta_script::Interpreter::native("_reselect", move |interp, args| {
                let ok = p.reselect().unwrap_or(false);
                if ok {
                    if let Some(self_table) = args.first() {
                        refresh_facade(interp, &p, self_table);
                    }
                }
                Ok(vec![adapta_script::Value::Bool(ok)])
            }),
        );
        // _set_policy(self, name) -> bool — balanced-mode runtime
        // policy swap from Rua strategies (Figure-7 style adaptation
        // code can re-route traffic, not just re-bind).
        let p = proxy.clone();
        t.borrow_mut().set_str(
            "_set_policy",
            adapta_script::Interpreter::native("_set_policy", move |_, args| {
                let name = args
                    .get(1)
                    .and_then(|v| v.as_str().map(str::to_owned))
                    .unwrap_or_default();
                Ok(vec![adapta_script::Value::Bool(
                    p.set_balancer_policy(&name),
                )])
            }),
        );
        // _policy(self) -> string | nil — the current routing policy.
        let p = proxy.clone();
        t.borrow_mut().set_str(
            "_policy",
            adapta_script::Interpreter::native("_policy", move |_, _| {
                Ok(vec![match p.balancer_policy() {
                    Some(name) => adapta_script::Value::str(name),
                    None => adapta_script::Value::Nil,
                }])
            }),
        );
        t.borrow_mut().set_str(
            "_observer",
            adapta_bridge::from_wire(&Value::ObjRef(proxy.observer_ref())),
        );
        t.borrow_mut().set_str(
            "_service_type",
            adapta_script::Value::str(proxy.service_type()),
        );
    }
    refresh_facade(interp, proxy, &table);
    ScriptActor::stored_put(interp, table)
}

/// Updates the binding-dependent facade fields: `_target`, `_monitors`
/// (property name → monitor proxy table) and `_loadavgmon` (the
/// `LoadAvg` monitor, so Figure 7 runs verbatim).
fn refresh_facade(
    interp: &mut adapta_script::Interpreter,
    proxy: &SmartProxy,
    facade: &adapta_script::Value,
) {
    let Some(t) = facade.as_table() else { return };
    let Some(offer) = proxy.current_offer() else {
        return;
    };
    let _ = interp; // proxy tables need no interpreter context today
    t.borrow_mut()
        .set_str("_target", adapta_script::Value::str(offer.target.to_uri()));
    let monitors = adapta_script::Value::table();
    if let Some(mt) = monitors.as_table() {
        for (name, monitor_ref) in &offer.dynamic {
            let table = script_env::proxy_table(&proxy.inner.orb, &proxy.inner.repo, monitor_ref);
            mt.borrow_mut().set_str(name, table.clone());
            if name == "LoadAvg" {
                t.borrow_mut().set_str("_loadavgmon", table);
            }
        }
    }
    t.borrow_mut().set_str("_monitors", monitors);
}
