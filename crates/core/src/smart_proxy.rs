//! Smart proxies: transparent, auto-adaptive service access.
//!
//! A [`SmartProxy`] stands for a *type of service*, not a specific
//! server (Figure 5). It selects the concrete component through the
//! trading service, registers itself as an event observer with the
//! monitors behind the offer's dynamic properties, queues notifications,
//! and applies adaptation strategies *immediately before the next
//! service invocation* — the paper's postponed event handling, which
//! "avoids conflicts with ongoing traffic when a reconfiguration is
//! done". Strategies live outside the application's functional code and
//! can be native Rust or Rua source installed (and replaced) at run
//! time.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use adapta_bridge::{FuncHandle, ScriptActor};
use adapta_idl::{InterfaceRepository, Value};
use adapta_orb::{InvokeOptions, ObjRef, Orb, OrbError, OrbResult, ServantFn};
use adapta_telemetry::registry;
use adapta_trading::{OfferMatch, Query, TradingService};
use parking_lot::Mutex;

use crate::error::CoreError;
use crate::resilience::{Admission, BreakerConfig, CircuitBreakerSet, RetryPolicy};
use crate::script_env;
use crate::Result;

/// A monitor subscription the proxy (re-)establishes on every binding.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// The offer's dynamic property whose evaluator is the monitor.
    pub property: String,
    /// Event id to register (e.g. `"LoadIncrease"`).
    pub event_id: String,
    /// Rua source of the event-diagnosing predicate, evaluated at the
    /// monitor (remote evaluation): `function(observer, value, monitor)`.
    pub predicate: String,
}

/// How long a target that failed at the transport level is remembered
/// (and its stale trader offers skipped during re-selection) before the
/// proxy is willing to try it again.
const DEFAULT_DEAD_TARGET_TTL: Duration = Duration::from_secs(5);

/// Bound on the deferred-event queue. Events only drive *when* the
/// proxy reconsiders its binding, so under a notification storm the
/// oldest entries are the most stale — they are dropped first (counted
/// under `smartproxy.<type>.events_dropped`).
const MAX_PENDING_EVENTS: usize = 256;

impl Subscription {
    /// Creates a subscription.
    pub fn new(
        property: impl Into<String>,
        event_id: impl Into<String>,
        predicate: impl Into<String>,
    ) -> Self {
        Subscription {
            property: property.into(),
            event_id: event_id.into(),
            predicate: predicate.into(),
        }
    }
}

/// The closure type behind [`Strategy::Native`]: receives the proxy
/// and the event id.
pub type NativeStrategy = Arc<dyn Fn(&SmartProxy, &str) + Send + Sync>;

/// How a smart proxy reacts to an event.
pub enum Strategy {
    /// Re-run the primary query; keep the current component when
    /// nothing better matches (the default).
    Reselect,
    /// A native strategy.
    Native(NativeStrategy),
    /// A script strategy `function(self, event)` stored in the proxy's
    /// actor; `self` is the script facade (with `_select`, `_observer`,
    /// monitor proxies…).
    Script(FuncHandle),
}

impl std::fmt::Debug for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Reselect => write!(f, "Reselect"),
            Strategy::Native(_) => write!(f, "Native"),
            Strategy::Script(_) => write!(f, "Script"),
        }
    }
}

struct Binding {
    target: ObjRef,
    offer: OfferMatch,
    /// `(monitor, observer id)` pairs to detach on rebind.
    attachments: Vec<(ObjRef, i64)>,
}

struct SpInner {
    orb: Orb,
    repo: InterfaceRepository,
    trader: Arc<dyn TradingService>,
    service_type: String,
    constraint: String,
    preference: String,
    fallback_on_empty: bool,
    immediate_handling: bool,
    call_deadline: Option<Duration>,
    dead_target_ttl: Duration,
    retry: RetryPolicy,
    breakers: Option<CircuitBreakerSet>,
    subscriptions: Vec<Subscription>,
    strategies: Mutex<HashMap<String, Strategy>>,
    binding: Mutex<Option<Binding>>,
    /// Recently failed targets with their time of death: re-selection
    /// skips their (possibly stale) trader offers until the TTL lapses,
    /// so repeated failovers converge instead of ping-ponging back onto
    /// a dead server.
    dead_targets: Mutex<Vec<(ObjRef, Instant)>>,
    events: Mutex<VecDeque<String>>,
    observer_ref: OnceLock<ObjRef>,
    observer_key: Mutex<String>,
    actor: Mutex<Option<ScriptActor>>,
    facade: OnceLock<FuncHandle>,
    invocations: AtomicU64,
    rebinds: AtomicU64,
    events_received: AtomicU64,
    events_handled: AtomicU64,
    failovers: AtomicU64,
    retries: AtomicU64,
    repicks_avoided: AtomicU64,
}

impl SpInner {
    /// Remembers `target` as dead (refreshing its timestamp) and prunes
    /// expired entries.
    fn note_dead(&self, target: &ObjRef) {
        let now = Instant::now();
        let mut dead = self.dead_targets.lock();
        dead.retain(|(t, since)| t != target && now.duration_since(*since) < self.dead_target_ttl);
        dead.push((target.clone(), now));
    }

    /// The targets still considered dead right now.
    fn dead_snapshot(&self) -> Vec<ObjRef> {
        let now = Instant::now();
        let mut dead = self.dead_targets.lock();
        dead.retain(|(_, since)| now.duration_since(*since) < self.dead_target_ttl);
        dead.iter().map(|(t, _)| t.clone()).collect()
    }
    /// Registry metric name under this proxy's `smartproxy.<type>.`
    /// namespace.
    fn metric(&self, stat: &str) -> String {
        format!("smartproxy.{}.{stat}", self.service_type)
    }

    /// Publishes the current event-queue depth as a gauge.
    fn publish_queue_depth(&self, depth: usize) {
        registry()
            .gauge(&self.metric("queue_depth"))
            .set(depth as i64);
    }
}

/// The client-side auto-adaptation mechanism. See the module docs
/// above and [`SmartProxyBuilder`].
#[derive(Clone)]
pub struct SmartProxy {
    inner: Arc<SpInner>,
}

impl std::fmt::Debug for SmartProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmartProxy")
            .field("service_type", &self.inner.service_type)
            .field("constraint", &self.inner.constraint)
            .field("bound_to", &self.current_target().map(|r| r.to_uri()))
            .field("pending_events", &self.pending_events())
            .finish_non_exhaustive()
    }
}

/// Builder for [`SmartProxy`]; obtained from
/// [`SmartProxy::builder`] or `Infrastructure::smart_proxy`.
pub struct SmartProxyBuilder {
    orb: Orb,
    repo: InterfaceRepository,
    trader: Arc<dyn TradingService>,
    service_type: String,
    constraint: String,
    preference: String,
    fallback_on_empty: bool,
    immediate_handling: bool,
    lazy: bool,
    call_deadline: Option<Duration>,
    dead_target_ttl: Duration,
    retry: RetryPolicy,
    breaker: Option<BreakerConfig>,
    subscriptions: Vec<Subscription>,
    native_strategies: Vec<(String, Strategy)>,
    script_strategies: Vec<(String, String)>,
}

impl SmartProxyBuilder {
    /// Sets the primary selection constraint.
    pub fn constraint(mut self, c: impl Into<String>) -> Self {
        self.constraint = c.into();
        self
    }

    /// Sets the offer-ordering preference.
    pub fn preference(mut self, p: impl Into<String>) -> Self {
        self.preference = p.into();
        self
    }

    /// Disables the paper's relaxed fallback query (sort-only, no
    /// filtering) when the primary query matches nothing.
    pub fn no_fallback(mut self) -> Self {
        self.fallback_on_empty = false;
        self
    }

    /// Handle events at notification time instead of postponing to the
    /// next invocation (the ablation of experiment E6).
    pub fn immediate_handling(mut self) -> Self {
        self.immediate_handling = true;
        self
    }

    /// Skip the initial selection; the first invocation will select.
    pub fn lazy(mut self) -> Self {
        self.lazy = true;
        self
    }

    /// Bounds every two-way invocation through this proxy: a reply that
    /// misses the deadline fails (and triggers failover) instead of
    /// hanging on the transport's 30-second backstop.
    pub fn call_deadline(mut self, deadline: Duration) -> Self {
        self.call_deadline = Some(deadline);
        self
    }

    /// How long a failed target stays on the proxy's dead list (its
    /// stale trader offers are skipped during re-selection within the
    /// TTL). Defaults to 5 seconds.
    pub fn dead_target_ttl(mut self, ttl: Duration) -> Self {
        self.dead_target_ttl = ttl;
        self
    }

    /// Sets the retry policy for retryable failures (see
    /// [`RetryPolicy`]). Defaults to [`RetryPolicy::failover_only`]:
    /// one immediate failover retry, no backoff — the proxy's
    /// historical behaviour.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Enables a per-target circuit breaker (see [`BreakerConfig`]).
    /// Off by default. An open breaker makes the proxy fail over (or
    /// back off) instead of calling a target that keeps failing;
    /// transitions are published under `proxy.<type>.breaker.*`.
    pub fn circuit_breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(config);
        self
    }

    /// Adds a monitor subscription (re-established on every rebind).
    pub fn subscribe(mut self, subscription: Subscription) -> Self {
        self.subscriptions.push(subscription);
        self
    }

    /// Registers a native strategy for an event.
    pub fn strategy_native(
        mut self,
        event: impl Into<String>,
        f: impl Fn(&SmartProxy, &str) + Send + Sync + 'static,
    ) -> Self {
        self.native_strategies
            .push((event.into(), Strategy::Native(Arc::new(f))));
        self
    }

    /// Registers a script strategy (`function(self, event) … end`).
    pub fn strategy_script(mut self, event: impl Into<String>, code: impl Into<String>) -> Self {
        self.script_strategies.push((event.into(), code.into()));
        self
    }

    /// Builds the proxy; unless [`lazy`](Self::lazy), performs the
    /// initial component selection.
    ///
    /// # Errors
    ///
    /// Trading/broker errors, script compilation errors, or
    /// [`CoreError::NoSuitableOffer`] when nothing is available.
    pub fn build(self) -> Result<SmartProxy> {
        let breakers = self
            .breaker
            .map(|config| CircuitBreakerSet::new(config, &self.service_type));
        let inner = Arc::new(SpInner {
            orb: self.orb,
            repo: self.repo,
            trader: self.trader,
            service_type: self.service_type,
            constraint: self.constraint,
            preference: self.preference,
            fallback_on_empty: self.fallback_on_empty,
            immediate_handling: self.immediate_handling,
            call_deadline: self.call_deadline,
            dead_target_ttl: self.dead_target_ttl,
            retry: self.retry,
            breakers,
            subscriptions: self.subscriptions,
            strategies: Mutex::new(HashMap::new()),
            binding: Mutex::new(None),
            dead_targets: Mutex::new(Vec::new()),
            events: Mutex::new(VecDeque::new()),
            observer_ref: OnceLock::new(),
            observer_key: Mutex::new(String::new()),
            actor: Mutex::new(None),
            facade: OnceLock::new(),
            invocations: AtomicU64::new(0),
            rebinds: AtomicU64::new(0),
            events_received: AtomicU64::new(0),
            events_handled: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            repicks_avoided: AtomicU64::new(0),
        });
        let proxy = SmartProxy { inner };

        // The proxy's EventObserver servant (Figure 2's callback
        // interface): notifications enqueue, or handle immediately.
        let weak = Arc::downgrade(&proxy.inner);
        let observer = ServantFn::new("EventObserver", move |op, args| {
            if op != "notifyEvent" {
                return Err(OrbError::unknown_operation("EventObserver", op));
            }
            let event = args
                .first()
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_owned();
            if let Some(inner) = weak.upgrade() {
                inner.events_received.fetch_add(1, Ordering::Relaxed);
                registry().counter(&inner.metric("events_received")).incr();
                let proxy = SmartProxy { inner };
                if proxy.inner.immediate_handling {
                    proxy.handle_event(&event);
                } else {
                    let depth = {
                        let mut events = proxy.inner.events.lock();
                        // Bounded: a notification storm cannot grow the
                        // queue without limit — beyond the cap the
                        // oldest (stalest) event is dropped and counted.
                        if events.len() >= MAX_PENDING_EVENTS {
                            events.pop_front();
                            registry()
                                .counter(&proxy.inner.metric("events_dropped"))
                                .incr();
                        }
                        events.push_back(event);
                        events.len()
                    };
                    proxy.inner.publish_queue_depth(depth);
                }
            }
            Ok(Value::Null)
        });
        let objref = proxy.inner.orb.activate_auto(observer);
        *proxy.inner.observer_key.lock() = objref.key.clone();
        proxy
            .inner
            .observer_ref
            .set(objref)
            .expect("observer ref set once");

        for (event, strategy) in self.native_strategies {
            proxy.inner.strategies.lock().insert(event, strategy);
        }
        for (event, code) in self.script_strategies {
            proxy.set_strategy_script(&event, &code)?;
        }

        if !self.lazy && !proxy.select_with(&proxy.inner.constraint.clone(), true)? {
            return Err(CoreError::NoSuitableOffer {
                service_type: proxy.inner.service_type.clone(),
            });
        }
        Ok(proxy)
    }
}

impl SmartProxy {
    /// Starts building a smart proxy against an explicit orb, interface
    /// repository and trading service.
    pub fn builder(
        orb: &Orb,
        repo: &InterfaceRepository,
        trader: Arc<dyn TradingService>,
        service_type: impl Into<String>,
    ) -> SmartProxyBuilder {
        SmartProxyBuilder {
            orb: orb.clone(),
            repo: repo.clone(),
            trader,
            service_type: service_type.into(),
            constraint: String::new(),
            preference: String::new(),
            fallback_on_empty: true,
            immediate_handling: false,
            lazy: false,
            call_deadline: None,
            dead_target_ttl: DEFAULT_DEAD_TARGET_TTL,
            retry: RetryPolicy::failover_only(),
            breaker: None,
            subscriptions: Vec::new(),
            native_strategies: Vec::new(),
            script_strategies: Vec::new(),
        }
    }

    /// The represented service type.
    pub fn service_type(&self) -> &str {
        &self.inner.service_type
    }

    /// The currently bound component, if any.
    pub fn current_target(&self) -> Option<ObjRef> {
        self.inner.binding.lock().as_ref().map(|b| b.target.clone())
    }

    /// The offer behind the current binding, if any.
    pub fn current_offer(&self) -> Option<OfferMatch> {
        self.inner.binding.lock().as_ref().map(|b| b.offer.clone())
    }

    /// The proxy's observer reference (scripts see it as `_observer`).
    pub fn observer_ref(&self) -> ObjRef {
        self.inner
            .observer_ref
            .get()
            .expect("observer activated at build")
            .clone()
    }

    /// Number of events waiting for postponed handling.
    pub fn pending_events(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// Functional invocations made through this proxy.
    pub fn invocations(&self) -> u64 {
        self.inner.invocations.load(Ordering::Relaxed)
    }

    /// Times the proxy switched components.
    pub fn rebinds(&self) -> u64 {
        self.inner.rebinds.load(Ordering::Relaxed)
    }

    /// Notifications received from monitors.
    pub fn events_received(&self) -> u64 {
        self.inner.events_received.load(Ordering::Relaxed)
    }

    /// Events whose strategy ran.
    pub fn events_handled(&self) -> u64 {
        self.inner.events_handled.load(Ordering::Relaxed)
    }

    /// Invocation-time failovers after a component failure.
    ///
    /// Counts *failing invocations* (once per `invoke` that hit at
    /// least one retryable failure), not individual retry attempts —
    /// see [`retries`](Self::retries) for those.
    pub fn failovers(&self) -> u64 {
        self.inner.failovers.load(Ordering::Relaxed)
    }

    /// Extra attempts made after retryable failures (per attempt, where
    /// [`failovers`](Self::failovers) counts per invocation).
    pub fn retries(&self) -> u64 {
        self.inner.retries.load(Ordering::Relaxed)
    }

    /// The circuit-breaker state for `target`, when a breaker is
    /// configured (see [`SmartProxyBuilder::circuit_breaker`]).
    pub fn breaker_state(&self, target: &ObjRef) -> Option<crate::resilience::BreakerState> {
        self.inner.breakers.as_ref().map(|b| b.state(target))
    }

    /// Stale offers of known-dead targets skipped during re-selection
    /// (within the dead-target TTL).
    pub fn repicks_avoided(&self) -> u64 {
        self.inner.repicks_avoided.load(Ordering::Relaxed)
    }

    // ---- strategies ------------------------------------------------------

    /// Registers (or replaces) a strategy for an event.
    pub fn set_strategy(&self, event: impl Into<String>, strategy: Strategy) {
        self.inner.strategies.lock().insert(event.into(), strategy);
    }

    /// Registers a native strategy.
    pub fn set_strategy_native(
        &self,
        event: impl Into<String>,
        f: impl Fn(&SmartProxy, &str) + Send + Sync + 'static,
    ) {
        self.set_strategy(event, Strategy::Native(Arc::new(f)));
    }

    /// Compiles and registers a script strategy
    /// (`function(self, event) … end`). Because strategies are
    /// interpreted, they can be replaced at any time without stopping
    /// the application.
    ///
    /// # Errors
    ///
    /// Script compilation errors.
    pub fn set_strategy_script(&self, event: &str, code: &str) -> Result<()> {
        let actor = self.actor();
        let handle = actor.store_function(code)?;
        self.set_strategy(event, Strategy::Script(handle));
        Ok(())
    }

    /// Runs a configuration script that assigns the proxy's strategies
    /// table, Figure-7 style: the script sees the global `smartproxy`
    /// (the proxy facade) and typically ends with
    /// `smartproxy._strategies = { EventName = function(self) … end }`.
    ///
    /// # Errors
    ///
    /// Script errors.
    pub fn install_strategies_script(&self, source: &str) -> Result<()> {
        let actor = self.actor();
        let facade = self.facade_handle(&actor)?;
        let source = source.to_owned();
        let events: Vec<(String, FuncHandle)> =
            actor.with(
                move |interp| -> std::result::Result<
                    Vec<(String, FuncHandle)>,
                    adapta_bridge::ActorError,
                > {
                    let facade_table = ScriptActor::stored_get(interp, facade)
                        .ok_or(adapta_bridge::ActorError::UnknownFunction(0))?;
                    interp.set_global("smartproxy", facade_table.clone());
                    interp.eval(&source)?;
                    // Read back the `_strategies` table.
                    let strategies = facade_table
                        .as_table()
                        .map(|t| t.borrow().get_str("_strategies"))
                        .unwrap_or(adapta_script::Value::Nil);
                    let mut out = Vec::new();
                    if let Some(t) = strategies.as_table() {
                        let entries: Vec<_> = t.borrow().iter().collect();
                        for (k, v) in entries {
                            if let (Some(event), adapta_script::Value::Function(_)) =
                                (k.as_str().map(str::to_owned), &v)
                            {
                                out.push((event, ScriptActor::stored_put(interp, v.clone())));
                            }
                        }
                    }
                    Ok(out)
                },
            )??;
        if events.is_empty() {
            return Err(CoreError::Script(
                "strategies script did not define smartproxy._strategies".into(),
            ));
        }
        let mut strategies = self.inner.strategies.lock();
        for (event, handle) in events {
            strategies.insert(event, Strategy::Script(handle));
        }
        Ok(())
    }

    /// The proxy's script actor (created on first use).
    pub fn actor(&self) -> ScriptActor {
        let mut guard = self.inner.actor.lock();
        if guard.is_none() {
            let name = format!("sp-{}", self.inner.service_type);
            *guard = Some(ScriptActor::spawn(&name, |_| {}));
        }
        guard.clone().expect("just set")
    }

    /// The persistent facade table handle (created on first use).
    fn facade_handle(&self, actor: &ScriptActor) -> Result<FuncHandle> {
        if let Some(h) = self.inner.facade.get() {
            return Ok(*h);
        }
        let proxy = self.clone();
        let handle = actor.with(move |interp| build_facade(interp, &proxy))?;
        let _ = self.inner.facade.set(handle);
        Ok(*self.inner.facade.get().expect("just set"))
    }

    // ---- selection -------------------------------------------------------

    /// Re-runs the primary query (no fallback); rebinds on a match.
    ///
    /// # Errors
    ///
    /// Trading errors.
    pub fn reselect(&self) -> Result<bool> {
        self.select_with(&self.inner.constraint.clone(), false)
    }

    /// Runs a query with an explicit constraint; rebinds on a match.
    /// With `fallback`, an empty result triggers the paper's relaxed
    /// query (preference only, no filtering).
    ///
    /// # Errors
    ///
    /// Trading errors.
    pub fn select_with(&self, constraint: &str, fallback: bool) -> Result<bool> {
        self.select_excluding(constraint, fallback, None)
    }

    /// Like [`select_with`](Self::select_with), skipping offers whose
    /// target is `exclude` (used after a component failure so the
    /// failover does not rebind the dead server, whose stale offer may
    /// still be registered). Every selection additionally skips targets
    /// on the proxy's short-TTL dead list, so a `reselect()` moments
    /// after a failover cannot re-pick the dead server's stale offer.
    ///
    /// # Errors
    ///
    /// Trading errors.
    pub fn select_excluding(
        &self,
        constraint: &str,
        fallback: bool,
        exclude: Option<&ObjRef>,
    ) -> Result<bool> {
        let dead = self.inner.dead_snapshot();
        let filter = |matches: Vec<OfferMatch>| -> Vec<OfferMatch> {
            matches
                .into_iter()
                .filter(|m| {
                    if exclude.is_some_and(|x| m.target == *x) {
                        return false;
                    }
                    if dead.contains(&m.target) {
                        self.inner.repicks_avoided.fetch_add(1, Ordering::Relaxed);
                        registry()
                            .counter(&self.inner.metric("failover.repicks_avoided"))
                            .incr();
                        return false;
                    }
                    true
                })
                .collect()
        };
        let q = Query::new(&self.inner.service_type)
            .constraint(constraint)
            .preference(&self.inner.preference);
        let mut matches = filter(self.inner.trader.query(&q)?);
        if matches.is_empty() && fallback && self.inner.fallback_on_empty {
            let relaxed = Query::new(&self.inner.service_type).preference(&self.inner.preference);
            matches = filter(self.inner.trader.query(&relaxed)?);
        }
        if matches.is_empty() {
            return Ok(false);
        }
        self.bind(matches.swap_remove(0));
        Ok(true)
    }

    /// Drops the current binding (the next invocation selects afresh).
    pub fn unbind(&self) {
        let old = self.inner.binding.lock().take();
        if let Some(binding) = old {
            self.detach(&binding);
        }
    }

    fn detach(&self, binding: &Binding) {
        for (monitor, observer_id) in &binding.attachments {
            let _ = self.inner.orb.invoke_ref(
                monitor,
                "detachEventObserver",
                vec![Value::Long(*observer_id)],
            );
        }
    }

    fn bind(&self, offer: OfferMatch) {
        let observer = self.observer_ref();
        let mut attachments = Vec::new();
        for sub in &self.inner.subscriptions {
            let Some(monitor) = offer.dynamic_ref(&sub.property) else {
                continue;
            };
            match self.inner.orb.invoke_ref(
                monitor,
                "attachEventObserver",
                vec![
                    Value::ObjRef(observer.clone()),
                    Value::from(sub.event_id.as_str()),
                    Value::from(sub.predicate.as_str()),
                ],
            ) {
                Ok(Value::Long(id)) => attachments.push((monitor.clone(), id)),
                _ => {
                    // Monitor unreachable: proceed without this
                    // subscription (the offer itself is still usable).
                }
            }
        }
        let new_binding = Binding {
            target: offer.target.clone(),
            offer,
            attachments,
        };
        let old = {
            let mut slot = self.inner.binding.lock();
            let changed = slot
                .as_ref()
                .map(|b| b.target != new_binding.target)
                .unwrap_or(true);
            if changed {
                self.inner.rebinds.fetch_add(1, Ordering::Relaxed);
                registry().counter(&self.inner.metric("rebinds")).incr();
            }
            slot.replace(new_binding)
        };
        if let Some(old) = old {
            self.detach(&old);
        }
    }

    // ---- events ----------------------------------------------------------

    /// Handles all queued events now (normally done automatically
    /// before each invocation; public for explicit activation).
    ///
    /// Duplicate event ids queued since the last invocation are
    /// coalesced: a burst of identical `LoadIncrease` notifications
    /// runs its strategy once, not once per notification.
    pub fn handle_pending_events(&self) {
        let drained: Vec<String> = self.inner.events.lock().drain(..).collect();
        self.inner.publish_queue_depth(0);
        if drained.is_empty() {
            return;
        }
        let drain_hist = registry().histogram(&self.inner.metric("drain_latency"));
        drain_hist.time(|| {
            let mut seen = std::collections::HashSet::new();
            for event in drained {
                if seen.insert(event.clone()) {
                    self.handle_event(&event);
                }
            }
        });
    }

    /// Applies the strategy for `event` immediately (on-demand
    /// adaptation, independent of notifications).
    pub fn adapt_now(&self, event: &str) {
        self.handle_event(event);
    }

    fn handle_event(&self, event: &str) {
        self.inner.events_handled.fetch_add(1, Ordering::Relaxed);
        enum Plan {
            Reselect,
            Native(NativeStrategy),
            Script(FuncHandle),
        }
        let plan = {
            let strategies = self.inner.strategies.lock();
            match strategies.get(event) {
                None | Some(Strategy::Reselect) => Plan::Reselect,
                Some(Strategy::Native(f)) => Plan::Native(f.clone()),
                Some(Strategy::Script(h)) => Plan::Script(*h),
            }
        };
        let kind = match &plan {
            Plan::Reselect => "reselect",
            Plan::Native(_) => "native",
            Plan::Script(_) => "script",
        };
        registry()
            .counter(&self.inner.metric(&format!("strategy.{kind}.runs")))
            .incr();
        let failed = match plan {
            Plan::Reselect => self.reselect().is_err(),
            Plan::Native(f) => {
                f(self, event);
                false
            }
            Plan::Script(handle) => {
                let actor = self.actor();
                let Ok(facade) = self.facade_handle(&actor) else {
                    registry()
                        .counter(&self.inner.metric("strategy.script.failures"))
                        .incr();
                    return;
                };
                let proxy = self.clone();
                let event = event.to_owned();
                actor
                    .call_with(handle, move |interp| {
                        let table = ScriptActor::stored_get(interp, facade)
                            .unwrap_or(adapta_script::Value::Nil);
                        refresh_facade(interp, &proxy, &table);
                        vec![table, adapta_script::Value::str(event)]
                    })
                    .is_err()
            }
        };
        if failed {
            registry()
                .counter(&self.inner.metric(&format!("strategy.{kind}.failures")))
                .incr();
        }
    }

    // ---- invocation ------------------------------------------------------

    /// Invokes an operation on the represented service.
    ///
    /// Queued events are handled first (postponed handling). Retryable
    /// failures ([`OrbError::is_retryable`]) drive the recovery policy:
    /// the proxy marks the target dead, fails over to an alternative
    /// offer when one exists (retrying the *same* target otherwise —
    /// it may heal), sleeps the [`RetryPolicy`]'s decorrelated-jitter
    /// backoff, and tries again up to `max_attempts`. A configured
    /// [circuit breaker](SmartProxyBuilder::circuit_breaker) is
    /// consulted before every attempt, so a target that keeps failing
    /// is refused up front instead of being called into a black hole.
    /// The proxy's [`call_deadline`](SmartProxyBuilder::call_deadline)
    /// bounds the *whole* invocation — attempts and backoff sleeps
    /// together — not each attempt separately.
    ///
    /// Application-level errors are returned immediately: the component
    /// answered, so retrying would re-run a possibly non-idempotent
    /// operation for nothing.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unbound`] when no component can be selected;
    /// otherwise broker/servant errors (the last attempt's, when
    /// retries are exhausted).
    pub fn invoke(&self, op: &str, args: Vec<Value>) -> Result<Value> {
        self.inner.invocations.fetch_add(1, Ordering::Relaxed);
        self.handle_pending_events();
        let overall = self.inner.call_deadline.map(|d| (d, Instant::now() + d));
        let mut backoff = self.inner.retry.backoff();
        let max_attempts = self.inner.retry.max_attempts.max(1);
        let mut counted_failover = false;
        let mut last_err: Option<CoreError> = None;
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                self.inner.retries.fetch_add(1, Ordering::Relaxed);
                registry().counter(&self.inner.metric("retries")).incr();
            }
            if let Some((budget, end)) = overall {
                if Instant::now() >= end {
                    return Err(last_err
                        .unwrap_or_else(|| OrbError::DeadlineExpired { after: budget }.into()));
                }
            }
            let target = self.ensure_bound()?;
            if let Some(breakers) = &self.inner.breakers {
                if breakers.admit(&target) == Admission::Reject {
                    last_err = Some(CoreError::Orb(OrbError::Transport(format!(
                        "circuit open for `{}`",
                        target.to_uri()
                    ))));
                    // Prefer a different component while this one cools
                    // down; with nowhere to go, wait out the backoff —
                    // the breaker will eventually admit a probe.
                    let moved =
                        self.select_excluding(&self.inner.constraint.clone(), true, Some(&target))?
                            && self.current_target().is_some_and(|t| t != target);
                    if !moved {
                        self.sleep_backoff(&mut backoff, overall);
                    }
                    continue;
                }
            }
            match self.invoke_transport(&target, op, args.clone(), overall) {
                Ok(v) => {
                    if let Some(breakers) = &self.inner.breakers {
                        breakers.on_success(&target);
                    }
                    return Ok(v);
                }
                Err(e) if e.is_retryable() => {
                    if let Some(breakers) = &self.inner.breakers {
                        breakers.on_failure(&target);
                    }
                    if !counted_failover {
                        // Counted once per invocation, not per attempt:
                        // `failovers()` means "invocations that hit a
                        // failure", matching its historical semantics.
                        counted_failover = true;
                        self.inner.failovers.fetch_add(1, Ordering::Relaxed);
                        registry().counter(&self.inner.metric("failovers")).incr();
                    }
                    self.inner.note_dead(&target);
                    last_err = Some(e.into());
                    if attempt == max_attempts {
                        break;
                    }
                    // Fail over to an alternative offer when one exists;
                    // `bind` replaces the binding, so when nothing else
                    // matches the proxy stays bound to the failed target
                    // and the next attempt retries it (it may heal).
                    let _ =
                        self.select_excluding(&self.inner.constraint.clone(), true, Some(&target))?;
                    self.sleep_backoff(&mut backoff, overall);
                }
                Err(e) => {
                    // The component answered (application error): it is
                    // alive as far as the breaker is concerned.
                    if let Some(breakers) = &self.inner.breakers {
                        breakers.on_success(&target);
                    }
                    return Err(e.into());
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            CoreError::Unbound(format!(
                "retries exhausted for `{}`",
                self.inner.service_type
            ))
        }))
    }

    /// Sleeps the next backoff delay, clipped to the remaining overall
    /// deadline budget (so a retried call can never overshoot it).
    fn sleep_backoff(
        &self,
        backoff: &mut crate::resilience::Backoff,
        overall: Option<(Duration, Instant)>,
    ) {
        let mut delay = backoff.next_delay();
        if let Some((_, end)) = overall {
            delay = delay.min(end.saturating_duration_since(Instant::now()));
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// One two-way invocation with this proxy's per-call deadline (if
    /// configured): a hung server fails fast and triggers failover. The
    /// transport deadline is the *remaining* overall budget, so retries
    /// honor the invocation's `call_deadline` instead of resetting it
    /// per attempt.
    fn invoke_transport(
        &self,
        target: &ObjRef,
        op: &str,
        args: Vec<Value>,
        overall: Option<(Duration, Instant)>,
    ) -> OrbResult<Value> {
        let opts = match overall {
            Some((budget, end)) => {
                let remaining = end.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(OrbError::DeadlineExpired { after: budget });
                }
                InvokeOptions::new().deadline(remaining)
            }
            None => InvokeOptions::default(),
        };
        self.inner.orb.invoke_ref_with(target, op, args, opts)
    }

    /// Invokes a oneway operation on the represented service.
    ///
    /// # Errors
    ///
    /// As [`invoke`](Self::invoke), without failover retry semantics
    /// beyond selection.
    pub fn invoke_oneway(&self, op: &str, args: Vec<Value>) -> Result<()> {
        self.inner.invocations.fetch_add(1, Ordering::Relaxed);
        self.handle_pending_events();
        let target = self.ensure_bound()?;
        Ok(self.inner.orb.invoke_oneway_ref(&target, op, args)?)
    }

    fn ensure_bound(&self) -> Result<ObjRef> {
        if let Some(target) = self.current_target() {
            return Ok(target);
        }
        if self.select_with(&self.inner.constraint.clone(), true)? {
            return Ok(self
                .current_target()
                .expect("select_with(true) bound a component"));
        }
        Err(CoreError::Unbound(format!(
            "no component for `{}`",
            self.inner.service_type
        )))
    }
}

// ---- script facade ---------------------------------------------------------

/// Builds the persistent script facade table for a proxy.
fn build_facade(interp: &mut adapta_script::Interpreter, proxy: &SmartProxy) -> FuncHandle {
    let table = adapta_script::Value::table();
    if let Some(t) = table.as_table() {
        // _select(self, query) -> bool
        let p = proxy.clone();
        t.borrow_mut().set_str(
            "_select",
            adapta_script::Interpreter::native("_select", move |interp, args| {
                let query = args
                    .get(1)
                    .and_then(|v| v.as_str().map(str::to_owned))
                    .unwrap_or_default();
                let ok = p.select_with(&query, false).unwrap_or(false);
                if ok {
                    // Rebinding changed the monitors: refresh the facade
                    // the strategy is holding.
                    if let Some(self_table) = args.first() {
                        refresh_facade(interp, &p, self_table);
                    }
                }
                Ok(vec![adapta_script::Value::Bool(ok)])
            }),
        );
        // _reselect(self) -> bool (primary constraint)
        let p = proxy.clone();
        t.borrow_mut().set_str(
            "_reselect",
            adapta_script::Interpreter::native("_reselect", move |interp, args| {
                let ok = p.reselect().unwrap_or(false);
                if ok {
                    if let Some(self_table) = args.first() {
                        refresh_facade(interp, &p, self_table);
                    }
                }
                Ok(vec![adapta_script::Value::Bool(ok)])
            }),
        );
        t.borrow_mut().set_str(
            "_observer",
            adapta_bridge::from_wire(&Value::ObjRef(proxy.observer_ref())),
        );
        t.borrow_mut().set_str(
            "_service_type",
            adapta_script::Value::str(proxy.service_type()),
        );
    }
    refresh_facade(interp, proxy, &table);
    ScriptActor::stored_put(interp, table)
}

/// Updates the binding-dependent facade fields: `_target`, `_monitors`
/// (property name → monitor proxy table) and `_loadavgmon` (the
/// `LoadAvg` monitor, so Figure 7 runs verbatim).
fn refresh_facade(
    interp: &mut adapta_script::Interpreter,
    proxy: &SmartProxy,
    facade: &adapta_script::Value,
) {
    let Some(t) = facade.as_table() else { return };
    let Some(offer) = proxy.current_offer() else {
        return;
    };
    let _ = interp; // proxy tables need no interpreter context today
    t.borrow_mut()
        .set_str("_target", adapta_script::Value::str(offer.target.to_uri()));
    let monitors = adapta_script::Value::table();
    if let Some(mt) = monitors.as_table() {
        for (name, monitor_ref) in &offer.dynamic {
            let table = script_env::proxy_table(&proxy.inner.orb, &proxy.inner.repo, monitor_ref);
            mt.borrow_mut().set_str(name, table.clone());
            if name == "LoadAvg" {
                t.borrow_mut().set_str("_loadavgmon", table);
            }
        }
    }
    t.borrow_mut().set_str("_monitors", monitors);
}
