//! The auto-adaptation infrastructure — the paper's contribution
//! (Sections IV–V).
//!
//! The pieces, mirroring Figure 6:
//!
//! * [`SmartProxy`] — the client-side representative of a *service*
//!   (not a server): it selects the concrete component through the
//!   trading service using constraints over nonfunctional properties,
//!   subscribes to the monitors behind those properties, queues event
//!   notifications, and — immediately before the next invocation —
//!   runs the adaptation strategies registered for the queued events
//!   (*postponed handling*). Strategies can be native Rust or Rua code
//!   installed and replaced at run time.
//! * [`ServiceAgent`] — the server-side element that announces service
//!   offers to the trader, wiring monitors in as *dynamic properties*,
//!   and runs configuration scripts on the host's script state.
//! * [`Infrastructure`] — one-call wiring of a trader, servers with
//!   simulated hosts and load monitors, and smart-proxy clients; the
//!   quickest way to reproduce the paper's HelloWorld and load-sharing
//!   examples.
//! * [`policies`] — the three client binding policies compared in the
//!   evaluation: static random binding, trade-once (the Badidi et al.
//!   baseline) and the auto-adaptive smart proxy.
//! * [`ScriptServant`] / [`script_env`] — the LuaCorba analogues:
//!   implement a servant *in the scripting language* (DSI side) and
//!   invoke remote objects *from* scripts through generated proxy
//!   tables (DII side).

mod agent;
mod error;
mod infra;
pub mod interceptors;
pub mod policies;
mod resilience;
pub mod script_env;
mod script_servant;
mod smart_proxy;

pub use agent::ServiceAgent;
pub use error::CoreError;
pub use infra::{Infrastructure, ServerHandle, ServerSpec};
pub use interceptors::AdaptiveRedirect;
pub use resilience::{Admission, BreakerConfig, BreakerState, CircuitBreakerSet, RetryPolicy};
pub use script_servant::ScriptServant;
pub use smart_proxy::{
    BalancerConfig, NativeStrategy, SmartProxy, SmartProxyBuilder, Strategy, Subscription,
    RELAXED_QUERY_EVENT,
};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
