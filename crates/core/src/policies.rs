//! The client binding policies compared in the evaluation.
//!
//! The paper's load-sharing example (Section V) extends the
//! trader-based load-sharing service of Badidi et al. (PDCS'99) — which
//! selects a server once and never rebinds — with *dynamic* server
//! changes. The experiment harness compares three policies:
//!
//! * [`BindingPolicy::StaticRandom`] — pick any server uniformly at
//!   random, keep it forever (no trading information used for load);
//! * [`BindingPolicy::TradeOnce`] — the Badidi baseline: query the
//!   trader once, bind the least-loaded server, never change;
//! * [`BindingPolicy::AutoAdaptive`] — the paper's contribution: a
//!   smart proxy subscribed to the bound host's LoadAverage monitor
//!   (Figure 4 predicate), re-selecting on `LoadIncrease` events and
//!   relaxing its threshold when no better server exists (Figure 7
//!   strategy).

use std::sync::Arc;

use adapta_idl::InterfaceRepository;
use adapta_orb::Orb;
use adapta_trading::TradingService;

use crate::smart_proxy::{SmartProxy, Strategy, Subscription};
use crate::Result;

/// Which client behaviour to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingPolicy {
    /// Random server, bound forever.
    StaticRandom,
    /// Least-loaded server at bind time, bound forever (Badidi et al.).
    TradeOnce,
    /// The paper's auto-adaptive smart proxy.
    AutoAdaptive,
}

impl BindingPolicy {
    /// All policies, in presentation order.
    pub const ALL: [BindingPolicy; 3] = [
        BindingPolicy::StaticRandom,
        BindingPolicy::TradeOnce,
        BindingPolicy::AutoAdaptive,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            BindingPolicy::StaticRandom => "static-random",
            BindingPolicy::TradeOnce => "trade-once",
            BindingPolicy::AutoAdaptive => "auto-adaptive",
        }
    }
}

impl std::fmt::Display for BindingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Thresholds of the load-sharing adaptation (Figures 4 and 7 use
/// 50 and 70).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSharingConfig {
    /// Selection/notification threshold (`LoadAvg < threshold`,
    /// notify when `value[1] > threshold`).
    pub threshold: f64,
    /// The relaxed notification threshold installed when no better
    /// server exists (Figure 7, lines 10–17).
    pub relaxed_threshold: f64,
}

impl Default for LoadSharingConfig {
    fn default() -> Self {
        // The paper's values are load averages of 50/70 (large Unix
        // timesharing machines); simulated hosts reach single digits,
        // so experiments usually override these.
        LoadSharingConfig {
            threshold: 50.0,
            relaxed_threshold: 70.0,
        }
    }
}

impl LoadSharingConfig {
    /// A config with both thresholds scaled to simulated host loads.
    pub fn with_threshold(threshold: f64) -> Self {
        LoadSharingConfig {
            threshold,
            relaxed_threshold: threshold * 1.4,
        }
    }

    /// The primary selection constraint (Figure 7, line 8).
    pub fn constraint(&self) -> String {
        format!("LoadAvg < {} and LoadAvgIncreasing == no", self.threshold)
    }

    /// The Figure-4 event-diagnosing predicate, parameterised by
    /// threshold.
    pub fn predicate(&self, threshold: f64) -> String {
        format!(
            r#"function(observer, value, monitor)
    local incr
    incr = monitor:getAspectValue("Increasing")
    return value[1] > {threshold} and incr == "yes"
end"#
        )
    }
}

/// Builds a load-sharing client with the given policy.
///
/// # Errors
///
/// Selection/trading errors (see
/// [`SmartProxyBuilder::build`](crate::SmartProxyBuilder::build)).
pub fn load_sharing_proxy(
    orb: &Orb,
    repo: &InterfaceRepository,
    trader: Arc<dyn TradingService>,
    service_type: &str,
    policy: BindingPolicy,
    config: LoadSharingConfig,
) -> Result<SmartProxy> {
    match policy {
        BindingPolicy::StaticRandom => SmartProxy::builder(orb, repo, trader, service_type)
            .preference("random")
            .build(),
        BindingPolicy::TradeOnce => SmartProxy::builder(orb, repo, trader, service_type)
            .constraint(config.constraint())
            .preference("min LoadAvg")
            .build(),
        BindingPolicy::AutoAdaptive => {
            let proxy = SmartProxy::builder(orb, repo, trader, service_type)
                .constraint(config.constraint())
                .preference("min LoadAvg")
                .subscribe(Subscription::new(
                    "LoadAvg",
                    "LoadIncrease",
                    config.predicate(config.threshold),
                ))
                .build()?;
            proxy.set_strategy("LoadIncrease", load_increase_strategy(orb.clone(), config));
            Ok(proxy)
        }
    }
}

/// The Figure-7 strategy, natively: look for an alternative server; if
/// none fits, keep the current one and relax the notification threshold
/// on its monitor.
pub fn load_increase_strategy(orb: Orb, config: LoadSharingConfig) -> Strategy {
    Strategy::Native(Arc::new(move |proxy: &SmartProxy, _event: &str| {
        let query = config.constraint();
        let found = proxy.select_with(&query, false).unwrap_or(false);
        if !found {
            // Figure 7 lines 10–17: re-attach the observer with the
            // relaxed threshold on the current component's monitor.
            if let Some(offer) = proxy.current_offer() {
                if let Some(monitor) = offer.dynamic_ref("LoadAvg") {
                    let _ = orb.invoke_ref(
                        monitor,
                        "attachEventObserver",
                        vec![
                            adapta_idl::Value::ObjRef(proxy.observer_ref()),
                            adapta_idl::Value::from("LoadIncrease"),
                            adapta_idl::Value::from(config.predicate(config.relaxed_threshold)),
                        ],
                    );
                }
            }
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infra::{Infrastructure, ServerSpec};
    use adapta_idl::Value;
    use std::time::Duration;

    fn loaded_infra() -> Infrastructure {
        let infra = Infrastructure::in_process().unwrap();
        for name in ["pol-a", "pol-b", "pol-c"] {
            infra
                .spawn_server(ServerSpec::echo("PolSvc", name))
                .unwrap();
        }
        infra
    }

    fn proxy_for(infra: &Infrastructure, policy: BindingPolicy) -> SmartProxy {
        load_sharing_proxy(
            infra.orb(),
            infra.repository(),
            Arc::new(infra.trader().clone()),
            "PolSvc",
            policy,
            LoadSharingConfig::with_threshold(3.0),
        )
        .unwrap()
    }

    #[test]
    fn all_policies_bind_initially() {
        let infra = loaded_infra();
        for policy in BindingPolicy::ALL {
            let proxy = proxy_for(&infra, policy);
            assert!(proxy.current_target().is_some(), "{policy}");
            assert_eq!(
                proxy.invoke("hello", vec![Value::from("x")]).unwrap(),
                Value::from("hello, x")
            );
        }
    }

    #[test]
    fn trade_once_never_rebinds_auto_adaptive_does() {
        let infra = loaded_infra();
        // Make pol-a clearly the best at bind time.
        infra.set_background("pol-b", 2.0);
        infra.set_background("pol-c", 2.0);
        infra.advance_in_steps(Duration::from_secs(120), Duration::from_secs(30));

        let trade_once = proxy_for(&infra, BindingPolicy::TradeOnce);
        let adaptive = proxy_for(&infra, BindingPolicy::AutoAdaptive);
        let bound_once = trade_once.invoke("whoami", vec![]).unwrap();
        let bound_adaptive = adaptive.invoke("whoami", vec![]).unwrap();
        assert_eq!(bound_once, Value::from("pol-a"));
        assert_eq!(bound_adaptive, Value::from("pol-a"));

        // The load landscape inverts: pol-a becomes overloaded.
        infra.set_background("pol-a", 6.0);
        infra.set_background("pol-b", 0.0);
        infra.set_background("pol-c", 0.0);
        infra.advance_in_steps(Duration::from_secs(300), Duration::from_secs(30));

        // Postponed handling: the events apply at the next invocation.
        let once_after = trade_once.invoke("whoami", vec![]).unwrap();
        let adaptive_after = adaptive.invoke("whoami", vec![]).unwrap();
        assert_eq!(once_after, Value::from("pol-a"), "Badidi baseline sticks");
        assert_ne!(
            adaptive_after,
            Value::from("pol-a"),
            "auto-adaptive proxy must move away from the overloaded host"
        );
        assert!(adaptive.events_received() > 0);
        assert!(adaptive.rebinds() >= 2);
        assert_eq!(trade_once.rebinds(), 1);
    }

    #[test]
    fn static_random_ignores_load() {
        let infra = loaded_infra();
        infra.set_background("pol-a", 9.0);
        infra.advance_in_steps(Duration::from_secs(120), Duration::from_secs(30));
        // Binding distribution is random; just verify it binds and
        // stays bound across load changes.
        let proxy = proxy_for(&infra, BindingPolicy::StaticRandom);
        let first = proxy.invoke("whoami", vec![]).unwrap();
        infra.set_background("pol-b", 9.0);
        infra.advance_in_steps(Duration::from_secs(120), Duration::from_secs(30));
        let second = proxy.invoke("whoami", vec![]).unwrap();
        assert_eq!(first, second);
        assert_eq!(proxy.rebinds(), 1);
    }

    #[test]
    fn relaxation_installs_higher_threshold_instead_of_flapping() {
        let infra = Infrastructure::in_process().unwrap();
        infra
            .spawn_server(ServerSpec::echo("OneSvc", "only-host"))
            .unwrap();
        let proxy = proxy_for_type(&infra, "OneSvc");
        // Overload the only host: the strategy cannot find an
        // alternative and must relax rather than unbind.
        infra.set_background("only-host", 5.0);
        infra.advance_in_steps(Duration::from_secs(300), Duration::from_secs(30));
        proxy.invoke("hello", vec![Value::from("x")]).unwrap();
        assert_eq!(
            proxy.invoke("whoami", vec![]).unwrap(),
            Value::from("only-host")
        );
        assert!(proxy.events_received() > 0);
        // The relaxed predicate was installed as an extra observer on
        // the monitor (Figure 7 semantics).
        let server = infra.server("only-host").unwrap();
        assert!(server.monitor().observer_count() >= 2);
    }

    fn proxy_for_type(infra: &Infrastructure, service_type: &str) -> SmartProxy {
        load_sharing_proxy(
            infra.orb(),
            infra.repository(),
            Arc::new(infra.trader().clone()),
            service_type,
            BindingPolicy::AutoAdaptive,
            LoadSharingConfig::with_threshold(3.0),
        )
        .unwrap()
    }

    #[test]
    fn config_strings_match_the_figures() {
        let cfg = LoadSharingConfig::default();
        assert_eq!(cfg.constraint(), "LoadAvg < 50 and LoadAvgIncreasing == no");
        assert!(cfg.predicate(70.0).contains("value[1] > 70"));
        assert!(cfg
            .predicate(70.0)
            .contains("getAspectValue(\"Increasing\")"));
    }
}
