//! Invoking remote objects *from* scripts — the LuaCorba client side.
//!
//! A CORBA client written in Lua uses a remote object "in the same way
//! it uses any Lua object". Rua has no metatables, so instead of tag
//! methods we generate the proxy table's methods from the interface
//! repository: every operation of the reference's interface (and its
//! bases) becomes a callable entry that marshals its arguments, invokes
//! through the orb, and unmarshals the result. A generic `_invoke`
//! escape hatch covers interfaces the repository does not know.

use std::sync::Arc;

use adapta_bridge::{from_wire, to_wire};
use adapta_idl::{InterfaceRepository, ObjRefData};
use adapta_orb::Orb;
use adapta_script::{Interpreter, RuaError, Table, Value as Script};
use adapta_trading::{ExportRequest, OfferId, PropValue, Query, TradingService};

/// Builds a script proxy table for `target`.
///
/// The table carries `__ref`/`__type` (so it converts back to an object
/// reference when sent over the wire), one method per operation found
/// in `repo` for the target's interface, and the generic
/// `_invoke(self, op, args-table)`.
pub fn proxy_table(orb: &Orb, repo: &InterfaceRepository, target: &ObjRefData) -> Script {
    let mut t = Table::new();
    t.set_str("__ref", Script::str(target.to_uri()));
    t.set_str("__type", Script::str(&target.type_id));

    // Named methods from the interface repository.
    let mut ops: Vec<(String, bool)> = Vec::new();
    let mut stack = vec![target.type_id.clone()];
    while let Some(interface) = stack.pop() {
        if let Ok(def) = repo.lookup(&interface) {
            for op in &def.operations {
                if !ops.iter().any(|(n, _)| *n == op.name) {
                    ops.push((op.name.clone(), op.oneway));
                }
            }
            stack.extend(def.bases.iter().cloned());
        }
    }
    for (op, oneway) in ops {
        let orb = orb.clone();
        let target = target.clone();
        let op_name = op.clone();
        t.set_str(
            &op,
            Interpreter::native(&format!("{}::{op}", target.type_id), move |_, args| {
                // Method-call convention: args[0] is the proxy table.
                let wire_args: Vec<_> = args.iter().skip(1).map(to_wire).collect();
                if oneway {
                    orb.invoke_oneway_ref(&target, &op_name, wire_args)
                        .map_err(|e| RuaError::runtime(e.to_string(), 0))?;
                    Ok(vec![])
                } else {
                    let out = orb
                        .invoke_ref(&target, &op_name, wire_args)
                        .map_err(|e| RuaError::runtime(e.to_string(), 0))?;
                    Ok(vec![from_wire(&out)])
                }
            }),
        );
    }

    // Generic escape hatch for unknown interfaces.
    {
        let orb = orb.clone();
        let target = target.clone();
        t.set_str(
            "_invoke",
            Interpreter::native("_invoke", move |_, args| {
                let op = args
                    .get(1)
                    .and_then(|v| v.as_str().map(str::to_owned))
                    .ok_or_else(|| RuaError::runtime("_invoke: operation name expected", 0))?;
                let wire_args = match args.get(2) {
                    None | Some(Script::Nil) => Vec::new(),
                    Some(v) => match to_wire(v) {
                        adapta_idl::Value::Seq(items) => items,
                        other => vec![other],
                    },
                };
                let out = orb
                    .invoke_ref(&target, &op, wire_args)
                    .map_err(|e| RuaError::runtime(e.to_string(), 0))?;
                Ok(vec![from_wire(&out)])
            }),
        );
    }

    Script::Table(std::rc::Rc::new(std::cell::RefCell::new(t)))
}

/// Installs the orb-access globals into an interpreter:
/// `resolve(uri)` → proxy table, and `resolve_name(endpoint, name)`.
pub fn install(interp: &mut Interpreter, orb: Orb, repo: InterfaceRepository) {
    {
        let orb = orb.clone();
        let repo = repo.clone();
        interp.register("resolve", move |_, args| {
            let uri = args
                .first()
                .and_then(|v| v.as_str())
                .ok_or_else(|| RuaError::runtime("resolve: reference string expected", 0))?;
            let data = ObjRefData::from_uri(uri)
                .ok_or_else(|| RuaError::runtime(format!("bad reference `{uri}`"), 0))?;
            Ok(vec![proxy_table(&orb, &repo, &data)])
        });
    }
    interp.register("resolve_name", move |_, args| {
        let endpoint = args
            .first()
            .and_then(|v| v.as_str())
            .ok_or_else(|| RuaError::runtime("resolve_name: endpoint expected", 0))?;
        let name = args
            .get(1)
            .and_then(|v| v.as_str())
            .ok_or_else(|| RuaError::runtime("resolve_name: name expected", 0))?;
        let data = orb
            .resolve_name(endpoint, name)
            .map_err(|e| RuaError::runtime(e.to_string(), 0))?;
        Ok(vec![proxy_table(&orb, &repo, &data)])
    });
}

/// Installs the LuaTrading analogue: script-side access to a trading
/// service.
///
/// * `trader_query(type [, constraint [, preference]])` → array of
///   offer tables `{id, type, target (a `__ref` table), props}`;
/// * `trader_export(type, target, props)` → offer-id string (values in
///   `props` that are `__ref` tables become *dynamic* properties);
/// * `trader_withdraw(id)` → boolean.
///
/// The paper: "To facilitate the use of the Trading service in our
/// infrastructure, we developed a Lua library that provides a
/// simplified interface to it, called LuaTrading."
pub fn install_trading(interp: &mut Interpreter, trader: Arc<dyn TradingService>) {
    {
        let trader = trader.clone();
        interp.register("trader_query", move |_, args| {
            let service_type = args
                .first()
                .and_then(|v| v.as_str())
                .ok_or_else(|| RuaError::runtime("trader_query: service type expected", 0))?;
            let constraint = args.get(1).and_then(|v| v.as_str()).unwrap_or("");
            let preference = args.get(2).and_then(|v| v.as_str()).unwrap_or("");
            let q = Query::new(service_type)
                .constraint(constraint)
                .preference(preference);
            let matches = trader
                .query(&q)
                .map_err(|e| RuaError::runtime(e.to_string(), 0))?;
            let mut out = Table::new();
            for m in matches {
                let mut offer = Table::new();
                offer.set_str("id", Script::str(m.id.as_str()));
                offer.set_str("type", Script::str(&m.service_type));
                offer.set_str(
                    "target",
                    from_wire(&adapta_idl::Value::ObjRef(m.target.clone())),
                );
                offer.set_str(
                    "props",
                    from_wire(&adapta_idl::Value::Map(m.properties.clone())),
                );
                out.push(Script::Table(std::rc::Rc::new(std::cell::RefCell::new(
                    offer,
                ))));
            }
            Ok(vec![Script::Table(std::rc::Rc::new(
                std::cell::RefCell::new(out),
            ))])
        });
    }
    {
        let trader = trader.clone();
        interp.register("trader_export", move |_, args| {
            let service_type = args
                .first()
                .and_then(|v| v.as_str())
                .ok_or_else(|| RuaError::runtime("trader_export: service type expected", 0))?
                .to_owned();
            let target = args
                .get(1)
                .map(to_wire)
                .and_then(|v| v.as_objref().cloned())
                .ok_or_else(|| {
                    RuaError::runtime("trader_export: target must be a reference table", 0)
                })?;
            let mut request = ExportRequest::new(service_type, target);
            if let Some(props) = args.get(2) {
                match to_wire(props) {
                    adapta_idl::Value::Map(fields) => {
                        for (name, value) in fields {
                            // Reference-valued properties export as
                            // dynamic properties (monitors).
                            match value.as_objref() {
                                Some(r) => request
                                    .properties
                                    .push((name, PropValue::Dynamic(r.clone()))),
                                None => request.properties.push((name, PropValue::Static(value))),
                            }
                        }
                    }
                    adapta_idl::Value::Seq(items) if items.is_empty() => {}
                    _ => {
                        return Err(RuaError::runtime(
                            "trader_export: props must be a table of name = value",
                            0,
                        ))
                    }
                }
            }
            let id = trader
                .export(request)
                .map_err(|e| RuaError::runtime(e.to_string(), 0))?;
            Ok(vec![Script::str(id.as_str())])
        });
    }
    interp.register("trader_withdraw", move |_, args| {
        let id = args
            .first()
            .and_then(|v| v.as_str())
            .ok_or_else(|| RuaError::runtime("trader_withdraw: offer id expected", 0))?;
        let ok = trader.withdraw(&OfferId::from_string(id)).is_ok();
        Ok(vec![Script::Bool(ok)])
    });
}

/// Installs script-side access to a smart proxy's balancer, so Rua
/// adaptation code can inspect and re-route traffic at run time:
///
/// * `balancer_policy()` → the current routing-policy name (or nil
///   when the proxy is not balanced);
/// * `balancer_set_policy(name)` → boolean (swaps the policy; counted
///   under `balancer.<type>.policy_switches`);
/// * `balancer_replicas()` → array of replica tables
///   `{key, endpoint, picks, inflight, errors, load}`.
///
/// The same operations are reachable from strategy scripts through the
/// proxy facade (`self:_policy()`, `self:_set_policy(name)`); this
/// free-function form serves standalone script environments wired with
/// [`install`]/[`install_trading`].
pub fn install_balancer(interp: &mut Interpreter, proxy: crate::SmartProxy) {
    {
        let proxy = proxy.clone();
        interp.register("balancer_policy", move |_, _| {
            Ok(vec![match proxy.balancer_policy() {
                Some(name) => Script::str(name),
                None => Script::Nil,
            }])
        });
    }
    {
        let proxy = proxy.clone();
        interp.register("balancer_set_policy", move |_, args| {
            let name = args
                .first()
                .and_then(|v| v.as_str())
                .ok_or_else(|| RuaError::runtime("balancer_set_policy: name expected", 0))?;
            Ok(vec![Script::Bool(proxy.set_balancer_policy(name))])
        });
    }
    interp.register("balancer_replicas", move |_, _| {
        let mut out = Table::new();
        if let Some(set) = proxy.balancer() {
            for r in set.replicas() {
                let stats = r.stats();
                let mut entry = Table::new();
                entry.set_str("key", Script::str(r.key()));
                entry.set_str("endpoint", Script::str(&r.target().endpoint));
                entry.set_str("picks", Script::Num(stats.picks() as f64));
                entry.set_str("inflight", Script::Num(stats.inflight() as f64));
                entry.set_str("errors", Script::Num(stats.errors() as f64));
                entry.set_str("load", stats.load().map(Script::Num).unwrap_or(Script::Nil));
                out.push(Script::Table(std::rc::Rc::new(std::cell::RefCell::new(
                    entry,
                ))));
            }
        }
        Ok(vec![Script::Table(std::rc::Rc::new(
            std::cell::RefCell::new(out),
        ))])
    });
}

/// The monitor interfaces of the paper's Figures 1 and 2, used to seed
/// interface repositories so scripts get named proxy methods.
pub const MONITOR_IDL: &str = r#"
    interface BasicMonitor {
        any getValue();
        void setValue(in any v);
    };
    interface AspectsManager {
        any getAspectValue(in string name);
        AspectList definedAspects();
        void defineAspect(in string name, in LuaCode updatef);
    };
    interface EventObserver {
        oneway void notifyEvent(in string evid);
    };
    interface EventMonitor : BasicMonitor {
        any getvalue();
        void setvalue(in any v);
        any getAspectValue(in string name);
        AspectList definedAspects();
        void defineAspect(in string name, in LuaCode updatef);
        long attachEventObserver(in EventObserver obj, in string evid, in LuaCode notifyf);
        boolean detachEventObserver(in long id);
        any evalDP(in string name);
    };
"#;

/// Registers [`MONITOR_IDL`] into a repository (idempotent).
pub fn register_monitor_interfaces(repo: &InterfaceRepository) {
    if repo.contains("EventMonitor") {
        return;
    }
    let defs = adapta_idl::parse_idl(MONITOR_IDL).expect("monitor IDL parses");
    repo.register_all(defs).expect("fresh repository");
}

/// The interface of every orb's `_telemetry` object, so Rua scripts can
/// dump a node's metrics snapshot or retained traces through a plain
/// proxy table.
pub const TELEMETRY_IDL: &str = r#"
    interface Telemetry {
        string snapshot();
        string snapshotText();
        string traces();
        string tracesText();
        long counter(in string name);
        long gauge(in string name);
    };
"#;

/// Registers [`TELEMETRY_IDL`] into a repository (idempotent).
pub fn register_telemetry_interface(repo: &InterfaceRepository) {
    if repo.contains("Telemetry") {
        return;
    }
    let defs = adapta_idl::parse_idl(TELEMETRY_IDL).expect("telemetry IDL parses");
    repo.register_all(defs).expect("fresh repository");
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapta_idl::Value as Wire;
    use adapta_orb::ServantFn;

    fn echo_setup() -> (Orb, ObjRefData, InterfaceRepository) {
        let server = Orb::new("senv-server");
        let objref = server
            .activate(
                "echo",
                ServantFn::new("Echo", |op, args| match op {
                    "hello" => Ok(Wire::from(format!(
                        "hello, {}",
                        args.first().and_then(Wire::as_str).unwrap_or("?")
                    ))),
                    "sum" => Ok(Wire::Long(args.iter().filter_map(Wire::as_long).sum())),
                    other => Err(adapta_orb::OrbError::unknown_operation("Echo", other)),
                }),
            )
            .unwrap();
        let repo = InterfaceRepository::new();
        repo.register(
            adapta_idl::InterfaceDef::new("Echo")
                .with_operation(adapta_idl::OperationDef::new(
                    "hello",
                    vec![adapta_idl::ParamDef::new("who", adapta_idl::TypeCode::Str)],
                    adapta_idl::TypeCode::Str,
                ))
                .with_operation(adapta_idl::OperationDef::new(
                    "sum",
                    vec![],
                    adapta_idl::TypeCode::Long,
                )),
        )
        .unwrap();
        (server, objref, repo)
    }

    #[test]
    fn script_calls_remote_methods_by_name() {
        let (_server, objref, repo) = echo_setup();
        let client = Orb::new("senv-client");
        let mut interp = Interpreter::new();
        install(&mut interp, client, repo);
        interp.set_global("uri", adapta_script::Value::str(objref.to_uri()));
        let out = interp
            .eval("local s = resolve(uri)\nreturn s:hello('world')")
            .unwrap();
        assert_eq!(out, vec![adapta_script::Value::str("hello, world")]);
    }

    #[test]
    fn generic_invoke_works_without_repo_entry() {
        let (_server, objref, _repo) = echo_setup();
        let client = Orb::new("senv-client2");
        let mut interp = Interpreter::new();
        install(&mut interp, client, InterfaceRepository::new());
        interp.set_global("uri", adapta_script::Value::str(objref.to_uri()));
        let out = interp
            .eval("local s = resolve(uri)\nreturn s:_invoke('sum', {1, 2, 3})")
            .unwrap();
        assert_eq!(out, vec![adapta_script::Value::Num(6.0)]);
    }

    #[test]
    fn proxy_tables_travel_back_as_references() {
        let (_server, objref, repo) = echo_setup();
        let client = Orb::new("senv-client3");
        let mut interp = Interpreter::new();
        install(&mut interp, client, repo);
        interp.set_global("uri", adapta_script::Value::str(objref.to_uri()));
        let out = interp.eval("return resolve(uri)").unwrap();
        assert_eq!(to_wire(&out[0]), Wire::ObjRef(objref));
    }

    #[test]
    fn resolve_rejects_garbage() {
        let client = Orb::new("senv-client4");
        let mut interp = Interpreter::new();
        install(&mut interp, client, InterfaceRepository::new());
        assert!(interp.eval("return resolve('nonsense')").is_err());
    }

    #[test]
    fn resolve_name_round_trip() {
        let (server, objref, repo) = echo_setup();
        server.bind_name("the-echo", &objref).unwrap();
        let client = Orb::new("senv-client5");
        let mut interp = Interpreter::new();
        install(&mut interp, client, repo);
        interp.set_global("ep", adapta_script::Value::str(server.endpoint()));
        let out = interp
            .eval("local s = resolve_name(ep, 'the-echo')\nreturn s:hello('naming')")
            .unwrap();
        assert_eq!(out, vec![adapta_script::Value::str("hello, naming")]);
    }

    #[test]
    fn monitor_idl_registers() {
        let repo = InterfaceRepository::new();
        register_monitor_interfaces(&repo);
        assert!(repo.lookup_operation("EventMonitor", "getValue").is_ok());
        assert!(repo
            .lookup_operation("EventMonitor", "attachEventObserver")
            .is_ok());
        // Idempotent.
        register_monitor_interfaces(&repo);
    }

    #[test]
    fn rua_scripts_dump_the_telemetry_snapshot() {
        let server = Orb::new("senv-tele");
        adapta_telemetry::registry()
            .counter("test.senv.rua_dump")
            .add(3);
        let repo = InterfaceRepository::new();
        register_telemetry_interface(&repo);
        register_telemetry_interface(&repo); // idempotent
        let mut interp = Interpreter::new();
        install(&mut interp, server.clone(), repo);
        let uri = ObjRefData::new(server.endpoint(), "_telemetry", "Telemetry").to_uri();
        interp.set_global("uri", adapta_script::Value::str(uri));
        let out = interp
            .eval(
                "local t = resolve(uri)\n\
                 return t:snapshot(), t:counter('test.senv.rua_dump')",
            )
            .unwrap();
        let json = out[0].as_str().unwrap().to_owned();
        assert!(json.contains("\"test.senv.rua_dump\":3"), "{json}");
        assert_eq!(out[1], adapta_script::Value::Num(3.0));
    }
}

#[cfg(test)]
mod trading_tests {
    use super::*;
    use adapta_idl::{TypeCode, Value as Wire};
    use adapta_trading::{PropDef, PropMode, ServiceTypeDef, Trader};

    fn trading_interp() -> (Orb, Trader, Interpreter) {
        let orb = Orb::new("luatrading");
        let trader = Trader::new(&orb);
        trader
            .add_type(
                ServiceTypeDef::new("Svc")
                    .with_property(PropDef::new("LoadAvg", TypeCode::Double, PropMode::Normal))
                    .with_property(PropDef::new("Host", TypeCode::Str, PropMode::Readonly)),
            )
            .unwrap();
        let mut interp = Interpreter::new();
        install(&mut interp, orb.clone(), InterfaceRepository::new());
        install_trading(&mut interp, Arc::new(trader.clone()));
        (orb, trader, interp)
    }

    #[test]
    fn export_and_query_from_script() {
        let (orb, _trader, mut interp) = trading_interp();
        let target = ObjRefData::new(orb.endpoint(), "svc-1", "Svc");
        interp.set_global("uri", adapta_script::Value::str(target.to_uri()));
        let out = interp
            .eval(
                r#"
                local target = resolve(uri)
                local id = trader_export("Svc", target, {LoadAvg = 7.5, Host = "n1"})
                local offers = trader_query("Svc", "LoadAvg < 50", "min LoadAvg")
                return id, #offers, offers[1].props.LoadAvg, offers[1].props.Host
            "#,
            )
            .unwrap();
        assert!(out[0].as_str().unwrap().starts_with("offer-"));
        assert_eq!(out[1], adapta_script::Value::Num(1.0));
        assert_eq!(out[2], adapta_script::Value::Num(7.5));
        assert_eq!(out[3], adapta_script::Value::str("n1"));
    }

    #[test]
    fn withdraw_from_script() {
        let (orb, trader, mut interp) = trading_interp();
        let target = ObjRefData::new(orb.endpoint(), "svc-1", "Svc");
        interp.set_global("uri", adapta_script::Value::str(target.to_uri()));
        let out = interp
            .eval(
                r#"
                local id = trader_export("Svc", resolve(uri), {LoadAvg = 1})
                local gone = trader_withdraw(id)
                local again = trader_withdraw(id)
                return gone, again
            "#,
            )
            .unwrap();
        assert_eq!(out[0], adapta_script::Value::Bool(true));
        assert_eq!(out[1], adapta_script::Value::Bool(false));
        assert!(trader.list_offers().is_empty());
    }

    #[test]
    fn reference_valued_props_become_dynamic() {
        let (orb, trader, mut interp) = trading_interp();
        // A live evaluator object for LoadAvg.
        let dp = orb
            .activate(
                "dp",
                adapta_orb::ServantFn::new("DynamicPropEval", |_, _| Ok(Wire::Double(2.5))),
            )
            .unwrap();
        let target = ObjRefData::new(orb.endpoint(), "svc-1", "Svc");
        interp.set_global("uri", adapta_script::Value::str(target.to_uri()));
        interp.set_global("dpuri", adapta_script::Value::str(dp.to_uri()));
        interp
            .eval(r#"trader_export("Svc", resolve(uri), {LoadAvg = resolve(dpuri)})"#)
            .unwrap();
        let offers = trader.list_offers();
        assert!(matches!(
            offers[0].properties[0].1,
            adapta_trading::PropValue::Dynamic(_)
        ));
        // And it evaluates at query time.
        let out = interp
            .eval(r#"return trader_query("Svc", "LoadAvg == 2.5")[1].props.LoadAvg"#)
            .unwrap();
        assert_eq!(out[0], adapta_script::Value::Num(2.5));
    }

    #[test]
    fn script_errors_for_bad_arguments() {
        let (_orb, _trader, mut interp) = trading_interp();
        assert!(interp.eval("trader_query(42)").is_err());
        assert!(interp.eval("trader_export('Svc', 'not-a-ref')").is_err());
        assert!(interp.eval("return trader_query('Unknown')").is_err());
    }
}
