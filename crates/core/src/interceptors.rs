//! Adaptation through request interceptors — the paper's ongoing work
//! (Section VI), completed.
//!
//! "We are integrating LuaCorba with the Portable Interceptor mechanism
//! specified by CORBA. … use them, instead of the smart proxy
//! mechanism, to apply the adaptation strategies supported by our
//! infrastructure. The use of the CORBA interceptor mechanism will
//! allow us to plug our dynamic adaptation support into standard CORBA
//! applications."
//!
//! [`AdaptiveRedirect`] is a client interceptor that watches plain
//! invocations of a service type and transparently *location-forwards*
//! them to the component currently preferred by the trader. The
//! application uses ordinary [`Proxy`](adapta_orb::Proxy) objects and
//! never learns it is being adapted — the difference from the smart
//! proxy is exactly the one the paper describes: no special proxy
//! object is needed on the client.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adapta_orb::{ClientAction, ClientInterceptor, ClientRequestInfo, ObjRef, Orb};
use adapta_trading::{Query, TradingService};
use parking_lot::Mutex;

/// A trader-driven redirecting interceptor for one service type.
///
/// Every `refresh_every` intercepted requests (default: 1, i.e. each
/// request) the interceptor re-queries the trader and caches the best
/// offer; requests aimed at *any* object of the service type are
/// forwarded to the cached best component when it differs.
pub struct AdaptiveRedirect {
    trader: Arc<dyn TradingService>,
    service_type: String,
    constraint: String,
    preference: String,
    refresh_every: u64,
    counter: AtomicU64,
    cached: Mutex<Option<ObjRef>>,
    redirects: AtomicU64,
}

impl std::fmt::Debug for AdaptiveRedirect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveRedirect")
            .field("service_type", &self.service_type)
            .field("constraint", &self.constraint)
            .finish_non_exhaustive()
    }
}

impl AdaptiveRedirect {
    /// Creates the interceptor for `service_type`, selecting with the
    /// given constraint and preference.
    pub fn new(
        trader: Arc<dyn TradingService>,
        service_type: impl Into<String>,
        constraint: impl Into<String>,
        preference: impl Into<String>,
    ) -> Self {
        AdaptiveRedirect {
            trader,
            service_type: service_type.into(),
            constraint: constraint.into(),
            preference: preference.into(),
            refresh_every: 1,
            counter: AtomicU64::new(0),
            cached: Mutex::new(None),
            redirects: AtomicU64::new(0),
        }
    }

    /// Re-query the trader only every `n` intercepted requests
    /// (amortising query cost on hot paths).
    pub fn refresh_every(mut self, n: u64) -> Self {
        self.refresh_every = n.max(1);
        self
    }

    /// Installs the interceptor on an orb (convenience; equivalent to
    /// `orb.add_client_interceptor(self)`).
    pub fn install(self, orb: &Orb) -> Arc<Self> {
        let this = Arc::new(self);
        orb.add_client_interceptor(HandleFor(this.clone()));
        this
    }

    /// How many requests were forwarded to a different component.
    pub fn redirects(&self) -> u64 {
        self.redirects.load(Ordering::Relaxed)
    }

    fn best_target(&self) -> Option<ObjRef> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(self.refresh_every) {
            let q = Query::new(&self.service_type)
                .constraint(&self.constraint)
                .preference(&self.preference)
                .return_card(1);
            if let Ok(matches) = self.trader.query(&q) {
                *self.cached.lock() = matches.first().map(|m| m.target.clone());
            }
        }
        self.cached.lock().clone()
    }
}

/// Wrapper so an `Arc<AdaptiveRedirect>` can be registered (keeping a
/// handle to read [`AdaptiveRedirect::redirects`] afterwards).
struct HandleFor(Arc<AdaptiveRedirect>);

impl ClientInterceptor for HandleFor {
    fn send_request(&self, info: &ClientRequestInfo<'_>) -> ClientAction {
        let this = &self.0;
        if info.target.type_id != this.service_type {
            return ClientAction::Proceed;
        }
        match this.best_target() {
            Some(best) if best != *info.target => {
                this.redirects.fetch_add(1, Ordering::Relaxed);
                ClientAction::Redirect(best)
            }
            _ => ClientAction::Proceed,
        }
    }
}

impl ClientInterceptor for AdaptiveRedirect {
    fn send_request(&self, info: &ClientRequestInfo<'_>) -> ClientAction {
        if info.target.type_id != self.service_type {
            return ClientAction::Proceed;
        }
        match self.best_target() {
            Some(best) if best != *info.target => {
                self.redirects.fetch_add(1, Ordering::Relaxed);
                ClientAction::Redirect(best)
            }
            _ => ClientAction::Proceed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infra::{Infrastructure, ServerSpec};
    use adapta_idl::Value;
    use std::time::Duration;

    #[test]
    fn standard_proxies_get_adapted_transparently() {
        let infra = Infrastructure::in_process().unwrap();
        let a = infra
            .spawn_server(ServerSpec::echo("IcptSvc", "icpt-a"))
            .unwrap();
        infra
            .spawn_server(ServerSpec::echo("IcptSvc", "icpt-b"))
            .unwrap();

        let handle = AdaptiveRedirect::new(
            Arc::new(infra.trader().clone()),
            "IcptSvc",
            "LoadAvg < 3 and LoadAvgIncreasing == no",
            "min LoadAvg",
        )
        .install(infra.orb());

        // The application holds a completely ordinary proxy to `a`.
        let plain = infra.orb().proxy(a.target());
        assert_eq!(
            plain.invoke("whoami", vec![]).unwrap(),
            Value::from("icpt-a")
        );

        // a gets overloaded; the *same plain proxy* now lands on b.
        infra.set_background("icpt-a", 6.0);
        infra.advance_in_steps(Duration::from_secs(180), Duration::from_secs(30));
        assert_eq!(
            plain.invoke("whoami", vec![]).unwrap(),
            Value::from("icpt-b")
        );
        assert!(handle.redirects() > 0);
    }

    #[test]
    fn other_service_types_are_untouched() {
        let infra = Infrastructure::in_process().unwrap();
        infra
            .spawn_server(ServerSpec::echo("Adapted", "u-a"))
            .unwrap();
        let other = infra
            .spawn_server(ServerSpec::echo("Plain", "u-b"))
            .unwrap();
        AdaptiveRedirect::new(
            Arc::new(infra.trader().clone()),
            "Adapted",
            "",
            "min LoadAvg",
        )
        .install(infra.orb());
        let proxy = infra.orb().proxy(other.target());
        assert_eq!(proxy.invoke("whoami", vec![]).unwrap(), Value::from("u-b"));
    }

    #[test]
    fn refresh_every_amortises_queries() {
        let infra = Infrastructure::in_process().unwrap();
        let a = infra
            .spawn_server(ServerSpec::echo("AmortSvc", "am-a"))
            .unwrap();
        let q0 = infra.trader().query_count();
        AdaptiveRedirect::new(
            Arc::new(infra.trader().clone()),
            "AmortSvc",
            "",
            "min LoadAvg",
        )
        .refresh_every(10)
        .install(infra.orb());
        let proxy = infra.orb().proxy(a.target());
        for _ in 0..20 {
            proxy.invoke("whoami", vec![]).unwrap();
        }
        let queries = infra.trader().query_count() - q0;
        assert!(queries <= 3, "expected ~2 refresh queries, got {queries}");
    }
}
