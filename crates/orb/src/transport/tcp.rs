//! The TCP transport: length-prefixed frames, one *multiplexed*
//! connection per remote endpoint, a listener thread per serving orb.
//!
//! ## Client side
//!
//! Each pooled connection ([`MuxConnection`]) owns a dedicated reader
//! thread and a pending-reply table keyed by the request id that is
//! already on the wire in every [`Message::Request`]. Writers take the
//! stream lock only for the frame write, so N concurrent invocations of
//! the same endpoint pipeline on one socket and complete in roughly the
//! latency of a single call instead of their sum. A per-call deadline
//! fails just the matching pending entry — a slow reply never poisons
//! the connection for other callers. A reply whose id routes nowhere
//! (not pending, not abandoned by a deadline) means the stream is
//! desynchronized: the connection is killed and evicted so no later
//! caller can read a stale reply as its own.
//!
//! ## Server side
//!
//! Each accepted connection dispatches decoded requests onto a small
//! on-demand worker pool; replies are written back in completion order
//! through a shared writer. One slow servant no longer head-of-line
//! blocks the other requests pipelined on the same connection.
//!
//! The wire protocol is unchanged: request ids were already carried by
//! every frame, multiplexing only starts using them for correlation.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use adapta_telemetry::{registry, Gauge};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::error::OrbError;
use crate::message::{Message, ReplyBody, RequestBody};
use crate::orb::OrbCore;
use crate::OrbResult;

/// Upper bound on accepted frame size (matches the marshalling limit).
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Default per-call deadline: how long a client waits for a reply
/// before failing that call. Generous: this is a liveness backstop, not
/// a pacing knob; override it per call with `InvokeOptions`.
pub(crate) const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

/// Pause after a transient accept failure (`EMFILE`, `ECONNABORTED`…)
/// before retrying, so a file-descriptor storm cannot spin the loop.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(20);

fn io_err(context: &str, e: std::io::Error) -> OrbError {
    OrbError::Transport(format!("{context}: {e}"))
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> OrbResult<()> {
    let len = (body.len() as u32).to_le_bytes();
    stream
        .write_all(&len)
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| io_err("write frame", e))
}

fn read_frame(stream: &mut TcpStream) -> OrbResult<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(io_err("read frame length", e)),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(OrbError::Transport(format!("frame of {len} bytes refused")));
    }
    let mut body = vec![0u8; len as usize];
    stream
        .read_exact(&mut body)
        .map_err(|e| io_err("read frame body", e))?;
    Ok(Some(body))
}

// ---- server side -----------------------------------------------------------

/// Starts a listener for `core` on `addr`; returns the bound address.
///
/// The accept loop runs on a daemon thread holding only a [`Weak`]
/// reference, so dropping the orb stops it.
pub(crate) fn listen(core: &Arc<OrbCore>, addr: &str) -> OrbResult<SocketAddr> {
    let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("set_nonblocking", e))?;
    let local = listener.local_addr().map_err(|e| io_err("local_addr", e))?;
    let weak = Arc::downgrade(core);
    std::thread::Builder::new()
        .name(format!("orb-accept-{local}"))
        .spawn(move || accept_loop(listener, weak))
        .map_err(|e| OrbError::Transport(format!("spawn accept thread: {e}")))?;
    Ok(local)
}

fn accept_loop(listener: TcpListener, weak: Weak<OrbCore>) {
    loop {
        // Exit when the orb is gone *or* draining: a shutting-down node
        // stops accepting new connections first.
        match weak.upgrade() {
            Some(core) if core.is_running() => {}
            _ => return,
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(false);
                let conn_weak = weak.clone();
                let _ = std::thread::Builder::new()
                    .name("orb-conn".to_owned())
                    .spawn(move || serve_connection(stream, conn_weak));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                // Transient accept failures (EMFILE, ECONNABORTED…)
                // must not permanently kill the listener: count, back
                // off, keep accepting. The loop still exits once the
                // orb is gone.
                if let Some(core) = weak.upgrade() {
                    registry()
                        .counter(&format!("orb.{}.tcp.accept.errors", core.node))
                        .incr();
                }
                std::thread::sleep(ACCEPT_ERROR_BACKOFF);
            }
        }
    }
}

/// One queued server-side job: the decoded request plus whether a reply
/// frame must be written back.
type Job = (RequestBody, bool);

fn serve_connection(mut stream: TcpStream, weak: Weak<OrbCore>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let (tx, rx) = unbounded::<Job>();
    let rx = Arc::new(Mutex::new(rx));
    let workers = Arc::new(AtomicUsize::new(0));
    let idle = Arc::new(AtomicUsize::new(0));
    // Jobs accepted but not yet picked up by a worker; bounding it (per
    // `OrbOptions::max_conn_queue`) is what keeps a request storm from
    // queueing without limit behind slow servants.
    let queued = Arc::new(AtomicUsize::new(0));
    let mut depth_gauge: Option<Gauge> = None;
    let mut shed_counter = None;
    loop {
        let Ok(Some(body)) = read_frame(&mut stream) else {
            return; // worker channel closes with `tx`, draining the pool
        };
        let Some(core) = weak.upgrade() else { return };
        core.count_bytes_in(4 + body.len());
        let Ok(msg) = Message::decode(&body) else {
            return; // protocol violation: drop the connection
        };
        let job = match msg {
            Message::Request(req) => (req, true),
            Message::Oneway(req) => (req, false),
            Message::Reply(_) => return, // clients never push replies
        };
        // Shed before admission when this connection's queue is full:
        // the job never starts, so the error is retryable.
        if queued.load(Ordering::Acquire) >= core.options.max_conn_queue {
            shed_counter
                .get_or_insert_with(|| {
                    registry().counter(&format!("orb.{}.tcp.server.shed", core.node))
                })
                .incr();
            if job.1 {
                let reply = Message::Reply(ReplyBody {
                    id: job.0.id,
                    outcome: Err(OrbError::TransientOverload.to_string()),
                })
                .encode();
                core.count_bytes_out(4 + reply.len());
                if write_frame(&mut writer.lock(), &reply).is_err() {
                    return;
                }
            }
            continue;
        }
        // A draining or node-wide-overloaded orb refuses the dispatch
        // up front, waking the caller with a retryable error instead of
        // letting it block until its deadline.
        let refusal = match core.begin_dispatch() {
            crate::orb::DispatchDecision::Admitted => None,
            crate::orb::DispatchDecision::ShuttingDown => Some(OrbError::ShuttingDown),
            crate::orb::DispatchDecision::Overloaded => Some(OrbError::TransientOverload),
        };
        if let Some(err) = refusal {
            if job.1 {
                let reply = Message::Reply(ReplyBody {
                    id: job.0.id,
                    outcome: Err(err.to_string()),
                })
                .encode();
                core.count_bytes_out(4 + reply.len());
                if write_frame(&mut writer.lock(), &reply).is_err() {
                    return;
                }
            }
            continue;
        }
        let max_workers = core.options.max_conn_workers;
        let gauge = depth_gauge.get_or_insert_with(|| {
            registry().gauge(&format!("orb.{}.tcp.server.queue_depth", core.node))
        });
        drop(core);
        // Reserve a waiting worker for this job, or grow the pool; only
        // this dispatcher decrements `idle`, and a worker re-enters it
        // strictly after finishing a job, so a reservation always names
        // a worker that is (or is about to be) blocked on the queue.
        // Replies are written in completion order through the shared
        // writer, so a slow servant cannot head-of-line-block the
        // connection. At the worker cap the job simply queues.
        if idle.load(Ordering::Acquire) > 0 {
            idle.fetch_sub(1, Ordering::AcqRel);
        } else if workers.load(Ordering::Acquire) < max_workers {
            workers.fetch_add(1, Ordering::AcqRel);
            spawn_conn_worker(
                rx.clone(),
                writer.clone(),
                weak.clone(),
                workers.clone(),
                idle.clone(),
                queued.clone(),
            );
        }
        queued.fetch_add(1, Ordering::AcqRel);
        gauge.add(1);
        if tx.send(job).is_err() {
            return;
        }
    }
}

fn spawn_conn_worker(
    rx: Arc<Mutex<Receiver<Job>>>,
    writer: Arc<Mutex<TcpStream>>,
    weak: Weak<OrbCore>,
    workers: Arc<AtomicUsize>,
    idle: Arc<AtomicUsize>,
    queued: Arc<AtomicUsize>,
) {
    let workers_for_thread = workers.clone();
    let spawned = std::thread::Builder::new()
        .name("orb-conn-worker".to_owned())
        .spawn(move || {
            let workers = workers_for_thread;
            let mut inflight: Option<Gauge> = None;
            let mut depth: Option<Gauge> = None;
            loop {
                // The dispatcher already accounted for this worker —
                // either by spawning it for the job or by reserving it
                // out of `idle` — so no idle bookkeeping around the
                // blocking receive itself.
                let job = rx.lock().recv();
                let Ok((req, needs_reply)) = job else { break };
                let Some(core) = weak.upgrade() else { break };
                queued.fetch_sub(1, Ordering::AcqRel);
                depth
                    .get_or_insert_with(|| {
                        registry().gauge(&format!("orb.{}.tcp.server.queue_depth", core.node))
                    })
                    .sub(1);
                let gauge = inflight.get_or_insert_with(|| {
                    registry().gauge(&format!("orb.{}.tcp.server.inflight", core.node))
                });
                gauge.add(1);
                let reply = core.serve(req);
                gauge.sub(1);
                if needs_reply {
                    let bytes = Message::Reply(reply).encode();
                    core.count_bytes_out(4 + bytes.len());
                    let wrote = write_frame(&mut writer.lock(), &bytes);
                    // The dispatch (accepted in `serve_connection`)
                    // retires only after its reply is flushed, so a
                    // draining orb never strands an accepted caller.
                    core.end_dispatch();
                    if wrote.is_err() {
                        break;
                    }
                } else {
                    core.end_dispatch();
                }
                // Job done: rejoin the waiting pool. This must come
                // after the reply write so a reserved worker can never
                // exit between reservation and pickup.
                idle.fetch_add(1, Ordering::AcqRel);
            }
            workers.fetch_sub(1, Ordering::AcqRel);
        });
    if spawned.is_err() {
        workers.fetch_sub(1, Ordering::AcqRel);
    }
}

// ---- client side -----------------------------------------------------------

/// Mutable state shared between a connection's writers and its reader
/// thread, all behind one lock so liveness checks and entry updates are
/// atomic.
#[derive(Default)]
struct PendingState {
    /// False once the reader declared the connection dead.
    alive: bool,
    /// Request id → reply slot of the caller awaiting it.
    entries: HashMap<u64, Sender<ReplyBody>>,
    /// Ids whose caller gave up (deadline); their late replies are
    /// discarded instead of being treated as desynchronization.
    abandoned: HashSet<u64>,
    /// Why the connection died, for error messages.
    death: Option<String>,
}

/// A multiplexed client connection: shared writer + reader thread +
/// pending-reply table. Cheap to share; the pool hands out clones of
/// the `Arc` and concurrent invocations pipeline on the one socket.
pub(crate) struct MuxConnection {
    writer: Mutex<TcpStream>,
    state: Arc<Mutex<PendingState>>,
    /// `orb.<node>.tcp.client.inflight` — calls awaiting a reply.
    inflight: Gauge,
    /// `orb.<node>.tcp.client.pipeline_depth` — pending entries on the
    /// most recently used connection (a high-water mark of pipelining).
    depth: Gauge,
}

impl MuxConnection {
    fn is_alive(&self) -> bool {
        self.state.lock().alive
    }

    fn death_reason(&self) -> String {
        self.state
            .lock()
            .death
            .clone()
            .unwrap_or_else(|| "connection closed".to_owned())
    }

    /// Reserves a reply slot for `id`; `None` when the connection is
    /// already dead (the caller should evict and retry on a fresh one).
    fn register(&self, id: u64) -> Option<(Receiver<ReplyBody>, usize)> {
        let (tx, rx) = bounded(1);
        let mut st = self.state.lock();
        if !st.alive {
            return None;
        }
        st.entries.insert(id, tx);
        Some((rx, st.entries.len()))
    }

    /// Abandons a pending call whose deadline expired: only that entry
    /// fails; the connection stays usable and the late reply will be
    /// discarded on arrival instead of desynchronizing the stream.
    fn forget(&self, id: u64) {
        let mut st = self.state.lock();
        if st.entries.remove(&id).is_some() {
            st.abandoned.insert(id);
        }
    }

    /// Declares the connection dead: fails every pending caller (their
    /// senders drop, so receivers disconnect) and wakes the reader by
    /// shutting the socket down.
    pub(crate) fn kill(&self, reason: &str) {
        {
            let mut st = self.state.lock();
            if st.alive {
                st.alive = false;
                st.death = Some(reason.to_owned());
            }
            st.entries.clear();
            st.abandoned.clear();
        }
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

impl Drop for MuxConnection {
    fn drop(&mut self) {
        // Wakes the reader thread (which holds only a `Weak` to this
        // connection) so it exits instead of blocking forever.
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

fn connect(core: &Arc<OrbCore>, addr: &str) -> OrbResult<Arc<MuxConnection>> {
    let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    let _ = stream.set_nodelay(true);
    let reader_stream = stream
        .try_clone()
        .map_err(|e| io_err("clone stream for reader", e))?;
    let state = Arc::new(Mutex::new(PendingState {
        alive: true,
        ..PendingState::default()
    }));
    let conn = Arc::new(MuxConnection {
        writer: Mutex::new(stream),
        state: state.clone(),
        inflight: registry().gauge(&format!("orb.{}.tcp.client.inflight", core.node)),
        depth: registry().gauge(&format!("orb.{}.tcp.client.pipeline_depth", core.node)),
    });
    let weak_core = Arc::downgrade(core);
    let weak_conn = Arc::downgrade(&conn);
    let reader_addr = addr.to_owned();
    std::thread::Builder::new()
        .name(format!("orb-mux-reader-{addr}"))
        .spawn(move || reader_loop(reader_stream, state, weak_core, weak_conn, reader_addr))
        .map_err(|e| OrbError::Transport(format!("spawn reader thread: {e}")))?;
    Ok(conn)
}

/// Routes incoming reply frames to their pending callers until the
/// connection dies; then fails every pending caller and evicts the
/// connection from the pool.
fn reader_loop(
    mut stream: TcpStream,
    state: Arc<Mutex<PendingState>>,
    weak_core: Weak<OrbCore>,
    weak_conn: Weak<MuxConnection>,
    addr: String,
) {
    let reason = loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) => break "connection closed by peer".to_owned(),
            Err(e) => break e.to_string(),
        };
        if let Some(core) = weak_core.upgrade() {
            core.count_bytes_in(4 + body.len());
        }
        let reply = match Message::decode(&body) {
            Ok(Message::Reply(reply)) => reply,
            Ok(_) => break "server pushed a non-reply frame".to_owned(),
            Err(e) => break format!("undecodable reply frame: {e}"),
        };
        let id = reply.id;
        let routed = {
            let mut st = state.lock();
            if let Some(tx) = st.entries.remove(&id) {
                let _ = tx.send(reply);
                true
            } else {
                // A deadline-abandoned call's late reply: discard.
                st.abandoned.remove(&id)
            }
        };
        if !routed {
            // An id that routes nowhere means the stream is
            // desynchronized; killing the connection here guarantees
            // no later caller can read a stale reply as its own.
            break format!("unroutable reply id {id}: connection desynchronized");
        }
    };
    {
        let mut st = state.lock();
        if st.alive {
            st.alive = false;
            st.death = Some(reason);
        }
        st.entries.clear();
        st.abandoned.clear();
    }
    if let (Some(core), Some(conn)) = (weak_core.upgrade(), weak_conn.upgrade()) {
        evict_if_current(&core, &addr, &conn);
    }
}

/// Removes `conn` from the pool — but only if it is still the pooled
/// entry for `addr` (a replacement connection must survive).
fn evict_if_current(core: &OrbCore, addr: &str, conn: &Arc<MuxConnection>) {
    let mut pool = core.tcp_pool.lock();
    if pool.get(addr).is_some_and(|c| Arc::ptr_eq(c, conn)) {
        pool.remove(addr);
    }
}

fn pooled_connection(core: &Arc<OrbCore>, addr: &str) -> OrbResult<Arc<MuxConnection>> {
    if let Some(conn) = core.tcp_pool.lock().get(addr) {
        if conn.is_alive() {
            return Ok(conn.clone());
        }
    }
    // Connect outside the pool lock; on a race, prefer whichever live
    // connection landed in the pool (the loser is dropped, shutting its
    // socket down and stopping its reader).
    let conn = connect(core, addr)?;
    let mut pool = core.tcp_pool.lock();
    match pool.get(addr) {
        Some(existing) if existing.is_alive() => Ok(existing.clone()),
        _ => {
            pool.insert(addr.to_owned(), conn.clone());
            Ok(conn)
        }
    }
}

/// Sends `msg` to `addr`; for two-way requests, waits up to `deadline`
/// for the matching reply (correlated by request id, so any number of
/// calls may be in flight on the connection at once).
///
/// A stale pooled connection is evicted and retried once — but only when
/// the failure happened before any byte of the request could have been
/// executed remotely (registration or the initial write), never
/// mid-reply. A deadline expiry fails just this call.
pub(crate) fn invoke(
    core: &Arc<OrbCore>,
    addr: &str,
    msg: Message,
    deadline: Duration,
) -> OrbResult<Option<ReplyBody>> {
    let bytes = msg.encode();
    let expected_id = match &msg {
        Message::Request(body) => Some(body.id),
        _ => None,
    };
    let mut last_err = None;
    for _attempt in 0..2 {
        let conn = pooled_connection(core, addr)?;
        let registered = match expected_id {
            Some(id) => match conn.register(id) {
                Some(slot) => Some(slot),
                None => {
                    evict_if_current(core, addr, &conn);
                    last_err = Some(OrbError::Transport(conn.death_reason()));
                    continue;
                }
            },
            None => None,
        };
        if let Err(e) = conn.write_frame_locked(&bytes) {
            // A partial write leaves the stream unusable for everyone:
            // fail all pending callers and retry this request once on a
            // fresh connection.
            conn.kill("request write failed");
            evict_if_current(core, addr, &conn);
            last_err = Some(e);
            continue;
        }
        core.count_bytes_out(4 + bytes.len());
        let Some((rx, depth)) = registered else {
            return Ok(None); // oneway: fire and forget
        };
        conn.depth.set(depth as i64);
        conn.inflight.add(1);
        let out = match rx.recv_timeout(deadline) {
            Ok(reply) => Ok(Some(reply)),
            Err(RecvTimeoutError::Timeout) => {
                let id = expected_id.expect("two-way call has an id");
                conn.forget(id);
                Err(OrbError::DeadlineExpired { after: deadline })
            }
            Err(RecvTimeoutError::Disconnected) => {
                let reason = conn.death_reason();
                if reason.contains("shutting down") {
                    // Our own orb tore the pool down mid-call.
                    Err(OrbError::ShuttingDown)
                } else {
                    Err(OrbError::Transport(format!(
                        "connection lost while awaiting reply: {reason}"
                    )))
                }
            }
        };
        conn.inflight.sub(1);
        return out;
    }
    Err(last_err.unwrap_or_else(|| OrbError::Transport("tcp invoke failed".into())))
}

impl MuxConnection {
    /// Writes one frame, holding the stream lock only for the write —
    /// the wait for the reply happens off-lock in [`invoke`].
    fn write_frame_locked(&self, bytes: &[u8]) -> OrbResult<()> {
        write_frame(&mut self.writer.lock(), bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::ServantFn;
    use crate::orb::Orb;
    use adapta_idl::Value;

    fn echo_orb(name: &str) -> (Orb, String) {
        let orb = Orb::new(name);
        orb.activate(
            "echo",
            ServantFn::new("Echo", |op, args| {
                if op == "boom" {
                    return Err(OrbError::exception("kapow"));
                }
                Ok(Value::Seq(args))
            }),
        )
        .unwrap();
        let endpoint = orb.listen_tcp("127.0.0.1:0").unwrap();
        (orb, endpoint)
    }

    #[test]
    fn tcp_round_trip() {
        let (_server, endpoint) = echo_orb("t-tcp-server");
        let client = Orb::new("t-tcp-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        let out = client
            .invoke_ref(&target, "echo", vec![Value::from(1i64), Value::from("x")])
            .unwrap();
        assert_eq!(out, Value::Seq(vec![Value::from(1i64), Value::from("x")]));
    }

    #[test]
    fn tcp_remote_exception() {
        let (_server, endpoint) = echo_orb("t-tcp-exc");
        let client = Orb::new("t-tcp-exc-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        let err = client.invoke_ref(&target, "boom", vec![]).unwrap_err();
        assert!(matches!(err, OrbError::RemoteException { message } if message.contains("kapow")));
    }

    #[test]
    fn tcp_oneway_is_served() {
        let (server, endpoint) = echo_orb("t-tcp-oneway");
        let client = Orb::new("t-tcp-oneway-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        client.invoke_oneway_ref(&target, "echo", vec![]).unwrap();
        for _ in 0..300 {
            if server.stats().requests_served >= 1 {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("oneway never served over tcp");
    }

    #[test]
    fn tcp_connection_is_pooled_and_reused() {
        let (_server, endpoint) = echo_orb("t-tcp-pool");
        let client = Orb::new("t-tcp-pool-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        for i in 0..10i64 {
            let out = client
                .invoke_ref(&target, "echo", vec![Value::from(i)])
                .unwrap();
            assert_eq!(out, Value::Seq(vec![Value::from(i)]));
        }
    }

    #[test]
    fn connect_to_dead_endpoint_fails() {
        let client = Orb::new("t-tcp-dead-client");
        let target = crate::ObjRef::new("tcp://127.0.0.1:1", "echo", "Echo");
        assert!(matches!(
            client.invoke_ref(&target, "echo", vec![]),
            Err(OrbError::Transport(_))
        ));
    }

    #[test]
    fn server_survives_garbage_frames() {
        let (_server, endpoint) = echo_orb("t-tcp-garbage");
        let addr = endpoint.strip_prefix("tcp://").unwrap();
        // Throw garbage at the server on one connection…
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&7u32.to_le_bytes()).unwrap();
        bad.write_all(b"garbage").unwrap();
        // …and check a well-behaved client still gets service.
        let client = Orb::new("t-tcp-garbage-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        let out = client.invoke_ref(&target, "echo", vec![]).unwrap();
        assert_eq!(out, Value::Seq(vec![]));
    }

    /// Regression for the desync bug: a reply whose id routes nowhere
    /// must kill *and evict* the connection, so the next caller gets a
    /// fresh socket instead of someone else's stale reply.
    #[test]
    fn mismatched_reply_id_evicts_the_desynchronized_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A misbehaving server: the first connection's first request is
        // answered with the wrong id; later connections behave.
        std::thread::spawn(move || {
            let mut first = true;
            while let Ok((mut stream, _)) = listener.accept() {
                let corrupt = first;
                first = false;
                while let Ok(Some(body)) = read_frame(&mut stream) {
                    let Ok(Message::Request(req)) = Message::decode(&body) else {
                        break;
                    };
                    let id = if corrupt { req.id + 1000 } else { req.id };
                    let reply = Message::Reply(ReplyBody {
                        id,
                        outcome: Ok(Value::Long(7)),
                    })
                    .encode();
                    if write_frame(&mut stream, &reply).is_err() {
                        break;
                    }
                }
            }
        });
        let client = Orb::new("t-tcp-desync-client");
        let target = crate::ObjRef::new(format!("tcp://{addr}"), "echo", "Echo");
        let err = client.invoke_ref(&target, "echo", vec![]).unwrap_err();
        assert!(
            matches!(&err, OrbError::Transport(m) if m.contains("unroutable")
                || m.contains("connection lost")),
            "unexpected error: {err}"
        );
        // The poisoned connection was evicted: the retry below runs on
        // a fresh socket and gets its own (correct) reply.
        let out = client.invoke_ref(&target, "echo", vec![]).unwrap();
        assert_eq!(out, Value::Long(7));
    }

    /// Concurrent two-way calls share the one pooled connection and
    /// pipeline instead of serializing on a per-round-trip lock.
    #[test]
    fn concurrent_calls_pipeline_on_one_connection() {
        let (_server, endpoint) = echo_orb("t-tcp-mux");
        let client = Orb::new("t-tcp-mux-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        client.invoke_ref(&target, "echo", vec![]).unwrap(); // warm the pool
        let mut handles = Vec::new();
        for i in 0..8i64 {
            let client = client.clone();
            let target = target.clone();
            handles.push(std::thread::spawn(move || {
                client
                    .invoke_ref(&target, "echo", vec![Value::from(i)])
                    .unwrap()
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), Value::Seq(vec![Value::from(i as i64)]));
        }
    }
}
