//! The TCP transport: length-prefixed frames, one pooled connection per
//! remote endpoint, a listener thread per serving orb.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::OrbError;
use crate::message::{Message, ReplyBody};
use crate::orb::OrbCore;
use crate::OrbResult;

/// Upper bound on accepted frame size (matches the marshalling limit).
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// How long a client waits for a reply before declaring the connection
/// dead. Generous: this is a liveness backstop, not a pacing knob.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

fn io_err(context: &str, e: std::io::Error) -> OrbError {
    OrbError::Transport(format!("{context}: {e}"))
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> OrbResult<()> {
    let len = (body.len() as u32).to_le_bytes();
    stream
        .write_all(&len)
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| io_err("write frame", e))
}

fn read_frame(stream: &mut TcpStream) -> OrbResult<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            return Err(OrbError::Transport("timed out waiting for a reply".into()))
        }
        Err(e) => return Err(io_err("read frame length", e)),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(OrbError::Transport(format!("frame of {len} bytes refused")));
    }
    let mut body = vec![0u8; len as usize];
    stream
        .read_exact(&mut body)
        .map_err(|e| io_err("read frame body", e))?;
    Ok(Some(body))
}

/// Starts a listener for `core` on `addr`; returns the bound address.
///
/// The accept loop runs on a daemon thread holding only a [`Weak`]
/// reference, so dropping the orb stops it.
pub(crate) fn listen(core: &Arc<OrbCore>, addr: &str) -> OrbResult<SocketAddr> {
    let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("set_nonblocking", e))?;
    let local = listener.local_addr().map_err(|e| io_err("local_addr", e))?;
    let weak = Arc::downgrade(core);
    std::thread::Builder::new()
        .name(format!("orb-accept-{local}"))
        .spawn(move || accept_loop(listener, weak))
        .map_err(|e| OrbError::Transport(format!("spawn accept thread: {e}")))?;
    Ok(local)
}

fn accept_loop(listener: TcpListener, weak: Weak<OrbCore>) {
    loop {
        if weak.strong_count() == 0 {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(false);
                let conn_weak = weak.clone();
                let _ = std::thread::Builder::new()
                    .name("orb-conn".to_owned())
                    .spawn(move || serve_connection(stream, conn_weak));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

fn serve_connection(mut stream: TcpStream, weak: Weak<OrbCore>) {
    loop {
        let Ok(Some(body)) = read_frame(&mut stream) else {
            return;
        };
        let Some(core) = weak.upgrade() else { return };
        core.count_bytes_in(4 + body.len());
        let Ok(msg) = Message::decode(&body) else {
            return; // protocol violation: drop the connection
        };
        match msg {
            Message::Request(req) => {
                let reply = core.serve(req);
                let bytes = Message::Reply(reply).encode();
                core.count_bytes_out(4 + bytes.len());
                if write_frame(&mut stream, &bytes).is_err() {
                    return;
                }
            }
            Message::Oneway(req) => {
                let _ = core.serve(req);
            }
            Message::Reply(_) => return, // clients never push replies
        }
    }
}

fn pooled_connection(core: &OrbCore, addr: &str) -> OrbResult<Arc<Mutex<TcpStream>>> {
    if let Some(conn) = core.tcp_pool.lock().get(addr) {
        return Ok(conn.clone());
    }
    let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(REPLY_TIMEOUT));
    let conn = Arc::new(Mutex::new(stream));
    core.tcp_pool.lock().insert(addr.to_owned(), conn.clone());
    Ok(conn)
}

fn evict(core: &OrbCore, addr: &str) {
    core.tcp_pool.lock().remove(addr);
}

/// Sends `msg` to `addr`; for two-way requests, waits for and returns
/// the matching reply.
///
/// A stale pooled connection is evicted and retried once — but only when
/// the failure happened before any byte of the request could have been
/// executed remotely (the initial write), never mid-reply.
pub(crate) fn invoke(core: &OrbCore, addr: &str, msg: Message) -> OrbResult<Option<ReplyBody>> {
    let bytes = msg.encode();
    let expected_id = match &msg {
        Message::Request(body) => Some(body.id),
        _ => None,
    };
    for attempt in 0..2 {
        let conn = pooled_connection(core, addr)?;
        let mut stream = conn.lock();
        match write_frame(&mut stream, &bytes) {
            Ok(()) => {}
            Err(e) => {
                drop(stream);
                evict(core, addr);
                if attempt == 0 {
                    continue;
                }
                return Err(e);
            }
        }
        core.count_bytes_out(4 + bytes.len());
        let Some(expected_id) = expected_id else {
            return Ok(None); // oneway: fire and forget
        };
        let reply = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) => {
                drop(stream);
                evict(core, addr);
                return Err(OrbError::Transport(
                    "connection closed while awaiting reply".into(),
                ));
            }
            Err(e) => {
                drop(stream);
                evict(core, addr);
                return Err(e);
            }
        };
        core.count_bytes_in(4 + reply.len());
        match Message::decode(&reply)? {
            Message::Reply(body) if body.id == expected_id => return Ok(Some(body)),
            Message::Reply(body) => {
                return Err(OrbError::Transport(format!(
                    "reply id {} does not match request id {expected_id}",
                    body.id
                )))
            }
            _ => return Err(OrbError::Transport("expected a reply frame".into())),
        }
    }
    unreachable!("retry loop returns on both paths")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::ServantFn;
    use crate::orb::Orb;
    use adapta_idl::Value;

    fn echo_orb(name: &str) -> (Orb, String) {
        let orb = Orb::new(name);
        orb.activate(
            "echo",
            ServantFn::new("Echo", |op, args| {
                if op == "boom" {
                    return Err(OrbError::exception("kapow"));
                }
                Ok(Value::Seq(args))
            }),
        )
        .unwrap();
        let endpoint = orb.listen_tcp("127.0.0.1:0").unwrap();
        (orb, endpoint)
    }

    #[test]
    fn tcp_round_trip() {
        let (_server, endpoint) = echo_orb("t-tcp-server");
        let client = Orb::new("t-tcp-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        let out = client
            .invoke_ref(&target, "echo", vec![Value::from(1i64), Value::from("x")])
            .unwrap();
        assert_eq!(out, Value::Seq(vec![Value::from(1i64), Value::from("x")]));
    }

    #[test]
    fn tcp_remote_exception() {
        let (_server, endpoint) = echo_orb("t-tcp-exc");
        let client = Orb::new("t-tcp-exc-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        let err = client.invoke_ref(&target, "boom", vec![]).unwrap_err();
        assert!(matches!(err, OrbError::RemoteException { message } if message.contains("kapow")));
    }

    #[test]
    fn tcp_oneway_is_served() {
        let (server, endpoint) = echo_orb("t-tcp-oneway");
        let client = Orb::new("t-tcp-oneway-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        client.invoke_oneway_ref(&target, "echo", vec![]).unwrap();
        for _ in 0..300 {
            if server.stats().requests_served >= 1 {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("oneway never served over tcp");
    }

    #[test]
    fn tcp_connection_is_pooled_and_reused() {
        let (_server, endpoint) = echo_orb("t-tcp-pool");
        let client = Orb::new("t-tcp-pool-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        for i in 0..10i64 {
            let out = client
                .invoke_ref(&target, "echo", vec![Value::from(i)])
                .unwrap();
            assert_eq!(out, Value::Seq(vec![Value::from(i)]));
        }
    }

    #[test]
    fn connect_to_dead_endpoint_fails() {
        let client = Orb::new("t-tcp-dead-client");
        let target = crate::ObjRef::new("tcp://127.0.0.1:1", "echo", "Echo");
        assert!(matches!(
            client.invoke_ref(&target, "echo", vec![]),
            Err(OrbError::Transport(_))
        ));
    }

    #[test]
    fn server_survives_garbage_frames() {
        let (_server, endpoint) = echo_orb("t-tcp-garbage");
        let addr = endpoint.strip_prefix("tcp://").unwrap();
        // Throw garbage at the server on one connection…
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&7u32.to_le_bytes()).unwrap();
        bad.write_all(b"garbage").unwrap();
        // …and check a well-behaved client still gets service.
        let client = Orb::new("t-tcp-garbage-client");
        let target = crate::ObjRef::new(endpoint, "echo", "Echo");
        let out = client.invoke_ref(&target, "echo", vec![]).unwrap();
        assert_eq!(out, Value::Seq(vec![]));
    }
}
