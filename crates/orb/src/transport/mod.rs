//! Transports.
//!
//! * in-process routing lives in [`crate::Orb`] itself (node registry +
//!   full marshalling round trip);
//! * [`tcp`] carries frames between processes: `u32` little-endian
//!   length prefix + message body (see [`crate::Message`]).

pub mod tcp;
