//! Transports.
//!
//! * in-process routing lives in [`crate::Orb`] itself (node registry +
//!   full marshalling round trip);
//! * [`tcp`] carries frames between processes: `u32` little-endian
//!   length prefix + message body (see [`crate::Message`]). Client
//!   connections are *multiplexed* — one pooled socket per endpoint
//!   carries any number of concurrent requests, correlated by request
//!   id — and servers dispatch each request onto a per-connection
//!   worker pool so slow servants don't head-of-line-block a
//!   connection.

pub mod tcp;
