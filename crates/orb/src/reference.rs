//! Object references.
//!
//! The reference data type lives in `adapta-idl` (so references can be
//! carried inside [`Value`](adapta_idl::Value)s); the broker works with
//! the same type under the name [`ObjRef`].

/// A remote object reference: endpoint + object key + interface name.
///
/// The stringified form (`adapta-ref:…`, see
/// [`ObjRef::to_uri`](adapta_idl::ObjRefData::to_uri)) is the IOR
/// analogue: it can be printed, mailed, bound in the naming service, or
/// embedded in trading offers, and resolved back by any process.
pub type ObjRef = adapta_idl::ObjRefData;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objref_is_the_idl_data_type() {
        let r = ObjRef::new("inproc://n", "k", "T");
        let v = adapta_idl::Value::ObjRef(r.clone());
        assert_eq!(v.as_objref(), Some(&r));
    }
}
