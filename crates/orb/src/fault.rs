//! Fault injection: scripted chaos on the broker's transports.
//!
//! A [`FaultPlan`] holds an ordered list of [`FaultRule`]s. Every
//! outgoing message — in-process *and* TCP, two-way and oneway — is
//! offered to the plan at the transport funnel (`Orb::route`); the
//! first rule whose endpoint/operation filters match and whose
//! probability fires decides the message's fate:
//!
//! * [`FaultAction::Drop`] — the request vanishes: a two-way call fails
//!   with [`OrbError::DeadlineExpired`] (what the caller would have
//!   observed after a real black hole, minus the wait), a oneway is
//!   silently discarded;
//! * [`FaultAction::Delay`] — the call is stalled before proceeding;
//! * [`FaultAction::Corrupt`] — the frame is treated as mangled on the
//!   wire: the call fails with [`OrbError::Transport`];
//! * [`FaultAction::Disconnect`] — the pooled connection to the target
//!   endpoint is torn down (waking every call multiplexed on it) and
//!   the call fails with [`OrbError::Transport`];
//! * [`FaultAction::Error`] — the call fails with a synthetic
//!   application exception (*not* retryable, unlike the others).
//!
//! Rules fire by probability (seeded, so chaos runs are reproducible)
//! and can carry a *budget* — a maximum number of injections — which
//! turns a probabilistic plan into a schedule ("fail the first N calls,
//! then heal"). Every node also hosts a `_faults` servant so a plan can
//! be scripted remotely over the ORB itself — the paper's
//! remote-evaluation idiom turned on ourselves.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adapta_idl::Value;
use adapta_telemetry::registry;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adapter::Servant;
use crate::error::OrbError;
use crate::OrbResult;

/// What happens to a message selected by a fault rule.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// The request disappears; a two-way caller sees a deadline expiry.
    Drop,
    /// The request is stalled for the given duration, then proceeds.
    Delay(Duration),
    /// The frame is mangled in flight; the caller sees a transport error.
    Corrupt,
    /// The pooled connection to the endpoint is killed before failing.
    Disconnect,
    /// The caller receives a synthetic application exception.
    Error(String),
}

impl FaultAction {
    /// Short label used in metric names (`faults.injected.<kind>`).
    fn kind(&self) -> &'static str {
        match self {
            FaultAction::Drop => "drop",
            FaultAction::Delay(_) => "delay",
            FaultAction::Corrupt => "corrupt",
            FaultAction::Disconnect => "disconnect",
            FaultAction::Error(_) => "error",
        }
    }

    /// Parses the wire spelling used by the `_faults` servant:
    /// `drop`, `corrupt`, `disconnect`, `delay:<ms>`, `error:<message>`.
    pub fn parse(spec: &str) -> Option<FaultAction> {
        Some(match spec {
            "drop" => FaultAction::Drop,
            "corrupt" => FaultAction::Corrupt,
            "disconnect" => FaultAction::Disconnect,
            _ => {
                if let Some(ms) = spec.strip_prefix("delay:") {
                    FaultAction::Delay(Duration::from_millis(ms.parse().ok()?))
                } else if let Some(msg) = spec.strip_prefix("error:") {
                    FaultAction::Error(msg.to_owned())
                } else {
                    return None;
                }
            }
        })
    }

    /// The wire spelling accepted by [`FaultAction::parse`].
    pub fn spec(&self) -> String {
        match self {
            FaultAction::Drop => "drop".into(),
            FaultAction::Corrupt => "corrupt".into(),
            FaultAction::Disconnect => "disconnect".into(),
            FaultAction::Delay(d) => format!("delay:{}", d.as_millis()),
            FaultAction::Error(m) => format!("error:{m}"),
        }
    }
}

/// One injection rule: which messages it selects and what it does.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Endpoint filter: `"*"` matches everything, otherwise a substring
    /// of the target endpoint (`tcp://host:port` or `inproc://node`).
    pub endpoint: String,
    /// Operation filter: `"*"` matches everything, otherwise the exact
    /// operation name.
    pub operation: String,
    /// Probability a selected message is actually hit, in `[0, 1]`.
    pub probability: f64,
    /// Maximum number of injections; `None` is unlimited. A budget turns
    /// the rule into a schedule: "fail the first N, then heal".
    pub budget: Option<u64>,
    /// What to do with a hit message.
    pub action: FaultAction,
}

impl FaultRule {
    /// A rule that always hits matching messages, with no budget.
    pub fn new(
        endpoint: impl Into<String>,
        operation: impl Into<String>,
        action: FaultAction,
    ) -> Self {
        FaultRule {
            endpoint: endpoint.into(),
            operation: operation.into(),
            probability: 1.0,
            budget: None,
            action,
        }
    }

    /// Sets the hit probability.
    #[must_use]
    pub fn probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Caps the rule at `n` injections.
    #[must_use]
    pub fn budget(mut self, n: u64) -> Self {
        self.budget = Some(n);
        self
    }

    fn selects(&self, endpoint: &str, operation: &str) -> bool {
        (self.endpoint == "*" || endpoint.contains(self.endpoint.as_str()))
            && (self.operation == "*" || self.operation == operation)
    }
}

struct RuleState {
    rule: FaultRule,
    injected: u64,
}

/// A runtime-mutable set of fault rules attached to one node's
/// transports. Obtain a node's plan with `Orb::fault_plan()` or script
/// it remotely through the node's `_faults` object.
pub struct FaultPlan {
    rules: Mutex<Vec<RuleState>>,
    /// Number of installed rules, mirrored out of the lock so the
    /// common no-chaos case stays a single relaxed load on the hot path.
    armed: AtomicUsize,
    enabled: AtomicBool,
    rng: Mutex<StdRng>,
    injected: AtomicU64,
    metric_prefix: String,
}

impl FaultPlan {
    /// An empty, enabled plan for the named node.
    pub(crate) fn for_node(node: &str) -> Self {
        FaultPlan {
            rules: Mutex::new(Vec::new()),
            armed: AtomicUsize::new(0),
            enabled: AtomicBool::new(true),
            rng: Mutex::new(StdRng::seed_from_u64(0xC4A0_5A10)),
            injected: AtomicU64::new(0),
            metric_prefix: format!("orb.{node}.faults"),
        }
    }

    /// Reseeds the probability source so a chaos run is reproducible.
    pub fn reseed(&self, seed: u64) {
        *self.rng.lock() = StdRng::seed_from_u64(seed);
    }

    /// Installs a rule; returns its index.
    pub fn add(&self, rule: FaultRule) -> usize {
        let mut rules = self.rules.lock();
        rules.push(RuleState { rule, injected: 0 });
        self.armed.store(rules.len(), Ordering::Release);
        rules.len() - 1
    }

    /// Removes every rule.
    pub fn clear(&self) {
        let mut rules = self.rules.lock();
        rules.clear();
        self.armed.store(0, Ordering::Release);
    }

    /// Enables or disables the plan without touching its rules.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Total number of faults injected since construction.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// One human-readable line per rule (used by the `_faults` servant).
    pub fn describe(&self) -> Vec<String> {
        self.rules
            .lock()
            .iter()
            .map(|st| {
                format!(
                    "{} op={} p={} budget={} injected={} action={}",
                    st.rule.endpoint,
                    st.rule.operation,
                    st.rule.probability,
                    st.rule
                        .budget
                        .map_or_else(|| "-".to_owned(), |b| b.to_string()),
                    st.injected,
                    st.rule.action.spec(),
                )
            })
            .collect()
    }

    /// Offers one outgoing message to the plan; returns the action of
    /// the first rule that selects and hits it, if any.
    pub(crate) fn decide(&self, endpoint: &str, operation: &str) -> Option<FaultAction> {
        if self.armed.load(Ordering::Acquire) == 0 || !self.enabled.load(Ordering::Acquire) {
            return None;
        }
        let mut rules = self.rules.lock();
        for st in rules.iter_mut() {
            if !st.rule.selects(endpoint, operation) {
                continue;
            }
            if st.rule.budget.is_some_and(|b| st.injected >= b) {
                continue;
            }
            if st.rule.probability < 1.0 && !self.rng.lock().gen_bool(st.rule.probability) {
                continue;
            }
            st.injected += 1;
            self.injected.fetch_add(1, Ordering::Relaxed);
            registry()
                .counter(&format!(
                    "{}.injected.{}",
                    self.metric_prefix,
                    st.rule.action.kind()
                ))
                .incr();
            return Some(st.rule.action.clone());
        }
        None
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("rules", &self.armed.load(Ordering::Relaxed))
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

/// The `_faults` servant every node hosts: lets a remote operator (or a
/// Rua script) install chaos on a running node.
///
/// Operations:
///
/// * `inject(endpoint, operation, action [, probability [, budget]])`
///   — installs a rule and returns its index; `action` uses the
///   [`FaultAction::parse`] spelling;
/// * `clear()` — removes every rule;
/// * `enable(bool)` — toggles the plan;
/// * `list()` — one descriptive string per rule;
/// * `injected()` — total faults injected so far.
pub struct FaultServant {
    plan: Arc<FaultPlan>,
}

impl FaultServant {
    /// Wraps a node's fault plan.
    pub(crate) fn new(plan: Arc<FaultPlan>) -> Self {
        FaultServant { plan }
    }
}

impl Servant for FaultServant {
    fn interface(&self) -> &str {
        "FaultInjector"
    }

    fn invoke(&self, op: &str, args: Vec<Value>) -> OrbResult<Value> {
        match op {
            "inject" => {
                let endpoint = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| OrbError::exception("inject: endpoint must be a string"))?;
                let operation = args
                    .get(1)
                    .and_then(Value::as_str)
                    .ok_or_else(|| OrbError::exception("inject: operation must be a string"))?;
                let action = args
                    .get(2)
                    .and_then(Value::as_str)
                    .and_then(FaultAction::parse)
                    .ok_or_else(|| {
                        OrbError::exception(
                            "inject: action must be drop|corrupt|disconnect|delay:<ms>|error:<msg>",
                        )
                    })?;
                let mut rule = FaultRule::new(endpoint, operation, action);
                if let Some(p) = args.get(3).and_then(Value::as_double) {
                    rule = rule.probability(p);
                }
                if let Some(b) = args.get(4).and_then(Value::as_long) {
                    rule = rule.budget(b.max(0) as u64);
                }
                Ok(Value::Long(self.plan.add(rule) as i64))
            }
            "clear" => {
                self.plan.clear();
                Ok(Value::Null)
            }
            "enable" => {
                let on = args.first().and_then(Value::as_bool).unwrap_or(true);
                self.plan.set_enabled(on);
                Ok(Value::Null)
            }
            "list" => Ok(Value::Seq(
                self.plan.describe().into_iter().map(Value::from).collect(),
            )),
            "injected" => Ok(Value::Long(self.plan.injected() as i64)),
            _ => Err(OrbError::unknown_operation("FaultInjector", op)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_spec_round_trips() {
        for action in [
            FaultAction::Drop,
            FaultAction::Corrupt,
            FaultAction::Disconnect,
            FaultAction::Delay(Duration::from_millis(7)),
            FaultAction::Error("boom".into()),
        ] {
            assert_eq!(FaultAction::parse(&action.spec()), Some(action));
        }
        assert_eq!(FaultAction::parse("explode"), None);
        assert_eq!(FaultAction::parse("delay:xyz"), None);
    }

    #[test]
    fn rules_filter_by_endpoint_and_operation() {
        let plan = FaultPlan::for_node("t");
        plan.add(FaultRule::new("tcp://a:1", "ping", FaultAction::Drop));
        assert_eq!(plan.decide("tcp://a:1", "ping"), Some(FaultAction::Drop));
        assert_eq!(plan.decide("tcp://b:2", "ping"), None);
        assert_eq!(plan.decide("tcp://a:1", "pong"), None);
        // endpoint filters match by substring, operations exactly
        plan.clear();
        plan.add(FaultRule::new("a:1", "*", FaultAction::Corrupt));
        assert_eq!(plan.decide("tcp://a:1", "x"), Some(FaultAction::Corrupt));
    }

    #[test]
    fn budget_limits_injections() {
        let plan = FaultPlan::for_node("t");
        plan.add(FaultRule::new("*", "*", FaultAction::Drop).budget(2));
        assert!(plan.decide("e", "o").is_some());
        assert!(plan.decide("e", "o").is_some());
        assert!(plan.decide("e", "o").is_none());
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn disabled_plans_inject_nothing() {
        let plan = FaultPlan::for_node("t");
        plan.add(FaultRule::new("*", "*", FaultAction::Drop));
        plan.set_enabled(false);
        assert!(plan.decide("e", "o").is_none());
        plan.set_enabled(true);
        assert!(plan.decide("e", "o").is_some());
    }

    #[test]
    fn probability_is_respected_roughly() {
        let plan = FaultPlan::for_node("t");
        plan.reseed(42);
        plan.add(FaultRule::new("*", "*", FaultAction::Drop).probability(0.3));
        let hits = (0..1000)
            .filter(|_| plan.decide("e", "o").is_some())
            .count();
        assert!((200..400).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn servant_scripts_the_plan() {
        let plan = Arc::new(FaultPlan::for_node("t"));
        let servant = FaultServant::new(plan.clone());
        let idx = servant
            .invoke(
                "inject",
                vec![
                    Value::from("*"),
                    Value::from("*"),
                    Value::from("error:chaos"),
                ],
            )
            .unwrap();
        assert_eq!(idx, Value::Long(0));
        assert_eq!(
            plan.decide("e", "o"),
            Some(FaultAction::Error("chaos".into()))
        );
        let listing = servant.invoke("list", vec![]).unwrap();
        assert!(matches!(&listing, Value::Seq(v) if v.len() == 1));
        servant.invoke("clear", vec![]).unwrap();
        assert_eq!(plan.decide("e", "o"), None);
        assert_eq!(servant.invoke("injected", vec![]).unwrap(), Value::Long(1));
    }
}
