//! Request interceptors — the Portable Interceptor analogue.
//!
//! The paper's Section VI: "We are integrating LuaCorba with the
//! Portable Interceptor mechanism specified by CORBA. With this
//! integration, we will be able to … use them, instead of the smart
//! proxy mechanism, to apply the adaptation strategies supported by our
//! infrastructure. The use of the CORBA interceptor mechanism will
//! allow us to plug our dynamic adaptation support into standard CORBA
//! applications." This module implements that ongoing work.
//!
//! * **Client interceptors** see every outgoing two-way request and may
//!   observe it, *redirect* it to a different object (the
//!   location-forward adaptation idiom), or *abort* it with an error.
//! * **Server interceptors** see every locally dispatched request and
//!   may observe or abort it (admission control, accounting).
//!
//! Unlike smart proxies, interceptors apply to *plain* proxies — code
//! that knows nothing about adaptation — which is exactly the paper's
//! point: adaptation plugs into standard applications.

use std::time::Instant;

use adapta_idl::Value;
use adapta_telemetry::{registry, Span};

use crate::error::OrbError;
use crate::reference::ObjRef;

/// What a client interceptor decides about an outgoing request.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Send the request unchanged.
    Proceed,
    /// Send the request to a different object (location forward).
    Redirect(ObjRef),
    /// Fail the invocation locally with this error message.
    Abort(String),
}

/// What a server interceptor decides about an incoming request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerAction {
    /// Dispatch normally.
    Proceed,
    /// Reject with an application exception.
    Abort(String),
}

/// An outgoing-request view passed to client interceptors.
#[derive(Debug)]
pub struct ClientRequestInfo<'a> {
    /// The invocation target (after earlier interceptors' redirects).
    pub target: &'a ObjRef,
    /// The operation name.
    pub operation: &'a str,
    /// The argument list.
    pub args: &'a [Value],
    /// Whether the request is oneway.
    pub oneway: bool,
}

/// An incoming-request view passed to server interceptors.
#[derive(Debug)]
pub struct ServerRequestInfo<'a> {
    /// The target object key.
    pub key: &'a str,
    /// The operation name.
    pub operation: &'a str,
    /// The argument list.
    pub args: &'a [Value],
}

/// A client-side request interceptor.
pub trait ClientInterceptor: Send + Sync {
    /// Inspects an outgoing request before it is sent.
    fn send_request(&self, info: &ClientRequestInfo<'_>) -> ClientAction;

    /// Observes the reply (or error) of a two-way request.
    fn receive_reply(&self, _info: &ClientRequestInfo<'_>, _outcome: &Result<Value, OrbError>) {}
}

/// A server-side request interceptor.
pub trait ServerInterceptor: Send + Sync {
    /// Inspects an incoming request before dispatch.
    fn receive_request(&self, info: &ServerRequestInfo<'_>) -> ServerAction;
}

/// A closure-backed client interceptor.
pub struct ClientInterceptorFn<F>(pub F);

impl<F> ClientInterceptor for ClientInterceptorFn<F>
where
    F: Fn(&ClientRequestInfo<'_>) -> ClientAction + Send + Sync,
{
    fn send_request(&self, info: &ClientRequestInfo<'_>) -> ClientAction {
        (self.0)(info)
    }
}

/// A closure-backed server interceptor.
pub struct ServerInterceptorFn<F>(pub F);

impl<F> ServerInterceptor for ServerInterceptorFn<F>
where
    F: Fn(&ServerRequestInfo<'_>) -> ServerAction + Send + Sync,
{
    fn receive_request(&self, info: &ServerRequestInfo<'_>) -> ServerAction {
        (self.0)(info)
    }
}

/// An observe-only client interceptor recording request round-trip
/// times into the telemetry registry and span collector.
///
/// At `send_request` it notes the time; at `receive_reply` it records
/// the elapsed duration into the histogram
/// `interceptor.<name>.latency`, counts
/// `interceptor.<name>.replies` / `interceptor.<name>.errors`, and
/// emits an `observe:<name>` span carrying the measured time — nested
/// under the invocation's client span, which is still active when
/// reply interceptors run.
///
/// Start times are kept per thread as a stack, so nested invocations
/// (a servant calling out mid-dispatch on the same thread) pair up
/// LIFO. Redirect rounds re-enter `send_request`, so the popped entry
/// times the request as actually sent after the final redirect.
pub struct TimingObserver {
    name: String,
    starts: std::sync::Mutex<std::collections::HashMap<std::thread::ThreadId, Vec<Instant>>>,
}

impl TimingObserver {
    /// Creates an observer publishing under `interceptor.<name>.*`.
    pub fn new(name: &str) -> TimingObserver {
        TimingObserver {
            name: name.to_string(),
            starts: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    fn stack(
        &self,
    ) -> std::sync::MutexGuard<'_, std::collections::HashMap<std::thread::ThreadId, Vec<Instant>>>
    {
        self.starts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl ClientInterceptor for TimingObserver {
    fn send_request(&self, info: &ClientRequestInfo<'_>) -> ClientAction {
        if !info.oneway {
            self.stack()
                .entry(std::thread::current().id())
                .or_default()
                .push(Instant::now());
        }
        ClientAction::Proceed
    }

    fn receive_reply(&self, info: &ClientRequestInfo<'_>, outcome: &Result<Value, OrbError>) {
        let started = {
            let mut stacks = self.stack();
            let Some(stack) = stacks.get_mut(&std::thread::current().id()) else {
                return;
            };
            // LIFO pairing: nested invocations pop their own entry
            // first. After redirects the popped entry is the one from
            // the final chain round, timing the request actually sent.
            match stack.pop() {
                Some(t) => t,
                None => return,
            }
        };
        let elapsed = started.elapsed();
        registry()
            .histogram(&format!("interceptor.{}.latency", self.name))
            .record(elapsed);
        registry()
            .counter(&format!("interceptor.{}.replies", self.name))
            .incr();
        if outcome.is_err() {
            registry()
                .counter(&format!("interceptor.{}.errors", self.name))
                .incr();
        }
        let mut span = Span::start(&format!("observe:{}", self.name));
        span.attr("operation", info.operation);
        span.attr("elapsed_us", &elapsed.as_micros().to_string());
        span.attr("ok", if outcome.is_ok() { "true" } else { "false" });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_interceptors_adapt() {
        let ci = ClientInterceptorFn(|info: &ClientRequestInfo<'_>| {
            if info.operation == "blocked" {
                ClientAction::Abort("blocked by policy".into())
            } else {
                ClientAction::Proceed
            }
        });
        let target = ObjRef::new("inproc://x", "k", "T");
        let info = ClientRequestInfo {
            target: &target,
            operation: "blocked",
            args: &[],
            oneway: false,
        };
        assert_eq!(
            ci.send_request(&info),
            ClientAction::Abort("blocked by policy".into())
        );

        let si = ServerInterceptorFn(|info: &ServerRequestInfo<'_>| {
            if info.args.len() > 2 {
                ServerAction::Abort("too many arguments".into())
            } else {
                ServerAction::Proceed
            }
        });
        let info = ServerRequestInfo {
            key: "k",
            operation: "op",
            args: &[Value::Null, Value::Null, Value::Null],
        };
        assert_eq!(
            si.receive_request(&info),
            ServerAction::Abort("too many arguments".into())
        );
    }
}
