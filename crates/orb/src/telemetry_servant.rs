//! The `_telemetry` object: the middleware exports its own
//! observability data through itself.
//!
//! Every [`Orb`](crate::Orb) activates one of these under the
//! well-known key `_telemetry`, so any peer (including Rua scripts,
//! via DII) can query a node's process for its metrics snapshot and
//! retained trace spans without side channels.

use adapta_idl::Value;
use adapta_telemetry::{collector, registry};

use crate::adapter::Servant;
use crate::error::OrbError;
use crate::OrbResult;

/// DSI servant answering telemetry queries:
///
/// | operation       | args    | result                                   |
/// |-----------------|---------|------------------------------------------|
/// | `snapshot`      | —       | metrics snapshot as a JSON object string |
/// | `snapshotText`  | —       | metrics snapshot as aligned text lines   |
/// | `traces`        | —       | retained spans as a JSON array string    |
/// | `tracesText`    | —       | retained spans as an indented trace tree |
/// | `counter`       | name    | one counter's value as a `Long`          |
/// | `gauge`         | name    | one gauge's value as a `Long`            |
#[derive(Debug, Default)]
pub struct TelemetryServant;

impl TelemetryServant {
    /// Creates the servant.
    pub fn new() -> TelemetryServant {
        TelemetryServant
    }
}

impl Servant for TelemetryServant {
    fn interface(&self) -> &str {
        "Telemetry"
    }

    fn invoke(&self, op: &str, args: Vec<Value>) -> OrbResult<Value> {
        let name_arg = || {
            args.first()
                .and_then(Value::as_str)
                .ok_or_else(|| OrbError::exception("expected an instrument name argument"))
        };
        match op {
            "snapshot" => Ok(Value::from(registry().snapshot().to_json())),
            "snapshotText" => Ok(Value::from(registry().snapshot().to_text())),
            "traces" => Ok(Value::from(collector().export_json())),
            "tracesText" => Ok(Value::from(collector().export_text())),
            "counter" => {
                let name = name_arg()?;
                let snap = registry().snapshot();
                let value = snap
                    .counter(name)
                    .ok_or_else(|| OrbError::exception(format!("no counter named `{name}`")))?;
                Ok(Value::Long(value as i64))
            }
            "gauge" => {
                let name = name_arg()?;
                let snap = registry().snapshot();
                let value = snap
                    .gauge(name)
                    .ok_or_else(|| OrbError::exception(format!("no gauge named `{name}`")))?;
                Ok(Value::Long(value))
            }
            other => Err(OrbError::unknown_operation("Telemetry", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_counter_queries_answer() {
        adapta_telemetry::registry()
            .counter("test.telemetry_servant.hits")
            .add(5);
        let servant = TelemetryServant::new();
        let json = servant.invoke("snapshot", vec![]).unwrap();
        assert!(json
            .as_str()
            .unwrap()
            .contains("\"test.telemetry_servant.hits\":5"));
        let value = servant
            .invoke("counter", vec![Value::from("test.telemetry_servant.hits")])
            .unwrap();
        assert_eq!(value, Value::Long(5));
        assert!(servant
            .invoke("counter", vec![Value::from("test.telemetry_servant.nope")])
            .is_err());
        assert!(servant.invoke("bogus", vec![]).is_err());
    }
}
