//! Broker errors.

use std::error::Error;
use std::fmt;

use adapta_idl::IdlError;

/// Errors raised by broker operations.
#[derive(Debug, Clone, PartialEq)]
pub enum OrbError {
    /// Interface/type-system error (unknown operation, bad arguments…).
    Idl(IdlError),
    /// No servant is active under the object key.
    ObjectNotFound {
        /// The missing key.
        key: String,
    },
    /// The endpoint does not name a reachable node.
    NodeUnreachable {
        /// The endpoint that failed to resolve.
        endpoint: String,
    },
    /// A malformed wire message.
    Marshal(String),
    /// A transport-level failure (connection refused, broken pipe…).
    Transport(String),
    /// A per-call deadline elapsed before the reply arrived. Only the
    /// matching call fails; the pooled connection stays usable.
    DeadlineExpired {
        /// The deadline that elapsed.
        after: std::time::Duration,
    },
    /// The remote servant raised an application exception.
    RemoteException {
        /// Exception text from the servant.
        message: String,
    },
    /// A name was not found in a naming context.
    NameNotFound {
        /// The unresolved name.
        name: String,
    },
    /// The broker is draining and no longer accepts requests. Raised on
    /// callers blocked against a node that entered [`Orb::shutdown`]; the
    /// call never started executing, so retrying elsewhere is safe.
    ///
    /// [`Orb::shutdown`]: crate::Orb::shutdown
    ShuttingDown,
    /// The server shed the request before executing it: its pending-job
    /// queue or global in-flight cap was full (see
    /// [`OrbOptions`](crate::OrbOptions)). The call never started, so
    /// retrying (with backoff) is always safe.
    TransientOverload,
}

impl OrbError {
    /// Convenience constructor for servants rejecting an operation.
    pub fn unknown_operation(interface: &str, operation: &str) -> Self {
        OrbError::Idl(IdlError::UnknownOperation {
            interface: interface.to_owned(),
            operation: operation.to_owned(),
        })
    }

    /// Convenience constructor for application-level exceptions.
    pub fn exception(message: impl Into<String>) -> Self {
        OrbError::RemoteException {
            message: message.into(),
        }
    }

    /// Whether a failed call may be safely reissued (to the same target
    /// or another one). Retry, circuit breaking, and smart-proxy failover
    /// all consult this one taxonomy:
    ///
    /// * **retryable** — the failure is environmental and at-most-once
    ///   delivery was not compromised in a way the caller can detect:
    ///   transport faults, unreachable nodes, missing servants (the
    ///   component moved or crashed), expired deadlines, nodes that
    ///   refused the request because they are shutting down, and
    ///   requests shed by an overloaded server before execution;
    /// * **not retryable** — the request itself is bad (IDL or
    ///   marshalling errors, unresolved names) or the servant *executed*
    ///   and raised an application exception: reissuing would either fail
    ///   identically or run a non-idempotent operation twice.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            OrbError::Transport(_)
                | OrbError::NodeUnreachable { .. }
                | OrbError::ObjectNotFound { .. }
                | OrbError::DeadlineExpired { .. }
                | OrbError::ShuttingDown
                | OrbError::TransientOverload
        )
    }
}

impl fmt::Display for OrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrbError::Idl(e) => write!(f, "{e}"),
            OrbError::ObjectNotFound { key } => write!(f, "no object under key `{key}`"),
            OrbError::NodeUnreachable { endpoint } => {
                write!(f, "endpoint `{endpoint}` is unreachable")
            }
            OrbError::Marshal(m) => write!(f, "marshalling error: {m}"),
            OrbError::Transport(m) => write!(f, "transport error: {m}"),
            OrbError::DeadlineExpired { after } => {
                write!(f, "deadline of {after:?} expired before the reply arrived")
            }
            OrbError::RemoteException { message } => {
                write!(f, "remote exception: {message}")
            }
            OrbError::NameNotFound { name } => write!(f, "name `{name}` not bound"),
            OrbError::ShuttingDown => write!(f, "orb is shutting down"),
            OrbError::TransientOverload => write!(f, "server overloaded; retry later"),
        }
    }
}

impl Error for OrbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OrbError::Idl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IdlError> for OrbError {
    fn from(e: IdlError) -> Self {
        OrbError::Idl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OrbError::ObjectNotFound { key: "k1".into() }
            .to_string()
            .contains("k1"));
        assert!(OrbError::exception("bad state")
            .to_string()
            .contains("bad state"));
        assert!(OrbError::unknown_operation("I", "op")
            .to_string()
            .contains("op"));
    }

    #[test]
    fn retryability_taxonomy() {
        assert!(OrbError::Transport("broken pipe".into()).is_retryable());
        assert!(OrbError::NodeUnreachable {
            endpoint: "tcp://x:1".into()
        }
        .is_retryable());
        assert!(OrbError::ObjectNotFound { key: "k".into() }.is_retryable());
        assert!(OrbError::DeadlineExpired {
            after: std::time::Duration::from_millis(5)
        }
        .is_retryable());
        assert!(OrbError::ShuttingDown.is_retryable());
        assert!(OrbError::TransientOverload.is_retryable());

        assert!(!OrbError::exception("app failed").is_retryable());
        assert!(!OrbError::Marshal("bad tag".into()).is_retryable());
        assert!(!OrbError::NameNotFound { name: "n".into() }.is_retryable());
        assert!(!OrbError::unknown_operation("I", "op").is_retryable());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<OrbError>();
    }
}
