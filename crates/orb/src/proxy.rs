//! Client-side proxies and dynamic requests — the DII analogue.

use adapta_idl::Value;

use crate::orb::{InvokeOptions, Orb};
use crate::reference::ObjRef;
use crate::OrbResult;

/// A client-side representative of a remote object.
///
/// Like a LuaCorba proxy, a `Proxy` carries no compiled stub: operations
/// are named at run time and argument lists are assembled dynamically.
///
/// ```no_run
/// # use adapta_orb::{Orb, ObjRef};
/// # use adapta_idl::Value;
/// # fn demo(orb: &Orb, target: &ObjRef) -> adapta_orb::OrbResult<()> {
/// let proxy = orb.proxy(target);
/// let value = proxy.invoke("getValue", vec![])?;
/// proxy.request("setValue").arg(value).invoke()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Proxy {
    orb: Orb,
    target: ObjRef,
}

impl Proxy {
    pub(crate) fn new(orb: Orb, target: ObjRef) -> Self {
        Proxy { orb, target }
    }

    /// The reference this proxy denotes.
    pub fn target(&self) -> &ObjRef {
        &self.target
    }

    /// The interface (repository id) claimed by the reference.
    pub fn type_id(&self) -> &str {
        &self.target.type_id
    }

    /// The orb this proxy invokes through.
    pub fn orb(&self) -> &Orb {
        &self.orb
    }

    /// Invokes a two-way operation.
    ///
    /// # Errors
    ///
    /// Transport errors or the servant's exception.
    pub fn invoke(&self, op: &str, args: Vec<Value>) -> OrbResult<Value> {
        self.orb.invoke_ref(&self.target, op, args)
    }

    /// Invokes a two-way operation with explicit per-call options
    /// (for example a deadline).
    ///
    /// # Errors
    ///
    /// As [`invoke`](Self::invoke), plus
    /// [`OrbError::DeadlineExpired`](crate::OrbError::DeadlineExpired)
    /// when the reply misses the deadline.
    pub fn invoke_with(&self, op: &str, args: Vec<Value>, opts: InvokeOptions) -> OrbResult<Value> {
        self.orb.invoke_ref_with(&self.target, op, args, opts)
    }

    /// Invokes a oneway operation (fire and forget).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn invoke_oneway(&self, op: &str, args: Vec<Value>) -> OrbResult<()> {
        self.orb.invoke_oneway_ref(&self.target, op, args)
    }

    /// Starts building a dynamic request for `op`.
    pub fn request(&self, op: &str) -> Request<'_> {
        Request {
            proxy: self,
            op: op.to_owned(),
            args: Vec::new(),
            opts: InvokeOptions::default(),
        }
    }
}

/// A dynamically-assembled invocation (argument list built on the fly).
#[derive(Debug)]
pub struct Request<'a> {
    proxy: &'a Proxy,
    op: String,
    args: Vec<Value>,
    opts: InvokeOptions,
}

impl Request<'_> {
    /// Appends an argument.
    pub fn arg(mut self, value: impl Into<Value>) -> Self {
        self.args.push(value.into());
        self
    }

    /// Sets a per-call deadline (two-way invocations only).
    pub fn deadline(mut self, deadline: std::time::Duration) -> Self {
        self.opts = self.opts.deadline(deadline);
        self
    }

    /// Invokes two-way and returns the result.
    ///
    /// # Errors
    ///
    /// As [`Proxy::invoke_with`].
    pub fn invoke(self) -> OrbResult<Value> {
        self.proxy.invoke_with(&self.op, self.args, self.opts)
    }

    /// Sends as a oneway invocation.
    ///
    /// # Errors
    ///
    /// As [`Proxy::invoke_oneway`].
    pub fn send_oneway(self) -> OrbResult<()> {
        self.proxy.invoke_oneway(&self.op, self.args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::ServantFn;

    #[test]
    fn request_builder_assembles_args() {
        let server = Orb::new("t-proxy-server");
        let objref = server
            .activate(
                "sum",
                ServantFn::new("Adder", |_, args| {
                    let total: i64 = args.iter().filter_map(Value::as_long).sum();
                    Ok(Value::Long(total))
                }),
            )
            .unwrap();
        let client = Orb::new("t-proxy-client");
        let proxy = client.proxy(&objref);
        let out = proxy
            .request("add")
            .arg(1i64)
            .arg(2i64)
            .arg(39i64)
            .invoke()
            .unwrap();
        assert_eq!(out, Value::Long(42));
        assert_eq!(proxy.type_id(), "Adder");
        proxy.request("add").arg(1i64).send_oneway().unwrap();
    }
}
