//! The broker facade: node registry, invocation routing and statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use adapta_idl::Value;
use adapta_telemetry::{registry, Counter, Span, SpanId, TraceId, SPAN_ID_KEY, TRACE_ID_KEY};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};

use crate::adapter::{ObjectAdapter, Servant};
use crate::error::OrbError;
use crate::fault::{FaultAction, FaultPlan, FaultServant};
use crate::interceptor::{
    ClientAction, ClientInterceptor, ClientRequestInfo, ServerAction, ServerInterceptor,
    ServerRequestInfo,
};
use crate::message::{Message, ReplyBody, RequestBody, ServiceContext};
use crate::naming::NamingServant;
use crate::proxy::Proxy;
use crate::reference::ObjRef;
use crate::telemetry_servant::TelemetryServant;
use crate::transport;
use crate::OrbResult;

/// Process-wide registry of live broker nodes, keyed by node name.
/// In-process invocation resolves `inproc://<node>` endpoints here.
fn nodes() -> &'static StdMutex<HashMap<String, Weak<OrbCore>>> {
    static NODES: OnceLock<StdMutex<HashMap<String, Weak<OrbCore>>>> = OnceLock::new();
    NODES.get_or_init(|| StdMutex::new(HashMap::new()))
}

fn lookup_node(node: &str) -> Option<Arc<OrbCore>> {
    nodes()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(node)
        .and_then(Weak::upgrade)
}

/// One statistics counter, backed by the telemetry registry under
/// `orb.<node>.<stat>` so snapshots see every node's traffic. The
/// baseline makes [`Orb::stats`] start from zero per orb instance even
/// when a node name (and thus a registry counter) is reused after a
/// previous orb dropped.
#[derive(Debug)]
struct StatCell {
    counter: Counter,
    baseline: u64,
}

impl StatCell {
    fn new(node: &str, stat: &str) -> StatCell {
        let counter = registry().counter(&format!("orb.{node}.{stat}"));
        let baseline = counter.value();
        StatCell { counter, baseline }
    }

    fn incr(&self) {
        self.counter.incr();
    }

    fn add(&self, n: u64) {
        self.counter.add(n);
    }

    fn value(&self) -> u64 {
        self.counter.value() - self.baseline
    }
}

#[derive(Debug)]
struct StatCells {
    requests_sent: StatCell,
    oneways_sent: StatCell,
    replies_received: StatCell,
    requests_served: StatCell,
    bytes_sent: StatCell,
    bytes_received: StatCell,
}

impl StatCells {
    fn for_node(node: &str) -> StatCells {
        StatCells {
            requests_sent: StatCell::new(node, "requests_sent"),
            oneways_sent: StatCell::new(node, "oneways_sent"),
            replies_received: StatCell::new(node, "replies_received"),
            requests_served: StatCell::new(node, "requests_served"),
            bytes_sent: StatCell::new(node, "bytes_sent"),
            bytes_received: StatCell::new(node, "bytes_received"),
        }
    }
}

/// A snapshot of a broker's message counters.
///
/// The monitoring experiments (event push vs. polling, remote evaluation
/// vs. value streaming) are quantified with these counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrbStats {
    /// Two-way requests sent by this node.
    pub requests_sent: u64,
    /// Oneway requests sent by this node.
    pub oneways_sent: u64,
    /// Replies received by this node.
    pub replies_received: u64,
    /// Invocations dispatched to local servants.
    pub requests_served: u64,
    /// Message bytes sent.
    pub bytes_sent: u64,
    /// Message bytes received.
    pub bytes_received: u64,
}

impl OrbStats {
    /// Total messages sent (requests + oneways).
    pub fn messages_sent(&self) -> u64 {
        self.requests_sent + self.oneways_sent
    }
}

/// Per-invocation options for [`Orb::invoke_ref_with`] (and the
/// [`Request`](crate::Request) builder).
///
/// Today this carries the per-call deadline: how long the client waits
/// for the reply before failing *this call only* with
/// [`OrbError::DeadlineExpired`]. On the multiplexed TCP transport an
/// expired deadline abandons just the matching pending-reply entry —
/// the pooled connection and every other in-flight call stay healthy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvokeOptions {
    deadline: Option<std::time::Duration>,
}

impl InvokeOptions {
    /// Options with every field at its default (30 s deadline backstop).
    pub fn new() -> InvokeOptions {
        InvokeOptions::default()
    }

    /// Sets the per-call deadline.
    pub fn deadline(mut self, deadline: std::time::Duration) -> InvokeOptions {
        self.deadline = Some(deadline);
        self
    }

    /// The effective deadline: the explicit one, or the transport's
    /// 30-second liveness backstop.
    pub fn effective_deadline(&self) -> std::time::Duration {
        self.deadline.unwrap_or(transport::tcp::DEFAULT_DEADLINE)
    }
}

/// Node-level tuning knobs, fixed at construction
/// ([`Orb::with_options`]). [`Orb::new`] uses the defaults.
///
/// The three admission-control bounds protect a server from request
/// storms: work beyond them is *shed* with the retryable
/// [`OrbError::TransientOverload`] instead of queueing without limit,
/// so well-behaved clients (smart-proxy retry with backoff) absorb the
/// pushback while the server keeps serving at its capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrbOptions {
    /// Maximum dispatch workers per server-side TCP connection
    /// (default 32). Above it, accepted jobs wait in the connection's
    /// queue.
    pub max_conn_workers: usize,
    /// Bound on each server-side TCP connection's pending-job queue
    /// (default 256). Jobs arriving beyond it are shed.
    pub max_conn_queue: usize,
    /// Global cap on dispatches executing or queued node-wide, across
    /// all transports (default 4096). Admissions beyond it are shed.
    pub max_inflight: u64,
}

impl Default for OrbOptions {
    fn default() -> Self {
        OrbOptions {
            max_conn_workers: 32,
            max_conn_queue: 256,
            max_inflight: 4096,
        }
    }
}

impl OrbOptions {
    /// Options with every field at its default.
    pub fn new() -> OrbOptions {
        OrbOptions::default()
    }

    /// Sets the per-connection worker cap.
    pub fn max_conn_workers(mut self, n: usize) -> OrbOptions {
        self.max_conn_workers = n.max(1);
        self
    }

    /// Sets the per-connection pending-job queue bound.
    pub fn max_conn_queue(mut self, n: usize) -> OrbOptions {
        self.max_conn_queue = n.max(1);
        self
    }

    /// Sets the node-wide in-flight dispatch cap.
    pub fn max_inflight(mut self, n: u64) -> OrbOptions {
        self.max_inflight = n.max(1);
        self
    }
}

/// What the node decided about one inbound dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DispatchDecision {
    /// Admitted; the caller must pair it with `end_dispatch`.
    Admitted,
    /// Refused: the node is draining ([`OrbError::ShuttingDown`]).
    ShuttingDown,
    /// Shed: the node-wide in-flight cap is full
    /// ([`OrbError::TransientOverload`]).
    Overloaded,
}

/// The node's lifecycle, driving [`Orb::shutdown`].
///
/// `RUNNING → DRAINING → STOPPED`, one way only. DRAINING refuses new
/// *inbound* dispatches (callers get a retryable
/// [`OrbError::ShuttingDown`]) while accepted ones finish and outbound
/// invocations still work — so shutdown hooks can withdraw trader
/// offers. STOPPED additionally refuses outbound routing and tears
/// down pooled connections, waking any caller still blocked on a reply.
#[derive(Debug)]
struct Lifecycle {
    state: AtomicU8,
    /// Dispatches accepted and not yet fully replied.
    inflight: AtomicU64,
    drain_lock: StdMutex<()>,
    drained: Condvar,
}

const LIFECYCLE_RUNNING: u8 = 0;
const LIFECYCLE_DRAINING: u8 = 1;
const LIFECYCLE_STOPPED: u8 = 2;

impl Lifecycle {
    fn new() -> Lifecycle {
        Lifecycle {
            state: AtomicU8::new(LIFECYCLE_RUNNING),
            inflight: AtomicU64::new(0),
            drain_lock: StdMutex::new(()),
            drained: Condvar::new(),
        }
    }
}

pub(crate) struct OrbCore {
    pub(crate) node: String,
    pub(crate) adapter: ObjectAdapter,
    stats: StatCells,
    pub(crate) tcp_addr: RwLock<Option<String>>,
    sync_oneway: AtomicBool,
    oneway_tx: Mutex<Option<Sender<RequestBody>>>,
    next_id: AtomicU64,
    pub(crate) tcp_pool: Mutex<HashMap<String, Arc<transport::tcp::MuxConnection>>>,
    client_interceptors: RwLock<Vec<Arc<dyn ClientInterceptor>>>,
    server_interceptors: RwLock<Vec<Arc<dyn ServerInterceptor>>>,
    faults: Arc<FaultPlan>,
    lifecycle: Lifecycle,
    shutdown_hooks: Mutex<Vec<Box<dyn FnOnce() + Send>>>,
    pub(crate) options: OrbOptions,
}

impl std::fmt::Debug for OrbCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrbCore")
            .field("node", &self.node)
            .field("adapter", &self.adapter)
            .finish_non_exhaustive()
    }
}

impl OrbCore {
    /// Admits one inbound dispatch, or refuses it (after undoing the
    /// reservation) when the node is draining or its in-flight cap is
    /// full; the transport answers a refusal with the matching
    /// retryable error ([`OrbError::ShuttingDown`] /
    /// [`OrbError::TransientOverload`]).
    ///
    /// The count is raised *before* re-checking the state so a
    /// concurrent [`Orb::shutdown`] either sees this dispatch in the
    /// inflight count or this dispatch sees the drained state — never
    /// neither.
    pub(crate) fn begin_dispatch(&self) -> DispatchDecision {
        let prior = self.lifecycle.inflight.fetch_add(1, Ordering::AcqRel);
        if self.lifecycle.state.load(Ordering::Acquire) != LIFECYCLE_RUNNING {
            self.end_dispatch();
            return DispatchDecision::ShuttingDown;
        }
        if prior >= self.options.max_inflight {
            self.end_dispatch();
            registry()
                .counter(&format!("orb.{}.shed", self.node))
                .incr();
            return DispatchDecision::Overloaded;
        }
        DispatchDecision::Admitted
    }

    /// Retires one dispatch admitted by [`begin_dispatch`]; called only
    /// after its reply (if any) has been flushed to the transport.
    ///
    /// [`begin_dispatch`]: Self::begin_dispatch
    pub(crate) fn end_dispatch(&self) {
        if self.lifecycle.inflight.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self
                .lifecycle
                .drain_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.lifecycle.drained.notify_all();
        }
    }

    pub(crate) fn is_running(&self) -> bool {
        self.lifecycle.state.load(Ordering::Acquire) == LIFECYCLE_RUNNING
    }

    fn is_stopped(&self) -> bool {
        self.lifecycle.state.load(Ordering::Acquire) == LIFECYCLE_STOPPED
    }

    /// Blocks until the inflight count reaches zero or `deadline`
    /// elapses; returns whether the node fully drained.
    fn wait_drained(&self, deadline: Duration) -> bool {
        let started = Instant::now();
        let mut guard = self
            .lifecycle
            .drain_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while self.lifecycle.inflight.load(Ordering::Acquire) > 0 {
            let Some(remaining) = deadline.checked_sub(started.elapsed()) else {
                return false;
            };
            // Short waits guard against a notify racing the count check.
            let wait = remaining.min(Duration::from_millis(25));
            let (g, _) = self
                .lifecycle
                .drained
                .wait_timeout(guard, wait)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
        true
    }

    pub(crate) fn count_bytes_in(&self, n: usize) {
        self.stats.bytes_received.add(n as u64);
    }

    pub(crate) fn count_bytes_out(&self, n: usize) {
        self.stats.bytes_sent.add(n as u64);
    }

    pub(crate) fn count_served(&self) {
        self.stats.requests_served.incr();
    }

    /// Server-side dispatch of a decoded request (through the server
    /// interceptor chain).
    ///
    /// Dispatch runs under a `server:<op>` span. When the request's
    /// service context carries trace ids, the span joins that trace —
    /// so a client invocation and its remote dispatch share one
    /// `TraceId` even across TCP. Per-operation latency and error
    /// counts land in the registry under `orb.server.op.<op>.*`.
    pub(crate) fn serve(&self, body: RequestBody) -> ReplyBody {
        self.count_served();
        let remote_trace = body.context.get(TRACE_ID_KEY).and_then(TraceId::from_hex);
        let parent = body.context.get(SPAN_ID_KEY).and_then(SpanId::from_hex);
        let mut span = match remote_trace {
            Some(trace) => Span::child_of(&format!("server:{}", body.operation), trace, parent),
            None => Span::start(&format!("server:{}", body.operation)),
        };
        span.attr("node", &self.node);
        span.attr("key", &body.key);
        let latency = registry().histogram(&format!("orb.server.op.{}.latency", body.operation));
        let started = std::time::Instant::now();
        let reply = self.serve_inner(body);
        latency.record(started.elapsed());
        if let Err(message) = &reply.outcome {
            span.attr("error", message);
        }
        reply
    }

    fn serve_inner(&self, body: RequestBody) -> ReplyBody {
        let interceptors = self.server_interceptors.read().clone();
        for interceptor in &interceptors {
            let info = ServerRequestInfo {
                key: &body.key,
                operation: &body.operation,
                args: &body.args,
            };
            if let ServerAction::Abort(message) = interceptor.receive_request(&info) {
                registry()
                    .counter(&format!("orb.server.op.{}.errors", body.operation))
                    .incr();
                return ReplyBody {
                    id: body.id,
                    outcome: Err(format!("remote exception: {message}")),
                };
            }
        }
        // CORBA-style standard pseudo-operations, answered by the
        // broker itself so they work for every object (and for absent
        // ones, in the case of `_non_existent`).
        let outcome = match body.operation.as_str() {
            "_non_existent" => Ok(Value::Bool(self.adapter.find(&body.key).is_none())),
            "_interface" => match self.adapter.find(&body.key) {
                Some(servant) => Ok(Value::from(servant.interface())),
                None => Err(OrbError::ObjectNotFound {
                    key: body.key.clone(),
                }
                .to_string()),
            },
            "_is_a" => match self.adapter.find(&body.key) {
                Some(servant) => {
                    let asked = body.args.first().and_then(Value::as_str).unwrap_or("");
                    Ok(Value::Bool(servant.interface() == asked))
                }
                None => Err(OrbError::ObjectNotFound {
                    key: body.key.clone(),
                }
                .to_string()),
            },
            _ => self
                .adapter
                .dispatch(&body.key, &body.operation, body.args)
                .map_err(|e| e.to_string()),
        };
        if outcome.is_err() {
            registry()
                .counter(&format!("orb.server.op.{}.errors", body.operation))
                .incr();
        }
        ReplyBody {
            id: body.id,
            outcome,
        }
    }

    /// Enqueues a oneway request for asynchronous local execution. A
    /// draining node silently discards it (oneways are fire-and-forget);
    /// accepted ones count as in-flight until served, so
    /// [`Orb::shutdown`] drains the oneway queue too.
    fn enqueue_oneway(self: &Arc<Self>, body: RequestBody) {
        // Oneways are fire-and-forget: a refusal (draining or overload)
        // silently discards; the overload shed is counted either way.
        if self.begin_dispatch() != DispatchDecision::Admitted {
            return;
        }
        if self.sync_oneway.load(Ordering::Relaxed) {
            let _ = self.serve(body);
            self.end_dispatch();
            return;
        }
        let mut guard = self.oneway_tx.lock();
        if guard.is_none() {
            let (tx, rx) = unbounded::<RequestBody>();
            let weak = Arc::downgrade(self);
            std::thread::Builder::new()
                .name(format!("{}-oneway", self.node))
                .spawn(move || {
                    while let Ok(body) = rx.recv() {
                        let Some(core) = weak.upgrade() else { break };
                        let _ = core.serve(body);
                        core.end_dispatch();
                    }
                })
                .expect("spawn oneway executor");
            *guard = Some(tx);
        }
        if let Some(tx) = guard.as_ref() {
            let _ = tx.send(body);
        }
    }
}

/// A broker node: an object adapter plus transports, cheaply cloneable.
///
/// Each `Orb` has a unique node name; `inproc://<node>` endpoints route
/// between orbs of the same process through full marshalling (so
/// in-process measurements reflect real serialisation costs), and
/// `tcp://host:port` endpoints route between processes.
///
/// See the [crate docs](crate) for a full example.
#[derive(Debug, Clone)]
pub struct Orb {
    core: Arc<OrbCore>,
}

impl Orb {
    /// Creates a broker node. If `node` is taken by a live orb in this
    /// process, a numeric suffix is appended (check
    /// [`node_name`](Self::node_name) for the actual name).
    pub fn new(node: &str) -> Orb {
        Orb::with_options(node, OrbOptions::default())
    }

    /// Creates a broker node with explicit [`OrbOptions`] (admission
    /// bounds, per-connection worker cap).
    pub fn with_options(node: &str, options: OrbOptions) -> Orb {
        let mut registry = nodes().lock().unwrap_or_else(|e| e.into_inner());
        let mut name = node.to_owned();
        let mut n = 1;
        while registry.get(&name).is_some_and(|w| w.strong_count() > 0) {
            n += 1;
            name = format!("{node}-{n}");
        }
        let core = Arc::new(OrbCore {
            node: name.clone(),
            adapter: ObjectAdapter::new(),
            stats: StatCells::for_node(&name),
            tcp_addr: RwLock::new(None),
            sync_oneway: AtomicBool::new(false),
            oneway_tx: Mutex::new(None),
            next_id: AtomicU64::new(1),
            tcp_pool: Mutex::new(HashMap::new()),
            client_interceptors: RwLock::new(Vec::new()),
            server_interceptors: RwLock::new(Vec::new()),
            faults: Arc::new(FaultPlan::for_node(&name)),
            lifecycle: Lifecycle::new(),
            shutdown_hooks: Mutex::new(Vec::new()),
            options,
        });
        registry.insert(name, Arc::downgrade(&core));
        drop(registry);
        let orb = Orb { core };
        // Every node hosts a naming context for bootstrap references.
        orb.core
            .adapter
            .activate("_naming", Arc::new(NamingServant::new()))
            .expect("naming servant on fresh adapter");
        // ... and a telemetry object exporting the process's metrics
        // snapshot and trace buffer through the broker itself.
        orb.core
            .adapter
            .activate("_telemetry", Arc::new(TelemetryServant::new()))
            .expect("telemetry servant on fresh adapter");
        // ... and a fault-injection object so chaos plans can be
        // scripted remotely over the broker itself.
        orb.core
            .adapter
            .activate(
                "_faults",
                Arc::new(FaultServant::new(orb.core.faults.clone())),
            )
            .expect("fault servant on fresh adapter");
        orb
    }

    /// The node's actual (unique) name.
    pub fn node_name(&self) -> &str {
        &self.core.node
    }

    /// The options this node was built with.
    pub fn options(&self) -> OrbOptions {
        self.core.options
    }

    /// The preferred endpoint for references exported by this node:
    /// the TCP endpoint when listening, otherwise `inproc://<node>`.
    pub fn endpoint(&self) -> String {
        match self.core.tcp_addr.read().as_ref() {
            Some(addr) => format!("tcp://{addr}"),
            None => format!("inproc://{}", self.core.node),
        }
    }

    /// Message counters so far (this orb instance; the telemetry
    /// registry additionally keeps per-node-name lifetime totals under
    /// `orb.<node>.*`).
    pub fn stats(&self) -> OrbStats {
        let s = &self.core.stats;
        OrbStats {
            requests_sent: s.requests_sent.value(),
            oneways_sent: s.oneways_sent.value(),
            replies_received: s.replies_received.value(),
            requests_served: s.requests_served.value(),
            bytes_sent: s.bytes_sent.value(),
            bytes_received: s.bytes_received.value(),
        }
    }

    /// Makes locally-delivered oneway invocations run synchronously in
    /// the caller's thread — used by deterministic tests and simulations.
    pub fn set_synchronous_oneway(&self, on: bool) {
        self.core.sync_oneway.store(on, Ordering::Relaxed);
    }

    // ---- chaos and lifecycle ------------------------------------------

    /// This node's fault-injection plan (see [`FaultPlan`]). Empty by
    /// default; rules added here (or remotely via the node's `_faults`
    /// object) apply to every *outgoing* message of this node, on both
    /// the in-process and the TCP transport.
    pub fn fault_plan(&self) -> Arc<FaultPlan> {
        self.core.faults.clone()
    }

    /// Registers a hook that runs during [`shutdown`](Self::shutdown),
    /// after in-flight dispatches drain but while outbound invocations
    /// still work — the slot where a node withdraws its trader offers.
    pub fn on_shutdown(&self, hook: impl FnOnce() + Send + 'static) {
        self.core.shutdown_hooks.lock().push(Box::new(hook));
    }

    /// Whether [`shutdown`](Self::shutdown) has begun.
    pub fn is_shutting_down(&self) -> bool {
        !self.core.is_running()
    }

    /// Gracefully shuts the node down:
    ///
    /// 1. stops accepting — the TCP accept loop exits and new inbound
    ///    dispatches (TCP or in-process) are refused with a retryable
    ///    [`OrbError::ShuttingDown`], waking blocked callers;
    /// 2. drains — waits up to `deadline` for every accepted dispatch
    ///    (including queued oneways) to finish and flush its reply;
    /// 3. runs [`on_shutdown`](Self::on_shutdown) hooks while outbound
    ///    invocations still work, so offers can be withdrawn from
    ///    remote traders;
    /// 4. stops routing — outgoing invocations fail with
    ///    [`OrbError::ShuttingDown`] and pooled client connections are
    ///    torn down, waking any caller still awaiting a reply.
    ///
    /// Returns whether the node fully drained within `deadline`. Safe
    /// to call more than once; must not be called from a servant of
    /// this same node (the drain would wait on its own caller).
    pub fn shutdown(&self, deadline: Duration) -> bool {
        let lifecycle = &self.core.lifecycle;
        if lifecycle
            .state
            .compare_exchange(
                LIFECYCLE_RUNNING,
                LIFECYCLE_DRAINING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
            && self.core.is_stopped()
        {
            return true;
        }
        let drained = self.core.wait_drained(deadline);
        let hooks = std::mem::take(&mut *self.core.shutdown_hooks.lock());
        for hook in hooks {
            hook();
        }
        lifecycle.state.store(LIFECYCLE_STOPPED, Ordering::Release);
        // Tear down pooled client connections: their reader threads exit
        // and every local caller still blocked on a reply is woken with
        // a retryable error.
        let pool: Vec<_> = self.core.tcp_pool.lock().drain().collect();
        for (_, conn) in pool {
            conn.kill("orb is shutting down");
        }
        *self.core.tcp_addr.write() = None;
        drained
    }

    /// Starts a TCP listener; returns the full endpoint (`tcp://…`).
    /// Pass `"127.0.0.1:0"` to pick a free port.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::Transport`] when binding fails.
    pub fn listen_tcp(&self, addr: &str) -> OrbResult<String> {
        let bound = transport::tcp::listen(&self.core, addr)?;
        *self.core.tcp_addr.write() = Some(bound.to_string());
        Ok(format!("tcp://{bound}"))
    }

    /// Activates a servant under `key`; returns its reference.
    ///
    /// # Errors
    ///
    /// Returns an error if the key is in use.
    pub fn activate(&self, key: &str, servant: impl Servant + 'static) -> OrbResult<ObjRef> {
        self.activate_arc(key, Arc::new(servant))
    }

    /// Activates a shared servant under `key`; returns its reference.
    ///
    /// # Errors
    ///
    /// Returns an error if the key is in use.
    pub fn activate_arc(&self, key: &str, servant: Arc<dyn Servant>) -> OrbResult<ObjRef> {
        let type_id = servant.interface().to_owned();
        self.core.adapter.activate(key, servant)?;
        Ok(ObjRef::new(self.endpoint(), key, type_id))
    }

    /// Activates a servant under a generated key; returns its reference.
    pub fn activate_auto(&self, servant: impl Servant + 'static) -> ObjRef {
        let servant: Arc<dyn Servant> = Arc::new(servant);
        let type_id = servant.interface().to_owned();
        let key = self.core.adapter.activate_auto(servant);
        ObjRef::new(self.endpoint(), key, type_id)
    }

    /// Deactivates the servant under `key`; returns whether one existed.
    pub fn deactivate(&self, key: &str) -> bool {
        self.core.adapter.deactivate(key)
    }

    /// The local object adapter.
    pub fn adapter(&self) -> &ObjectAdapter {
        &self.core.adapter
    }

    /// Builds a reference to a locally-activated object.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::ObjectNotFound`] if nothing is active under
    /// `key`.
    pub fn object_ref(&self, key: &str) -> OrbResult<ObjRef> {
        let servant = self
            .core
            .adapter
            .find(key)
            .ok_or_else(|| OrbError::ObjectNotFound {
                key: key.to_owned(),
            })?;
        Ok(ObjRef::new(
            self.endpoint(),
            key,
            servant.interface().to_owned(),
        ))
    }

    /// Creates a client proxy for a reference (the DII entry point).
    pub fn proxy(&self, target: &ObjRef) -> Proxy {
        Proxy::new(self.clone(), target.clone())
    }

    /// Parses a stringified reference and creates a proxy for it.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::Marshal`] on malformed reference strings.
    pub fn proxy_from_uri(&self, uri: &str) -> OrbResult<Proxy> {
        let data = ObjRef::from_uri(uri)
            .ok_or_else(|| OrbError::Marshal(format!("bad object reference `{uri}`")))?;
        Ok(self.proxy(&data))
    }

    // ---- naming ------------------------------------------------------

    /// Binds `name → target` in this node's naming context.
    ///
    /// # Errors
    ///
    /// Propagates servant errors.
    pub fn bind_name(&self, name: &str, target: &ObjRef) -> OrbResult<()> {
        self.core.adapter.dispatch(
            "_naming",
            "bind",
            vec![Value::from(name), Value::ObjRef(target.clone())],
        )?;
        Ok(())
    }

    /// Resolves `name` in the naming context at `endpoint` (or locally
    /// when `endpoint` is this node's).
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::NameNotFound`] when unbound, or transport
    /// errors.
    pub fn resolve_name(&self, endpoint: &str, name: &str) -> OrbResult<ObjRef> {
        let target = ObjRef::new(endpoint, "_naming", "NamingContext");
        let reply = self.invoke_ref(&target, "resolve", vec![Value::from(name)]);
        match reply {
            Ok(Value::ObjRef(data)) => Ok(data),
            Ok(other) => Err(OrbError::Marshal(format!(
                "naming context returned {}, expected an object reference",
                other.kind()
            ))),
            Err(OrbError::RemoteException { message }) if message.contains("not bound") => {
                Err(OrbError::NameNotFound {
                    name: name.to_owned(),
                })
            }
            Err(e) => Err(e),
        }
    }

    // ---- invocation --------------------------------------------------

    /// Registers a client-side request interceptor (runs on every
    /// outgoing invocation of this node, in registration order).
    pub fn add_client_interceptor(&self, interceptor: impl ClientInterceptor + 'static) {
        self.core
            .client_interceptors
            .write()
            .push(Arc::new(interceptor));
    }

    /// Registers a server-side request interceptor (runs before every
    /// local dispatch).
    pub fn add_server_interceptor(&self, interceptor: impl ServerInterceptor + 'static) {
        self.core
            .server_interceptors
            .write()
            .push(Arc::new(interceptor));
    }

    /// Runs the client interceptor chain; returns the (possibly
    /// redirected) target. Per the CORBA rules, a redirect restarts the
    /// chain on the new target; redirect loops are cut after 8 rounds.
    fn intercept_client(
        &self,
        target: &ObjRef,
        op: &str,
        args: &[Value],
        oneway: bool,
    ) -> OrbResult<ObjRef> {
        let interceptors = self.core.client_interceptors.read().clone();
        let mut current = target.clone();
        if interceptors.is_empty() {
            return Ok(current);
        }
        for _round in 0..8 {
            let mut redirected = false;
            for interceptor in &interceptors {
                let info = ClientRequestInfo {
                    target: &current,
                    operation: op,
                    args,
                    oneway,
                };
                match interceptor.send_request(&info) {
                    ClientAction::Proceed => {}
                    ClientAction::Redirect(next) => {
                        current = next;
                        redirected = true;
                        break;
                    }
                    ClientAction::Abort(message) => {
                        return Err(OrbError::exception(message));
                    }
                }
            }
            if !redirected {
                return Ok(current);
            }
        }
        Err(OrbError::Transport(
            "client interceptors redirected more than 8 times".into(),
        ))
    }

    /// Notifies interceptors of a two-way outcome.
    fn intercept_reply(
        &self,
        target: &ObjRef,
        op: &str,
        args: &[Value],
        outcome: &OrbResult<Value>,
    ) {
        let interceptors = self.core.client_interceptors.read().clone();
        for interceptor in &interceptors {
            let info = ClientRequestInfo {
                target,
                operation: op,
                args,
                oneway: false,
            };
            interceptor.receive_reply(&info, outcome);
        }
    }

    /// Sends a two-way invocation to `target` and waits for the reply.
    ///
    /// # Errors
    ///
    /// Transport errors, [`OrbError::ObjectNotFound`], or the remote
    /// exception raised by the servant.
    pub fn invoke_ref(&self, target: &ObjRef, op: &str, args: Vec<Value>) -> OrbResult<Value> {
        self.invoke_ref_with(target, op, args, InvokeOptions::default())
    }

    /// Sends a two-way invocation with explicit per-call options (for
    /// example a [deadline](InvokeOptions::deadline)).
    ///
    /// # Errors
    ///
    /// As [`invoke_ref`](Self::invoke_ref), plus
    /// [`OrbError::DeadlineExpired`] when the reply misses the deadline.
    pub fn invoke_ref_with(
        &self,
        target: &ObjRef,
        op: &str,
        args: Vec<Value>,
        opts: InvokeOptions,
    ) -> OrbResult<Value> {
        // The client span opens before the interceptor chain runs, so
        // spans emitted by observe hooks (and by nested invocations the
        // hooks trigger) nest under it.
        let mut span = Span::start(&format!("client:{op}"));
        span.attr("node", &self.core.node);
        span.attr("key", &target.key);
        let outcome = self.invoke_traced(target, op, args, opts, &span);
        if outcome.is_err() {
            span.attr("error", "true");
        }
        outcome
    }

    fn invoke_traced(
        &self,
        target: &ObjRef,
        op: &str,
        args: Vec<Value>,
        opts: InvokeOptions,
        span: &Span,
    ) -> OrbResult<Value> {
        let target = self.intercept_client(target, op, &args, false)?;
        let id = self.core.next_id.fetch_add(1, Ordering::Relaxed);
        let mut context = ServiceContext::new();
        context.set(TRACE_ID_KEY, &span.trace_id().to_string());
        context.set(SPAN_ID_KEY, &span.span_id().to_string());
        let body = RequestBody {
            id,
            key: target.key.clone(),
            operation: op.to_owned(),
            args: args.clone(),
            context,
        };
        self.core.stats.requests_sent.incr();
        let outcome = (|| {
            let reply = self.route(&target, Message::Request(body), opts.effective_deadline())?;
            let reply = reply.expect("two-way invocations produce a reply");
            self.core.stats.replies_received.incr();
            reply.outcome.map_err(Self::revive_error)
        })();
        self.intercept_reply(&target, op, &args, &outcome);
        outcome
    }

    /// Sends a oneway (fire-and-forget) invocation to `target`.
    ///
    /// # Errors
    ///
    /// Transport errors only; servant outcomes are not observable.
    pub fn invoke_oneway_ref(&self, target: &ObjRef, op: &str, args: Vec<Value>) -> OrbResult<()> {
        let mut span = Span::start(&format!("oneway:{op}"));
        span.attr("node", &self.core.node);
        span.attr("key", &target.key);
        let target = self.intercept_client(target, op, &args, true)?;
        let mut context = ServiceContext::new();
        context.set(TRACE_ID_KEY, &span.trace_id().to_string());
        context.set(SPAN_ID_KEY, &span.span_id().to_string());
        let body = RequestBody {
            id: 0,
            key: target.key.clone(),
            operation: op.to_owned(),
            args,
            context,
        };
        self.core.stats.oneways_sent.incr();
        // Oneways never wait for a reply, so the deadline is moot.
        self.route(
            &target,
            Message::Oneway(body),
            InvokeOptions::default().effective_deadline(),
        )?;
        Ok(())
    }

    /// Reconstructs a structured error from a remote error string where
    /// possible (object-not-found keeps its type across the wire).
    fn revive_error(message: String) -> OrbError {
        if let Some(rest) = message.strip_prefix("remote exception: ") {
            return OrbError::RemoteException {
                message: rest.to_owned(),
            };
        }
        if let Some(rest) = message.strip_prefix("no object under key `") {
            if let Some(key) = rest.strip_suffix('`') {
                return OrbError::ObjectNotFound {
                    key: key.to_owned(),
                };
            }
        }
        if message.starts_with("orb is shutting down") {
            return OrbError::ShuttingDown;
        }
        if message.starts_with("server overloaded") {
            return OrbError::TransientOverload;
        }
        OrbError::RemoteException { message }
    }

    /// Routes an encoded message to the target endpoint and returns the
    /// reply body for two-way requests. `deadline` bounds the wait for
    /// a TCP reply; in-process dispatch is synchronous and ignores it.
    fn route(
        &self,
        target: &ObjRef,
        msg: Message,
        deadline: std::time::Duration,
    ) -> OrbResult<Option<ReplyBody>> {
        if self.core.is_stopped() {
            return Err(OrbError::ShuttingDown);
        }
        let msg = self.apply_faults(target, msg, deadline)?;
        let Some(msg) = msg else {
            // A dropped oneway: the send "succeeded", nothing arrives.
            return Ok(None);
        };
        if let Some(node) = target.endpoint.strip_prefix("inproc://") {
            let peer = lookup_node(node).ok_or_else(|| OrbError::NodeUnreachable {
                endpoint: target.endpoint.clone(),
            })?;
            // Full marshal/unmarshal round trip keeps in-process
            // measurements honest.
            let bytes = msg.encode();
            self.core.count_bytes_out(bytes.len());
            peer.count_bytes_in(bytes.len());
            let decoded = Message::decode(&bytes)?;
            match decoded {
                Message::Request(body) => {
                    match peer.begin_dispatch() {
                        DispatchDecision::Admitted => {}
                        DispatchDecision::ShuttingDown => return Err(OrbError::ShuttingDown),
                        DispatchDecision::Overloaded => return Err(OrbError::TransientOverload),
                    }
                    let reply = peer.serve(body);
                    let reply_bytes = Message::Reply(reply).encode();
                    peer.count_bytes_out(reply_bytes.len());
                    peer.end_dispatch();
                    self.core.count_bytes_in(reply_bytes.len());
                    match Message::decode(&reply_bytes)? {
                        Message::Reply(body) => Ok(Some(body)),
                        _ => Err(OrbError::Marshal("expected a reply".into())),
                    }
                }
                Message::Oneway(body) => {
                    peer.enqueue_oneway(body);
                    Ok(None)
                }
                Message::Reply(_) => Err(OrbError::Marshal("unexpected reply".into())),
            }
        } else if let Some(addr) = target.endpoint.strip_prefix("tcp://") {
            transport::tcp::invoke(&self.core, addr, msg, deadline)
        } else {
            Err(OrbError::NodeUnreachable {
                endpoint: target.endpoint.clone(),
            })
        }
    }

    /// Offers one outgoing message to the node's fault plan. Returns the
    /// message (possibly after an injected delay) when it may proceed,
    /// `Ok(None)` for a silently-dropped oneway, or the injected error.
    fn apply_faults(
        &self,
        target: &ObjRef,
        msg: Message,
        deadline: std::time::Duration,
    ) -> OrbResult<Option<Message>> {
        let operation = match &msg {
            Message::Request(body) | Message::Oneway(body) => body.operation.as_str(),
            Message::Reply(_) => "",
        };
        let Some(action) = self.core.faults.decide(&target.endpoint, operation) else {
            return Ok(Some(msg));
        };
        match action {
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                Ok(Some(msg))
            }
            FaultAction::Drop => match msg {
                // What a black hole looks like to the caller — minus
                // the wait for the deadline to actually elapse.
                Message::Oneway(_) => Ok(None),
                _ => Err(OrbError::DeadlineExpired { after: deadline }),
            },
            FaultAction::Corrupt => Err(OrbError::Transport(
                "injected fault: frame corrupted in flight".into(),
            )),
            FaultAction::Disconnect => {
                if let Some(addr) = target.endpoint.strip_prefix("tcp://") {
                    if let Some(conn) = self.core.tcp_pool.lock().remove(addr) {
                        conn.kill("injected fault: disconnect");
                    }
                }
                Err(OrbError::Transport("injected fault: disconnect".into()))
            }
            FaultAction::Error(message) => Err(OrbError::RemoteException { message }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::ServantFn;

    fn hello_servant() -> ServantFn {
        ServantFn::new("Hello", |op, args| match op {
            "hello" => Ok(Value::from(format!(
                "hello, {}",
                args.first().and_then(Value::as_str).unwrap_or("?")
            ))),
            "fail" => Err(OrbError::exception("deliberate failure")),
            other => Err(OrbError::unknown_operation("Hello", other)),
        })
    }

    #[test]
    fn inproc_round_trip() {
        let server = Orb::new("t-orb-server");
        let objref = server.activate("h", hello_servant()).unwrap();
        let client = Orb::new("t-orb-client");
        let out = client
            .invoke_ref(&objref, "hello", vec![Value::from("world")])
            .unwrap();
        assert_eq!(out, Value::from("hello, world"));
    }

    #[test]
    fn duplicate_node_names_are_uniquified() {
        let a = Orb::new("t-orb-dup");
        let b = Orb::new("t-orb-dup");
        assert_ne!(a.node_name(), b.node_name());
        assert!(b.node_name().starts_with("t-orb-dup"));
    }

    #[test]
    fn node_name_is_freed_on_drop() {
        let name;
        {
            let orb = Orb::new("t-orb-freed");
            name = orb.node_name().to_owned();
        }
        let again = Orb::new("t-orb-freed");
        assert_eq!(again.node_name(), name);
    }

    #[test]
    fn remote_exceptions_propagate() {
        let server = Orb::new("t-orb-exc");
        let objref = server.activate("h", hello_servant()).unwrap();
        let client = Orb::new("t-orb-exc-client");
        let err = client.invoke_ref(&objref, "fail", vec![]).unwrap_err();
        assert!(
            matches!(err, OrbError::RemoteException { message } if message.contains("deliberate"))
        );
    }

    #[test]
    fn object_not_found_survives_the_wire() {
        let server = Orb::new("t-orb-404");
        let client = Orb::new("t-orb-404-client");
        let target = ObjRef::new(server.endpoint(), "ghost", "Hello");
        let err = client.invoke_ref(&target, "hello", vec![]).unwrap_err();
        assert!(matches!(err, OrbError::ObjectNotFound { key } if key == "ghost"));
    }

    #[test]
    fn unreachable_node_is_an_error() {
        let client = Orb::new("t-orb-unreach");
        let target = ObjRef::new("inproc://no-such-node", "k", "T");
        assert!(matches!(
            client.invoke_ref(&target, "op", vec![]),
            Err(OrbError::NodeUnreachable { .. })
        ));
    }

    #[test]
    fn inflight_cap_sheds_with_transient_overload() {
        let server = Orb::with_options("t-orb-shed", OrbOptions::new().max_inflight(1));
        let (block_tx, block_rx) = crossbeam::channel::bounded::<()>(0);
        let (entered_tx, entered_rx) = crossbeam::channel::bounded::<()>(1);
        let block_rx = StdMutex::new(block_rx);
        let entered_tx = StdMutex::new(entered_tx);
        let objref = server
            .activate(
                "slow",
                ServantFn::new("Slow", move |_, _| {
                    let _ = entered_tx.lock().unwrap().send(());
                    let _ = block_rx.lock().unwrap().recv();
                    Ok(Value::Null)
                }),
            )
            .unwrap();
        let client = Orb::new("t-orb-shed-client");
        let occupant = {
            let client = client.clone();
            let objref = objref.clone();
            std::thread::spawn(move || client.invoke_ref(&objref, "block", vec![]))
        };
        entered_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("first call reached the servant");
        // The single in-flight slot is taken: the next call is shed
        // with a retryable error, before reaching the servant.
        let err = client.invoke_ref(&objref, "block", vec![]).unwrap_err();
        assert_eq!(err, OrbError::TransientOverload);
        assert!(err.is_retryable());
        block_tx.send(()).unwrap();
        occupant.join().unwrap().unwrap();
        // With the slot free again the server admits requests (the
        // servant blocks on `block_rx`, which `block_tx` still feeds).
        let snapshot = adapta_telemetry::registry().snapshot();
        assert!(snapshot.counter("orb.t-orb-shed.shed").unwrap_or(0) >= 1);
    }

    #[test]
    fn overload_error_survives_the_wire_revival() {
        assert_eq!(
            Orb::revive_error(OrbError::TransientOverload.to_string()),
            OrbError::TransientOverload
        );
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let server = Orb::new("t-orb-stats");
        let objref = server.activate("h", hello_servant()).unwrap();
        let client = Orb::new("t-orb-stats-client");
        client
            .invoke_ref(&objref, "hello", vec![Value::from("x")])
            .unwrap();
        client.invoke_oneway_ref(&objref, "hello", vec![]).unwrap();
        let cs = client.stats();
        assert_eq!(cs.requests_sent, 1);
        assert_eq!(cs.oneways_sent, 1);
        assert_eq!(cs.replies_received, 1);
        assert!(cs.bytes_sent > 0 && cs.bytes_received > 0);
        // Server served at least the two-way (oneway may still be queued).
        assert!(server.stats().requests_served >= 1);
    }

    #[test]
    fn synchronous_oneway_serves_inline() {
        let server = Orb::new("t-orb-sync1w");
        server.set_synchronous_oneway(true);
        let objref = server.activate("h", hello_servant()).unwrap();
        let client = Orb::new("t-orb-sync1w-client");
        client.invoke_oneway_ref(&objref, "hello", vec![]).unwrap();
        assert_eq!(server.stats().requests_served, 1);
    }

    #[test]
    fn async_oneway_is_eventually_served() {
        let server = Orb::new("t-orb-async1w");
        let objref = server.activate("h", hello_servant()).unwrap();
        let client = Orb::new("t-orb-async1w-client");
        client.invoke_oneway_ref(&objref, "hello", vec![]).unwrap();
        for _ in 0..200 {
            if server.stats().requests_served == 1 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("oneway was never served");
    }

    #[test]
    fn self_invocation_works() {
        let orb = Orb::new("t-orb-self");
        let objref = orb.activate("h", hello_servant()).unwrap();
        let out = orb
            .invoke_ref(&objref, "hello", vec![Value::from("me")])
            .unwrap();
        assert_eq!(out, Value::from("hello, me"));
    }

    #[test]
    fn naming_binds_and_resolves_across_nodes() {
        let server = Orb::new("t-orb-naming");
        let objref = server.activate("h", hello_servant()).unwrap();
        server.bind_name("hello-service", &objref).unwrap();
        let client = Orb::new("t-orb-naming-client");
        let resolved = client
            .resolve_name(&server.endpoint(), "hello-service")
            .unwrap();
        assert_eq!(resolved, objref);
        let missing = client.resolve_name(&server.endpoint(), "nope");
        assert!(matches!(missing, Err(OrbError::NameNotFound { .. })));
    }

    #[test]
    fn proxy_from_uri_round_trips() {
        let server = Orb::new("t-orb-uri");
        let objref = server.activate("h", hello_servant()).unwrap();
        let client = Orb::new("t-orb-uri-client");
        let proxy = client.proxy_from_uri(&objref.to_uri()).unwrap();
        let out = proxy.invoke("hello", vec![Value::from("uri")]).unwrap();
        assert_eq!(out, Value::from("hello, uri"));
        assert!(client.proxy_from_uri("garbage").is_err());
    }

    #[test]
    fn deactivate_then_invoke_fails() {
        let server = Orb::new("t-orb-deact");
        let objref = server.activate("h", hello_servant()).unwrap();
        assert!(server.deactivate("h"));
        let client = Orb::new("t-orb-deact-client");
        assert!(matches!(
            client.invoke_ref(&objref, "hello", vec![]),
            Err(OrbError::ObjectNotFound { .. })
        ));
    }
}
