//! A dynamic object request broker — the CORBA analogue of the `adapta`
//! stack.
//!
//! The paper's infrastructure uses CORBA exclusively through its
//! *dynamic* faces: the Dynamic Invocation Interface on the client side
//! and the Dynamic Skeleton Interface on the server side (that is what
//! LuaCorba is built on). This crate provides exactly those:
//!
//! * [`Servant`] — the DSI analogue: one `invoke(op, args)` entry point
//!   per object (the paper's *dynamic implementation routine*);
//! * [`ObjectAdapter`] — activation of servants under object keys;
//! * [`Proxy`] / [`Request`] — the DII analogue: build an operation call
//!   with a dynamically assembled argument list and invoke it, two-way or
//!   `oneway`;
//! * [`ObjRef`]/stringified references — the IOR analogue;
//! * marshalling — a CDR-like self-describing binary codec;
//! * transports — in-process (between named [`Orb`] nodes in one
//!   process, with full marshalling so measurements stay honest) and TCP
//!   (length-prefixed frames, GIOP-like request/reply);
//! * a tiny naming service so bootstrap references can be found by name;
//! * observability — requests carry a [`ServiceContext`] propagating
//!   trace ids across hops, and every node hosts a `_telemetry` object
//!   serving the process-wide metrics snapshot and span buffer as JSON.
//!
//! ```
//! use adapta_orb::{Orb, Servant, OrbResult, OrbError};
//! use adapta_idl::Value;
//!
//! struct Hello;
//! impl Servant for Hello {
//!     fn interface(&self) -> &str { "Hello" }
//!     fn invoke(&self, op: &str, args: Vec<Value>) -> OrbResult<Value> {
//!         match op {
//!             "hello" => Ok(Value::from(format!(
//!                 "hello, {}", args[0].as_str().unwrap_or("?")))),
//!             _ => Err(OrbError::unknown_operation("Hello", op)),
//!         }
//!     }
//! }
//!
//! # fn main() -> OrbResult<()> {
//! let server = Orb::new("server");
//! let objref = server.activate("hello-1", Hello)?;
//! let client = Orb::new("client");
//! let proxy = client.proxy(&objref);
//! let out = proxy.invoke("hello", vec![Value::from("world")])?;
//! assert_eq!(out, Value::from("hello, world"));
//! # Ok(())
//! # }
//! ```

mod adapter;
mod error;
mod fault;
pub mod interceptor;
mod marshal;
mod message;
mod naming;
mod orb;
mod proxy;
mod reference;
mod telemetry_servant;
pub mod transport;

pub use adapter::{ObjectAdapter, Servant, ServantFn};
pub use error::OrbError;
pub use fault::{FaultAction, FaultPlan, FaultRule, FaultServant};
pub use interceptor::{
    ClientAction, ClientInterceptor, ClientInterceptorFn, ClientRequestInfo, ServerAction,
    ServerInterceptor, ServerInterceptorFn, ServerRequestInfo, TimingObserver,
};
pub use marshal::{decode_value, encode_value};
pub use message::{Message, ReplyBody, RequestBody, ServiceContext};
pub use orb::{InvokeOptions, Orb, OrbOptions, OrbStats};
pub use proxy::{Proxy, Request};
pub use reference::ObjRef;
pub use telemetry_servant::TelemetryServant;

/// Result alias for broker operations.
pub type OrbResult<T> = std::result::Result<T, OrbError>;
