//! Wire messages — the GIOP analogue.

use adapta_idl::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::OrbError;
use crate::marshal::{get_str, get_value, put_value};
use crate::OrbResult;

const MAGIC: &[u8; 4] = b"ADPT";
/// Current protocol version. Version 2 added the request service
/// context; version-1 frames (no context) are still decoded.
const VERSION: u8 = 2;
const MIN_VERSION: u8 = 1;

const KIND_REQUEST: u8 = 0;
const KIND_REPLY: u8 = 1;
const KIND_ONEWAY: u8 = 2;

/// Out-of-band key/value pairs carried with a request — the CORBA
/// *service context* analogue. The broker uses it to propagate trace
/// context (`trace-id`/`span-id`) across process and network hops;
/// applications and interceptors may add their own entries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceContext {
    entries: Vec<(String, String)>,
}

impl ServiceContext {
    /// Creates an empty context.
    pub fn new() -> ServiceContext {
        ServiceContext::default()
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Stores `value` under `key`, replacing any previous value.
    pub fn set(&mut self, key: &str, value: &str) {
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => value.clone_into(v),
            None => self.entries.push((key.to_string(), value.to_string())),
        }
    }

    /// True when the context carries no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over the entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// The body of a request (two-way or oneway).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestBody {
    /// Correlation id (unused for oneway).
    pub id: u64,
    /// Target object key.
    pub key: String,
    /// Operation name.
    pub operation: String,
    /// Argument list.
    pub args: Vec<Value>,
    /// Out-of-band service context (trace propagation and the like).
    pub context: ServiceContext,
}

/// The body of a reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyBody {
    /// Correlation id of the request being answered.
    pub id: u64,
    /// The operation result or the raised exception.
    pub outcome: Result<Value, String>,
}

/// A broker wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Two-way invocation.
    Request(RequestBody),
    /// Fire-and-forget invocation (no reply follows).
    Oneway(RequestBody),
    /// Reply to a two-way request.
    Reply(ReplyBody),
}

impl Message {
    /// Encodes the message, without the transport length prefix.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        match self {
            Message::Request(body) | Message::Oneway(body) => {
                buf.put_u8(if matches!(self, Message::Request(_)) {
                    KIND_REQUEST
                } else {
                    KIND_ONEWAY
                });
                buf.put_u64_le(body.id);
                put_str_local(&mut buf, &body.key);
                put_str_local(&mut buf, &body.operation);
                put_value(&mut buf, &Value::Seq(body.args.clone()));
                buf.put_u32_le(body.context.len() as u32);
                for (k, v) in body.context.iter() {
                    put_str_local(&mut buf, k);
                    put_str_local(&mut buf, v);
                }
            }
            Message::Reply(body) => {
                buf.put_u8(KIND_REPLY);
                buf.put_u64_le(body.id);
                match &body.outcome {
                    Ok(v) => {
                        buf.put_u8(0);
                        put_value(&mut buf, v);
                    }
                    Err(message) => {
                        buf.put_u8(1);
                        put_str_local(&mut buf, message);
                    }
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a message from a complete frame body.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::Marshal`] on malformed frames.
    pub fn decode(bytes: &[u8]) -> OrbResult<Message> {
        let mut cursor = bytes;
        if cursor.len() < 6 {
            return Err(OrbError::Marshal("frame too short".into()));
        }
        let (magic, rest) = cursor.split_at(4);
        cursor = rest;
        if magic != MAGIC {
            return Err(OrbError::Marshal("bad magic".into()));
        }
        let version = cursor.get_u8();
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(OrbError::Marshal(format!(
                "unsupported protocol version {version}"
            )));
        }
        let kind = cursor.get_u8();
        let msg = match kind {
            KIND_REQUEST | KIND_ONEWAY => {
                if cursor.len() < 8 {
                    return Err(OrbError::Marshal("truncated request".into()));
                }
                let id = cursor.get_u64_le();
                let key = get_str(&mut cursor)?;
                let operation = get_str(&mut cursor)?;
                let args = match get_value(&mut cursor)? {
                    Value::Seq(items) => items,
                    _ => return Err(OrbError::Marshal("request args must be a sequence".into())),
                };
                let mut context = ServiceContext::new();
                if version >= 2 {
                    if cursor.len() < 4 {
                        return Err(OrbError::Marshal("truncated service context".into()));
                    }
                    let entries = cursor.get_u32_le();
                    for _ in 0..entries {
                        let k = get_str(&mut cursor)?;
                        let v = get_str(&mut cursor)?;
                        context.set(&k, &v);
                    }
                }
                let body = RequestBody {
                    id,
                    key,
                    operation,
                    args,
                    context,
                };
                if kind == KIND_REQUEST {
                    Message::Request(body)
                } else {
                    Message::Oneway(body)
                }
            }
            KIND_REPLY => {
                if cursor.len() < 9 {
                    return Err(OrbError::Marshal("truncated reply".into()));
                }
                let id = cursor.get_u64_le();
                let status = cursor.get_u8();
                let outcome = match status {
                    0 => Ok(get_value(&mut cursor)?),
                    1 => Err(get_str(&mut cursor)?),
                    other => {
                        return Err(OrbError::Marshal(format!("unknown reply status {other}")))
                    }
                };
                Message::Reply(ReplyBody { id, outcome })
            }
            other => return Err(OrbError::Marshal(format!("unknown message kind {other}"))),
        };
        if !cursor.is_empty() {
            return Err(OrbError::Marshal("trailing bytes in frame".into()));
        }
        Ok(msg)
    }
}

fn put_str_local(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn request_round_trips() {
        round_trip(Message::Request(RequestBody {
            id: 7,
            key: "mon-1".into(),
            operation: "getValue".into(),
            args: vec![Value::Long(1), Value::Str("x".into())],
            context: ServiceContext::new(),
        }));
    }

    #[test]
    fn oneway_round_trips() {
        round_trip(Message::Oneway(RequestBody {
            id: 0,
            key: "obs".into(),
            operation: "notifyEvent".into(),
            args: vec![Value::Str("LoadIncrease".into())],
            context: ServiceContext::new(),
        }));
    }

    #[test]
    fn service_context_round_trips() {
        let mut context = ServiceContext::new();
        context.set("trace-id", "00000000deadbeef");
        context.set("span-id", "00000000cafef00d");
        context.set("tenant", "acme");
        round_trip(Message::Request(RequestBody {
            id: 9,
            key: "k".into(),
            operation: "op".into(),
            args: vec![],
            context,
        }));
    }

    #[test]
    fn service_context_set_replaces() {
        let mut context = ServiceContext::new();
        context.set("a", "1");
        context.set("a", "2");
        assert_eq!(context.len(), 1);
        assert_eq!(context.get("a"), Some("2"));
        assert_eq!(context.get("b"), None);
    }

    #[test]
    fn version_1_frames_still_decode() {
        // A version-1 request has no service-context section.
        let msg = Message::Request(RequestBody {
            id: 3,
            key: "k".into(),
            operation: "op".into(),
            args: vec![Value::Long(1)],
            context: ServiceContext::new(),
        });
        let mut bytes = msg.encode().to_vec();
        bytes[4] = 1;
        bytes.truncate(bytes.len() - 4); // drop the empty context count
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn replies_round_trip() {
        round_trip(Message::Reply(ReplyBody {
            id: 7,
            outcome: Ok(Value::Double(0.5)),
        }));
        round_trip(Message::Reply(ReplyBody {
            id: 8,
            outcome: Err("object not found".into()),
        }));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = Message::Reply(ReplyBody {
            id: 1,
            outcome: Ok(Value::Null),
        })
        .encode()
        .to_vec();
        bytes[0] = b'X';
        assert!(Message::decode(&bytes).is_err());

        let mut bytes = Message::Reply(ReplyBody {
            id: 1,
            outcome: Ok(Value::Null),
        })
        .encode()
        .to_vec();
        bytes[4] = 99;
        assert!(matches!(
            Message::decode(&bytes),
            Err(OrbError::Marshal(m)) if m.contains("version")
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let mut context = ServiceContext::new();
        context.set("trace-id", "74");
        let bytes = Message::Request(RequestBody {
            id: 1,
            key: "k".into(),
            operation: "op".into(),
            args: vec![Value::Long(2)],
            context,
        })
        .encode();
        for cut in 0..bytes.len() {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
