//! CDR-like binary marshalling of [`Value`]s.
//!
//! The encoding is self-describing (tag byte per value), little-endian,
//! with `u32` length prefixes for strings and containers — close in
//! spirit to CORBA's CDR encoding of `any`.

use adapta_idl::{ObjRefData, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::OrbError;
use crate::OrbResult;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_LONG: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_SEQ: u8 = 6;
const TAG_MAP: u8 = 7;
const TAG_OBJREF: u8 = 8;

/// Maximum container length accepted by the decoder — a defence against
/// hostile or corrupt frames.
const MAX_LEN: u32 = 64 * 1024 * 1024;

/// Appends the encoding of `value` to `buf`.
pub fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Long(n) => {
            buf.put_u8(TAG_LONG);
            buf.put_i64_le(*n);
        }
        Value::Double(d) => {
            buf.put_u8(TAG_DOUBLE);
            buf.put_f64_le(*d);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_str(buf, s);
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Seq(items) => {
            buf.put_u8(TAG_SEQ);
            buf.put_u32_le(items.len() as u32);
            for item in items {
                put_value(buf, item);
            }
        }
        Value::Map(fields) => {
            buf.put_u8(TAG_MAP);
            buf.put_u32_le(fields.len() as u32);
            for (k, v) in fields {
                put_str(buf, k);
                put_value(buf, v);
            }
        }
        Value::ObjRef(data) => {
            buf.put_u8(TAG_OBJREF);
            put_str(buf, &data.endpoint);
            put_str(buf, &data.key);
            put_str(buf, &data.type_id);
        }
    }
}

/// Encodes a single value to a fresh buffer.
///
/// ```
/// use adapta_idl::Value;
/// use adapta_orb::{encode_value, decode_value};
///
/// let v = Value::map([("x", Value::from(1i64))]);
/// let bytes = encode_value(&v);
/// assert_eq!(decode_value(&bytes).unwrap(), v);
/// ```
pub fn encode_value(value: &Value) -> Bytes {
    let mut buf = BytesMut::new();
    put_value(&mut buf, value);
    buf.freeze()
}

/// Decodes a single value from `bytes` (must consume the whole buffer).
///
/// # Errors
///
/// Returns [`OrbError::Marshal`] on truncated or malformed input.
pub fn decode_value(bytes: &[u8]) -> OrbResult<Value> {
    let mut cursor = bytes;
    let v = get_value(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(OrbError::Marshal(format!(
            "{} trailing bytes after value",
            cursor.len()
        )));
    }
    Ok(v)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn need(cursor: &&[u8], n: usize) -> OrbResult<()> {
    if cursor.len() < n {
        return Err(OrbError::Marshal(format!(
            "truncated message: needed {n} bytes, had {}",
            cursor.len()
        )));
    }
    Ok(())
}

fn get_len(cursor: &mut &[u8]) -> OrbResult<usize> {
    need(cursor, 4)?;
    let n = cursor.get_u32_le();
    if n > MAX_LEN {
        return Err(OrbError::Marshal(format!("length {n} exceeds limit")));
    }
    Ok(n as usize)
}

/// Reads a length-prefixed string.
pub(crate) fn get_str(cursor: &mut &[u8]) -> OrbResult<String> {
    let n = get_len(cursor)?;
    need(cursor, n)?;
    let (head, tail) = cursor.split_at(n);
    let s = std::str::from_utf8(head)
        .map_err(|_| OrbError::Marshal("invalid UTF-8 in string".into()))?
        .to_owned();
    *cursor = tail;
    Ok(s)
}

/// Reads one encoded value, advancing the cursor.
pub(crate) fn get_value(cursor: &mut &[u8]) -> OrbResult<Value> {
    need(cursor, 1)?;
    let tag = cursor.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => {
            need(cursor, 1)?;
            Value::Bool(cursor.get_u8() != 0)
        }
        TAG_LONG => {
            need(cursor, 8)?;
            Value::Long(cursor.get_i64_le())
        }
        TAG_DOUBLE => {
            need(cursor, 8)?;
            Value::Double(cursor.get_f64_le())
        }
        TAG_STR => Value::Str(get_str(cursor)?),
        TAG_BYTES => {
            let n = get_len(cursor)?;
            need(cursor, n)?;
            let (head, tail) = cursor.split_at(n);
            let b = Bytes::copy_from_slice(head);
            *cursor = tail;
            Value::Bytes(b)
        }
        TAG_SEQ => {
            let n = get_len(cursor)?;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(get_value(cursor)?);
            }
            Value::Seq(items)
        }
        TAG_MAP => {
            let n = get_len(cursor)?;
            let mut fields = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let k = get_str(cursor)?;
                let v = get_value(cursor)?;
                fields.push((k, v));
            }
            Value::Map(fields)
        }
        TAG_OBJREF => {
            let endpoint = get_str(cursor)?;
            let key = get_str(cursor)?;
            let type_id = get_str(cursor)?;
            Value::ObjRef(ObjRefData::new(endpoint, key, type_id))
        }
        other => return Err(OrbError::Marshal(format!("unknown value tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let encoded = encode_value(&v);
        assert_eq!(decode_value(&encoded).unwrap(), v, "round trip of {v:?}");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        round_trip(Value::Long(-42));
        round_trip(Value::Long(i64::MAX));
        round_trip(Value::Double(3.25));
        round_trip(Value::Double(f64::INFINITY));
        round_trip(Value::Str("olá".into()));
        round_trip(Value::Str(String::new()));
        round_trip(Value::Bytes(Bytes::from_static(&[0, 1, 255])));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Value::Seq(vec![
            Value::Long(1),
            Value::Str("two".into()),
            Value::Seq(vec![Value::Null]),
        ]));
        round_trip(Value::map([
            ("load", Value::Double(0.5)),
            ("ref", Value::ObjRef(ObjRefData::new("tcp://h:1", "k", "T"))),
        ]));
        round_trip(Value::Seq(vec![]));
        round_trip(Value::Map(vec![]));
    }

    #[test]
    fn nan_payload_round_trips_bitwise() {
        let encoded = encode_value(&Value::Double(f64::NAN));
        match decode_value(&encoded).unwrap() {
            Value::Double(d) => assert!(d.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_input_errors() {
        let encoded = encode_value(&Value::Str("hello".into()));
        for cut in 0..encoded.len() {
            assert!(
                decode_value(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_error() {
        let mut encoded = encode_value(&Value::Long(1)).to_vec();
        encoded.push(0);
        assert!(decode_value(&encoded).is_err());
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(decode_value(&[99]).is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_STR);
        buf.put_u32_le(u32::MAX);
        assert!(decode_value(&buf).is_err());
    }
}
