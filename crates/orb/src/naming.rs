//! A minimal naming service.
//!
//! Every [`Orb`](crate::Orb) node activates one `NamingContext` servant
//! under the well-known key `_naming`, giving processes a bootstrap
//! mechanism: resolve a few well-known names (the trader, a monitor
//! factory…) and everything else is discovered dynamically.

use std::collections::HashMap;

use adapta_idl::Value;
use parking_lot::Mutex;

use crate::adapter::Servant;
use crate::error::OrbError;
use crate::OrbResult;

/// The naming-context servant: `bind`, `resolve`, `unbind`, `list`.
#[derive(Debug, Default)]
pub struct NamingServant {
    names: Mutex<HashMap<String, adapta_idl::ObjRefData>>,
}

impl NamingServant {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Servant for NamingServant {
    fn interface(&self) -> &str {
        "NamingContext"
    }

    fn invoke(&self, op: &str, args: Vec<Value>) -> OrbResult<Value> {
        match op {
            "bind" => {
                let name = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| OrbError::exception("bind: name must be a string"))?;
                let target = args
                    .get(1)
                    .and_then(Value::as_objref)
                    .ok_or_else(|| OrbError::exception("bind: target must be an object"))?;
                self.names.lock().insert(name.to_owned(), target.clone());
                Ok(Value::Null)
            }
            "resolve" => {
                let name = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| OrbError::exception("resolve: name must be a string"))?;
                match self.names.lock().get(name) {
                    Some(data) => Ok(Value::ObjRef(data.clone())),
                    None => Err(OrbError::exception(format!("name `{name}` not bound"))),
                }
            }
            "unbind" => {
                let name = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| OrbError::exception("unbind: name must be a string"))?;
                let existed = self.names.lock().remove(name).is_some();
                Ok(Value::Bool(existed))
            }
            "list" => {
                let mut names: Vec<String> = self.names.lock().keys().cloned().collect();
                names.sort();
                Ok(Value::Seq(names.into_iter().map(Value::from).collect()))
            }
            other => Err(OrbError::unknown_operation("NamingContext", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapta_idl::ObjRefData;

    fn objref() -> Value {
        Value::ObjRef(ObjRefData::new("inproc://x", "k", "T"))
    }

    #[test]
    fn bind_resolve_unbind_list() {
        let naming = NamingServant::new();
        naming
            .invoke("bind", vec![Value::from("svc"), objref()])
            .unwrap();
        let resolved = naming.invoke("resolve", vec![Value::from("svc")]).unwrap();
        assert_eq!(resolved, objref());
        let listed = naming.invoke("list", vec![]).unwrap();
        assert_eq!(listed, Value::Seq(vec![Value::from("svc")]));
        assert_eq!(
            naming.invoke("unbind", vec![Value::from("svc")]).unwrap(),
            Value::Bool(true)
        );
        assert!(naming.invoke("resolve", vec![Value::from("svc")]).is_err());
        assert_eq!(
            naming.invoke("unbind", vec![Value::from("svc")]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn argument_validation() {
        let naming = NamingServant::new();
        assert!(naming
            .invoke("bind", vec![Value::Long(1), objref()])
            .is_err());
        assert!(naming
            .invoke("bind", vec![Value::from("x"), Value::Long(1)])
            .is_err());
        assert!(naming.invoke("resolve", vec![]).is_err());
        assert!(naming.invoke("frobnicate", vec![]).is_err());
    }
}
