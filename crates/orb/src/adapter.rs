//! Servants and the object adapter — the DSI/POA analogue.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adapta_idl::{IdlError, Value};
use parking_lot::RwLock;

use crate::error::OrbError;
use crate::OrbResult;

/// A dynamic servant: the analogue of CORBA's Dynamic Skeleton
/// Interface, where every operation funnels through one *dynamic
/// implementation routine*.
///
/// Implementations must be thread-safe: transports may dispatch
/// concurrently. Single-threaded implementations (like interpreter-backed
/// servants) are hosted behind a channel — see `adapta-core`'s
/// `ScriptActor`.
pub trait Servant: Send + Sync {
    /// The interface (repository id) this servant implements.
    fn interface(&self) -> &str;

    /// Handles one operation invocation.
    ///
    /// # Errors
    ///
    /// Implementations return [`OrbError`] for unknown operations, bad
    /// arguments, or application exceptions.
    fn invoke(&self, op: &str, args: Vec<Value>) -> OrbResult<Value>;
}

/// The closure type behind [`ServantFn`].
type ServantClosure = Box<dyn Fn(&str, Vec<Value>) -> OrbResult<Value> + Send + Sync>;

/// A closure-backed [`Servant`], convenient for small objects:
///
/// ```
/// use adapta_orb::{ServantFn, Servant};
/// use adapta_idl::Value;
///
/// let echo = ServantFn::new("Echo", |op, args| {
///     Ok(Value::map([("op", Value::from(op)), ("n", Value::from(args.len() as i64))]))
/// });
/// assert_eq!(echo.interface(), "Echo");
/// ```
pub struct ServantFn {
    interface: String,
    f: ServantClosure,
}

impl ServantFn {
    /// Wraps a closure as a servant for `interface`.
    pub fn new(
        interface: impl Into<String>,
        f: impl Fn(&str, Vec<Value>) -> OrbResult<Value> + Send + Sync + 'static,
    ) -> Self {
        ServantFn {
            interface: interface.into(),
            f: Box::new(f),
        }
    }
}

impl Servant for ServantFn {
    fn interface(&self) -> &str {
        &self.interface
    }

    fn invoke(&self, op: &str, args: Vec<Value>) -> OrbResult<Value> {
        (self.f)(op, args)
    }
}

impl std::fmt::Debug for ServantFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServantFn({})", self.interface)
    }
}

/// The object adapter: maps object keys to active servants.
#[derive(Default)]
pub struct ObjectAdapter {
    servants: RwLock<HashMap<String, Arc<dyn Servant>>>,
    counter: AtomicU64,
}

impl std::fmt::Debug for ObjectAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectAdapter")
            .field("active", &self.servants.read().len())
            .finish()
    }
}

impl ObjectAdapter {
    /// Creates an empty adapter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Activates `servant` under `key`.
    ///
    /// # Errors
    ///
    /// Returns an error if the key is already in use.
    pub fn activate(&self, key: &str, servant: Arc<dyn Servant>) -> OrbResult<()> {
        let mut map = self.servants.write();
        if map.contains_key(key) {
            return Err(OrbError::Idl(IdlError::Duplicate(key.to_owned())));
        }
        map.insert(key.to_owned(), servant);
        Ok(())
    }

    /// Activates `servant` under a fresh generated key and returns it.
    pub fn activate_auto(&self, servant: Arc<dyn Servant>) -> String {
        loop {
            let n = self.counter.fetch_add(1, Ordering::Relaxed);
            let key = format!("{}-{n}", servant.interface());
            if self.activate(&key, servant.clone()).is_ok() {
                return key;
            }
        }
    }

    /// Deactivates the servant under `key`; returns whether one existed.
    pub fn deactivate(&self, key: &str) -> bool {
        self.servants.write().remove(key).is_some()
    }

    /// The servant under `key`, if active.
    pub fn find(&self, key: &str) -> Option<Arc<dyn Servant>> {
        self.servants.read().get(key).cloned()
    }

    /// Number of active servants.
    pub fn active_count(&self) -> usize {
        self.servants.read().len()
    }

    /// Dispatches one invocation to the servant under `key` (the
    /// server-side upcall).
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::ObjectNotFound`] for unknown keys, plus any
    /// error the servant raises.
    pub fn dispatch(&self, key: &str, op: &str, args: Vec<Value>) -> OrbResult<Value> {
        let servant = self.find(key).ok_or_else(|| OrbError::ObjectNotFound {
            key: key.to_owned(),
        })?;
        servant.invoke(op, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo() -> Arc<dyn Servant> {
        Arc::new(ServantFn::new("Echo", |op, args| {
            Ok(Value::Seq(
                std::iter::once(Value::from(op)).chain(args).collect(),
            ))
        }))
    }

    #[test]
    fn activate_and_dispatch() {
        let adapter = ObjectAdapter::new();
        adapter.activate("e1", echo()).unwrap();
        let out = adapter
            .dispatch("e1", "ping", vec![Value::Long(1)])
            .unwrap();
        assert_eq!(out, Value::Seq(vec![Value::from("ping"), Value::Long(1)]));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let adapter = ObjectAdapter::new();
        adapter.activate("k", echo()).unwrap();
        assert!(adapter.activate("k", echo()).is_err());
    }

    #[test]
    fn auto_keys_are_unique() {
        let adapter = ObjectAdapter::new();
        let k1 = adapter.activate_auto(echo());
        let k2 = adapter.activate_auto(echo());
        assert_ne!(k1, k2);
        assert!(k1.starts_with("Echo-"));
        assert_eq!(adapter.active_count(), 2);
    }

    #[test]
    fn deactivate_removes() {
        let adapter = ObjectAdapter::new();
        adapter.activate("k", echo()).unwrap();
        assert!(adapter.deactivate("k"));
        assert!(!adapter.deactivate("k"));
        assert!(matches!(
            adapter.dispatch("k", "op", vec![]),
            Err(OrbError::ObjectNotFound { .. })
        ));
    }
}
