//! The CORBA-style standard pseudo-operations, answered by the broker
//! for every object: `_non_existent`, `_is_a`, `_interface`.

use adapta_idl::Value;
use adapta_orb::{ObjRef, Orb, ServantFn};

fn orb_with_object() -> (Orb, ObjRef) {
    let orb = Orb::new("pseudo-ops");
    let objref = orb
        .activate(
            "obj",
            ServantFn::new("EventMonitor", |_, _| Ok(Value::Null)),
        )
        .unwrap();
    (orb, objref)
}

#[test]
fn non_existent_pings_liveness() {
    let (orb, objref) = orb_with_object();
    let client = Orb::new("pseudo-ops-client");
    let proxy = client.proxy(&objref);
    assert_eq!(
        proxy.invoke("_non_existent", vec![]).unwrap(),
        Value::Bool(false)
    );
    orb.deactivate("obj");
    assert_eq!(
        proxy.invoke("_non_existent", vec![]).unwrap(),
        Value::Bool(true)
    );
}

#[test]
fn is_a_checks_the_servant_interface() {
    let (_orb, objref) = orb_with_object();
    let client = Orb::new("pseudo-ops-client2");
    let proxy = client.proxy(&objref);
    assert_eq!(
        proxy
            .invoke("_is_a", vec![Value::from("EventMonitor")])
            .unwrap(),
        Value::Bool(true)
    );
    assert_eq!(
        proxy.invoke("_is_a", vec![Value::from("Trader")]).unwrap(),
        Value::Bool(false)
    );
}

#[test]
fn interface_reports_the_repository_id() {
    let (_orb, objref) = orb_with_object();
    let client = Orb::new("pseudo-ops-client3");
    assert_eq!(
        client.proxy(&objref).invoke("_interface", vec![]).unwrap(),
        Value::from("EventMonitor")
    );
}

#[test]
fn pseudo_ops_on_missing_objects() {
    let (orb, _objref) = orb_with_object();
    let client = Orb::new("pseudo-ops-client4");
    let ghost = ObjRef::new(orb.endpoint(), "ghost", "X");
    let proxy = client.proxy(&ghost);
    assert_eq!(
        proxy.invoke("_non_existent", vec![]).unwrap(),
        Value::Bool(true)
    );
    assert!(proxy.invoke("_is_a", vec![Value::from("X")]).is_err());
    assert!(proxy.invoke("_interface", vec![]).is_err());
}
