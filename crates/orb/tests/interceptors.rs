//! Integration tests for the request-interceptor mechanism (the
//! Portable Interceptor analogue of the paper's Section VI).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adapta_idl::Value;
use adapta_orb::{
    ClientAction, ClientInterceptor, ClientInterceptorFn, ClientRequestInfo, ObjRef, Orb, OrbError,
    ServantFn, ServerAction, ServerInterceptorFn,
};

fn named_servant(name: &'static str) -> ServantFn {
    ServantFn::new("Svc", move |op, _args| match op {
        "whoami" => Ok(Value::from(name)),
        other => Err(OrbError::unknown_operation("Svc", other)),
    })
}

#[test]
fn client_interceptor_redirects_standard_proxies() {
    let server = Orb::new("icpt-redir-server");
    let a = server.activate("a", named_servant("A")).unwrap();
    let b = server.activate("b", named_servant("B")).unwrap();

    let client = Orb::new("icpt-redir-client");
    let b_for_move = b.clone();
    client.add_client_interceptor(ClientInterceptorFn(move |info: &ClientRequestInfo<'_>| {
        // Forward everything aimed at `a` to `b` — the location-forward
        // adaptation idiom, invisible to the application.
        if info.target.key == "a" {
            ClientAction::Redirect(b_for_move.clone())
        } else {
            ClientAction::Proceed
        }
    }));

    // The application uses a *plain* proxy — no smart proxy involved.
    let proxy = client.proxy(&a);
    assert_eq!(proxy.invoke("whoami", vec![]).unwrap(), Value::from("B"));
    // Direct calls to b are untouched.
    assert_eq!(
        client.proxy(&b).invoke("whoami", vec![]).unwrap(),
        Value::from("B")
    );
}

#[test]
fn client_interceptor_can_abort() {
    let server = Orb::new("icpt-abort-server");
    let target = server.activate("a", named_servant("A")).unwrap();
    let client = Orb::new("icpt-abort-client");
    client.add_client_interceptor(ClientInterceptorFn(|info: &ClientRequestInfo<'_>| {
        if info.operation == "forbidden" {
            ClientAction::Abort("operation vetoed by policy".into())
        } else {
            ClientAction::Proceed
        }
    }));
    let proxy = client.proxy(&target);
    assert_eq!(proxy.invoke("whoami", vec![]).unwrap(), Value::from("A"));
    let err = proxy.invoke("forbidden", vec![]).unwrap_err();
    assert!(err.to_string().contains("vetoed"));
}

#[test]
fn redirect_loops_are_cut() {
    let server = Orb::new("icpt-loop-server");
    let a = server.activate("a", named_servant("A")).unwrap();
    let client = Orb::new("icpt-loop-client");
    let a_for_move = a.clone();
    client.add_client_interceptor(ClientInterceptorFn(move |_: &ClientRequestInfo<'_>| {
        // Pathological: always redirect (even to the same target).
        ClientAction::Redirect(a_for_move.clone())
    }));
    let err = client.proxy(&a).invoke("whoami", vec![]).unwrap_err();
    assert!(err.to_string().contains("redirected"));
}

#[test]
fn receive_reply_observes_outcomes() {
    struct Recorder {
        ok: Arc<AtomicU64>,
        err: Arc<AtomicU64>,
    }
    impl ClientInterceptor for Recorder {
        fn send_request(&self, _: &ClientRequestInfo<'_>) -> ClientAction {
            ClientAction::Proceed
        }
        fn receive_reply(&self, _: &ClientRequestInfo<'_>, outcome: &Result<Value, OrbError>) {
            match outcome {
                Ok(_) => self.ok.fetch_add(1, Ordering::Relaxed),
                Err(_) => self.err.fetch_add(1, Ordering::Relaxed),
            };
        }
    }
    let server = Orb::new("icpt-reply-server");
    let target = server.activate("a", named_servant("A")).unwrap();
    let client = Orb::new("icpt-reply-client");
    let ok = Arc::new(AtomicU64::new(0));
    let err_count = Arc::new(AtomicU64::new(0));
    client.add_client_interceptor(Recorder {
        ok: ok.clone(),
        err: err_count.clone(),
    });
    let proxy = client.proxy(&target);
    proxy.invoke("whoami", vec![]).unwrap();
    let _ = proxy.invoke("nope", vec![]);
    assert_eq!(ok.load(Ordering::Relaxed), 1);
    assert_eq!(err_count.load(Ordering::Relaxed), 1);
}

#[test]
fn server_interceptor_rejects_requests() {
    let server = Orb::new("icpt-srv-server");
    let target = server.activate("a", named_servant("A")).unwrap();
    server.add_server_interceptor(ServerInterceptorFn(
        |info: &adapta_orb::ServerRequestInfo<'_>| {
            if info.operation.starts_with('_') && info.key != "_naming" {
                ServerAction::Abort("private operations are not remotely callable".into())
            } else {
                ServerAction::Proceed
            }
        },
    ));
    let client = Orb::new("icpt-srv-client");
    let proxy = client.proxy(&target);
    assert_eq!(proxy.invoke("whoami", vec![]).unwrap(), Value::from("A"));
    let err = proxy.invoke("_internal", vec![]).unwrap_err();
    assert!(matches!(err, OrbError::RemoteException { message } if message.contains("private")));
}

#[test]
fn interceptors_apply_to_oneway_too() {
    let server = Orb::new("icpt-ow-server");
    server.set_synchronous_oneway(true);
    let hits = Arc::new(AtomicU64::new(0));
    let hits_clone = hits.clone();
    let real = server
        .activate(
            "real",
            ServantFn::new("Sink", move |_, _| {
                hits_clone.fetch_add(1, Ordering::Relaxed);
                Ok(Value::Null)
            }),
        )
        .unwrap();
    let decoy = ObjRef::new(server.endpoint(), "missing", "Sink");

    let client = Orb::new("icpt-ow-client");
    let real_for_move = real.clone();
    client.add_client_interceptor(ClientInterceptorFn(move |info: &ClientRequestInfo<'_>| {
        assert!(info.oneway || info.operation != "drop");
        if info.target.key == "missing" {
            ClientAction::Redirect(real_for_move.clone())
        } else {
            ClientAction::Proceed
        }
    }));
    client.invoke_oneway_ref(&decoy, "drop", vec![]).unwrap();
    assert_eq!(hits.load(Ordering::Relaxed), 1);
}

#[test]
fn interceptor_chain_runs_in_order() {
    let server = Orb::new("icpt-order-server");
    let target = server.activate("a", named_servant("A")).unwrap();
    let client = Orb::new("icpt-order-client");
    let log = Arc::new(parking_lot_mutex());
    for tag in ["first", "second"] {
        let log = log.clone();
        client.add_client_interceptor(ClientInterceptorFn(move |_: &ClientRequestInfo<'_>| {
            log.lock().unwrap().push(tag);
            ClientAction::Proceed
        }));
    }
    client.proxy(&target).invoke("whoami", vec![]).unwrap();
    assert_eq!(log.lock().unwrap().as_slice(), &["first", "second"]);
}

fn parking_lot_mutex() -> std::sync::Mutex<Vec<&'static str>> {
    std::sync::Mutex::new(Vec::new())
}

#[test]
fn redirect_restarts_chain_so_later_abort_sees_new_target() {
    // CORBA forward semantics: a redirect restarts the chain on the new
    // target, so an abort rule matching the *redirected* destination
    // still fires — adaptation cannot be used to smuggle a request past
    // a policy interceptor registered after it.
    let server = Orb::new("icpt-ra-server");
    let a = server.activate("a", named_servant("A")).unwrap();
    let b = server.activate("b", named_servant("B")).unwrap();
    let client = Orb::new("icpt-ra-client");
    let b_for_move = b.clone();
    client.add_client_interceptor(ClientInterceptorFn(move |info: &ClientRequestInfo<'_>| {
        if info.target.key == "a" {
            ClientAction::Redirect(b_for_move.clone())
        } else {
            ClientAction::Proceed
        }
    }));
    client.add_client_interceptor(ClientInterceptorFn(|info: &ClientRequestInfo<'_>| {
        if info.target.key == "b" {
            ClientAction::Abort("b is quarantined".into())
        } else {
            ClientAction::Proceed
        }
    }));
    // a → redirected to b → chain restarts → abort fires on b.
    let err = client.proxy(&a).invoke("whoami", vec![]).unwrap_err();
    assert!(err.to_string().contains("quarantined"), "{err}");
}

#[test]
fn observe_hook_spans_nest_under_the_client_span() {
    use adapta_orb::TimingObserver;
    use adapta_telemetry::collector;

    let server = Orb::new("icpt-span-server");
    let target = server.activate("a", named_servant("A")).unwrap();
    let client = Orb::new("icpt-span-client");
    client.add_client_interceptor(TimingObserver::new("icpt-span"));
    client.proxy(&target).invoke("whoami", vec![]).unwrap();

    let finished = collector().finished();
    let observe = finished
        .iter()
        .find(|s| s.name == "observe:icpt-span")
        .expect("observe span recorded");
    assert!(observe
        .attrs
        .iter()
        .any(|(k, v)| k == "operation" && v == "whoami"));
    assert!(observe.attrs.iter().any(|(k, v)| k == "ok" && v == "true"));
    // The reply hook ran while the invocation's client span was still
    // open, so its span is a child of `client:whoami`, same trace.
    let parent = observe.parent.expect("observe span has a parent");
    let client_span = finished
        .iter()
        .find(|s| s.span == parent)
        .expect("parent span retained");
    assert_eq!(client_span.name, "client:whoami");
    assert_eq!(client_span.trace, observe.trace);
}
