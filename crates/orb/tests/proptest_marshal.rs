//! Property tests for the wire codec: every value round-trips, and the
//! decoder is total (never panics) on arbitrary bytes.

use adapta_idl::{ObjRefData, Value};
use adapta_orb::{decode_value, encode_value, Message, ReplyBody, RequestBody, ServiceContext};
use bytes::Bytes;
use proptest::prelude::*;

/// A strategy generating arbitrary well-formed wire values, including
/// nested containers.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Long),
        any::<f64>().prop_map(Value::Double),
        ".{0,32}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|b| Value::Bytes(Bytes::from(b))),
        ("[a-z:/.0-9]{0,16}", "[a-z0-9-]{0,12}", "[A-Za-z]{0,12}").prop_map(
            |(endpoint, key, type_id)| Value::ObjRef(ObjRefData::new(endpoint, key, type_id))
        ),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Seq),
            proptest::collection::vec(("[a-z_]{0,8}", inner), 0..6).prop_map(Value::Map),
        ]
    })
}

/// Structural equality that treats NaN doubles as equal (the codec is
/// bit-preserving but `PartialEq` on f64 is not reflexive for NaN).
fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Double(x), Value::Double(y)) => {
            (x.is_nan() && y.is_nan()) || x.to_bits() == y.to_bits() || x == y
        }
        (Value::Seq(x), Value::Seq(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| value_eq(a, b))
        }
        (Value::Map(x), Value::Map(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && value_eq(va, vb))
        }
        _ => a == b,
    }
}

proptest! {
    #[test]
    fn any_value_round_trips(v in value_strategy()) {
        let encoded = encode_value(&v);
        let decoded = decode_value(&encoded).expect("well-formed encoding decodes");
        prop_assert!(value_eq(&v, &decoded), "{v:?} != {decoded:?}");
    }

    #[test]
    fn decoder_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must never panic; errors are fine.
        let _ = decode_value(&bytes);
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn truncation_never_panics(v in value_strategy(), cut in 0usize..64) {
        let encoded = encode_value(&v);
        let cut = cut.min(encoded.len());
        let _ = decode_value(&encoded[..cut]);
    }

    #[test]
    fn messages_round_trip(
        id in any::<u64>(),
        key in "[a-z0-9-]{0,16}",
        op in "[a-zA-Z_]{1,16}",
        args in proptest::collection::vec(value_strategy(), 0..4),
        oneway in any::<bool>(),
        ctx in proptest::collection::vec(("[a-z-]{1,12}", ".{0,24}"), 0..4),
    ) {
        let mut context = ServiceContext::new();
        for (k, v) in &ctx {
            context.set(k, v);
        }
        let body = RequestBody { id, key, operation: op, args, context };
        let msg = if oneway { Message::Oneway(body) } else { Message::Request(body) };
        let decoded = Message::decode(&msg.encode()).expect("decodes");
        match (&msg, &decoded) {
            (Message::Request(a), Message::Request(b))
            | (Message::Oneway(a), Message::Oneway(b)) => {
                prop_assert_eq!(a.id, b.id);
                prop_assert_eq!(&a.key, &b.key);
                prop_assert_eq!(&a.operation, &b.operation);
                prop_assert_eq!(&a.context, &b.context);
                prop_assert_eq!(a.args.len(), b.args.len());
                for (x, y) in a.args.iter().zip(&b.args) {
                    prop_assert!(value_eq(x, y));
                }
            }
            _ => prop_assert!(false, "kind changed in transit"),
        }
    }

    #[test]
    fn replies_round_trip(id in any::<u64>(), ok in any::<bool>(), text in ".{0,48}") {
        let outcome = if ok { Ok(Value::Str(text.clone())) } else { Err(text.clone()) };
        let msg = Message::Reply(ReplyBody { id, outcome });
        prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn objref_uri_round_trips(
        endpoint in "[ -~]{0,24}",
        key in "[ -~]{0,24}",
        type_id in "[ -~]{0,24}",
    ) {
        let data = ObjRefData::new(endpoint, key, type_id);
        prop_assert_eq!(ObjRefData::from_uri(&data.to_uri()), Some(data));
    }
}
