//! A minimal discrete-event scheduler.
//!
//! Experiments in `adapta-bench` are discrete-event simulations: request
//! arrivals, service completions, monitor ticks and load-profile changes
//! are events ordered by virtual time. The [`Scheduler`] owns the event
//! queue and (optionally) drives a [`VirtualClock`] forward so that
//! components reading the clock observe consistent time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use crate::clock::{Clock, SimTime, VirtualClock};

type Event<Ctx> = Box<dyn FnOnce(&mut Ctx, &mut Scheduler<Ctx>)>;

struct Entry<Ctx> {
    at: SimTime,
    seq: u64,
    run: Event<Ctx>,
}

/// A discrete-event scheduler over a user context `Ctx`.
///
/// Events are closures receiving the context and the scheduler itself, so
/// handlers can schedule follow-up events. Ties in time are broken by
/// insertion order, which makes runs fully deterministic.
///
/// ```
/// use adapta_sim::{Scheduler, SimTime};
/// use std::time::Duration;
///
/// let mut sched = Scheduler::<Vec<u64>>::new();
/// sched.after(Duration::from_secs(2), |log, _| log.push(2));
/// sched.after(Duration::from_secs(1), |log, s| {
///     log.push(1);
///     s.after(Duration::from_secs(5), |log, _| log.push(6));
/// });
/// let mut log = Vec::new();
/// sched.run_until(&mut log, SimTime::from_secs(10));
/// assert_eq!(log, vec![1, 2, 6]);
/// ```
pub struct Scheduler<Ctx> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<HeapKey>>,
    events: std::collections::HashMap<u64, Entry<Ctx>>,
    clock: Option<VirtualClock>,
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct HeapKey {
    at: SimTime,
    seq: u64,
}

impl<Ctx> Default for Scheduler<Ctx> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Ctx> Scheduler<Ctx> {
    /// Creates a scheduler starting at time zero.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            events: std::collections::HashMap::new(),
            clock: None,
        }
    }

    /// Creates a scheduler that keeps `clock` in sync with simulated time,
    /// so components holding the clock observe event time.
    pub fn with_clock(clock: VirtualClock) -> Self {
        let mut s = Self::new();
        s.now = clock.now();
        s.clock = Some(clock);
        s
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// Events scheduled in the past run "now": they are clamped to the
    /// current time and executed in insertion order.
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut Ctx, &mut Scheduler<Ctx>) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(HeapKey { at, seq }));
        self.events.insert(
            seq,
            Entry {
                at,
                seq,
                run: Box::new(f),
            },
        );
    }

    /// Schedules `f` to run `d` after the current time.
    pub fn after(&mut self, d: Duration, f: impl FnOnce(&mut Ctx, &mut Scheduler<Ctx>) + 'static) {
        self.at(self.now + d, f);
    }

    /// Schedules `f` to run every `period`, starting one period from now,
    /// until (and excluding) `until`.
    pub fn every(
        &mut self,
        period: Duration,
        until: SimTime,
        f: impl FnMut(&mut Ctx, &mut Scheduler<Ctx>) + 'static,
    ) {
        fn tick<Ctx>(
            mut f: impl FnMut(&mut Ctx, &mut Scheduler<Ctx>) + 'static,
            period: Duration,
            until: SimTime,
            ctx: &mut Ctx,
            s: &mut Scheduler<Ctx>,
        ) {
            f(ctx, s);
            let next = s.now + period;
            if next < until {
                s.at(next, move |ctx, s| tick(f, period, until, ctx, s));
            }
        }
        let first = self.now + period;
        if first < until {
            self.at(first, move |ctx, s| tick(f, period, until, ctx, s));
        }
    }

    /// Runs events in time order until the queue is empty or the next
    /// event is at or after `end`; finally advances time to `end`.
    pub fn run_until(&mut self, ctx: &mut Ctx, end: SimTime) {
        while let Some(Reverse(key)) = self.queue.peek() {
            if key.at >= end {
                break;
            }
            let Reverse(key) = self.queue.pop().expect("peeked entry");
            let entry = self
                .events
                .remove(&key.seq)
                .expect("event table in sync with heap");
            debug_assert_eq!(entry.at, key.at);
            debug_assert_eq!(entry.seq, key.seq);
            self.advance_now(entry.at);
            (entry.run)(ctx, self);
        }
        self.advance_now(end);
    }

    /// Runs every pending event (including ones scheduled by handlers).
    pub fn run_to_completion(&mut self, ctx: &mut Ctx) {
        while let Some(Reverse(key)) = self.queue.pop() {
            let entry = self
                .events
                .remove(&key.seq)
                .expect("event table in sync with heap");
            self.advance_now(entry.at);
            (entry.run)(ctx, self);
        }
    }

    fn advance_now(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
            if let Some(clock) = &self.clock {
                clock.advance_to(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let mut s = Scheduler::<Vec<&'static str>>::new();
        s.at(SimTime::from_secs(1), |log, _| log.push("a"));
        s.at(SimTime::from_secs(1), |log, _| log.push("b"));
        s.at(SimTime::from_millis(500), |log, _| log.push("early"));
        let mut log = Vec::new();
        s.run_to_completion(&mut log);
        assert_eq!(log, vec!["early", "a", "b"]);
    }

    #[test]
    fn run_until_stops_before_end_and_advances_time() {
        let mut s = Scheduler::<u32>::new();
        s.at(SimTime::from_secs(1), |n, _| *n += 1);
        s.at(SimTime::from_secs(5), |n, _| *n += 1);
        let mut n = 0;
        s.run_until(&mut n, SimTime::from_secs(3));
        assert_eq!(n, 1);
        assert_eq!(s.now(), SimTime::from_secs(3));
        s.run_to_completion(&mut n);
        assert_eq!(n, 2);
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut s = Scheduler::<Vec<u64>>::new();
        s.at(SimTime::from_secs(2), |log, s| {
            // Scheduled "in the past" relative to now=2s.
            s.at(SimTime::from_secs(1), |log, s| log.push(s.now().as_secs()));
            log.push(s.now().as_secs());
        });
        let mut log = Vec::new();
        s.run_to_completion(&mut log);
        assert_eq!(log, vec![2, 2]);
    }

    #[test]
    fn every_repeats_until_deadline() {
        let mut s = Scheduler::<Vec<u64>>::new();
        s.every(Duration::from_secs(10), SimTime::from_secs(45), |log, s| {
            log.push(s.now().as_secs())
        });
        let mut log = Vec::new();
        s.run_to_completion(&mut log);
        assert_eq!(log, vec![10, 20, 30, 40]);
    }

    #[test]
    fn scheduler_drives_attached_virtual_clock() {
        let clock = VirtualClock::new();
        let mut s = Scheduler::<()>::with_clock(clock.clone());
        s.at(SimTime::from_secs(7), |_, _| {});
        s.run_to_completion(&mut ());
        assert_eq!(clock.now(), SimTime::from_secs(7));
    }
}
