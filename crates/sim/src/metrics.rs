//! Measurement collection for experiments: latency histograms, message
//! counters and load-imbalance statistics.

use std::fmt;

/// The exact-sample duration histogram, now owned by `adapta-telemetry`
/// so the middleware's metrics registry and the experiment harness
/// share one implementation. Re-exported here for compatibility.
pub use adapta_telemetry::Histogram;

/// A named monotone counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter { value: 0 }
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// Population standard deviation of a slice — used as the *load imbalance
/// index* across servers in the load-sharing experiment.
///
/// ```
/// use adapta_sim::metrics::std_dev;
/// assert_eq!(std_dev(&[2.0, 2.0, 2.0]), 0.0);
/// assert!(std_dev(&[0.0, 4.0]) > 1.9);
/// ```
pub fn std_dev(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Coefficient of variation (`std_dev / mean`), zero when the mean is zero.
pub fn coeff_of_variation(values: &[f64]) -> f64 {
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    if mean == 0.0 {
        0.0
    } else {
        std_dev(values) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_quantiles_are_nearest_rank() {
        let mut h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.quantile(0.01), Duration::from_millis(1));
        assert_eq!(h.quantile(0.5), Duration::from_millis(50));
        assert_eq!(h.quantile(0.95), Duration::from_millis(95));
        assert_eq!(h.quantile(1.0), Duration::from_millis(100));
    }

    #[test]
    fn histogram_empty_is_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new();
        h.record(Duration::from_millis(10));
        h.record(Duration::from_millis(30));
        assert_eq!(h.mean(), Duration::from_millis(20));
    }

    #[test]
    fn histogram_merge_combines_samples() {
        let mut a = Histogram::new();
        a.record(Duration::from_millis(1));
        let mut b = Histogram::new();
        b.record(Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), Duration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn histogram_rejects_bad_quantile() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn std_dev_of_uniform_is_zero() {
        assert_eq!(std_dev(&[5.0; 10]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn coeff_of_variation_normalises() {
        let low = coeff_of_variation(&[9.0, 10.0, 11.0]);
        let high = coeff_of_variation(&[1.0, 10.0, 19.0]);
        assert!(high > low);
    }
}
