//! Time sources: a shared [`Clock`] trait with real and virtual
//! implementations.
//!
//! All time-dependent components in the workspace (monitors, simulated
//! hosts, transports with latency models) read time through a
//! [`Clock`] so that experiments can run under a [`VirtualClock`] and be
//! perfectly reproducible, while deployments use [`RealClock`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A point in simulated (or real, relative) time, measured in nanoseconds
/// since the clock's epoch.
///
/// `SimTime` is a plain value type: copy it, compare it, subtract two of
/// them to get a [`Duration`].
///
/// ```
/// use adapta_sim::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_secs(5);
/// assert_eq!(t - SimTime::ZERO, Duration::from_secs(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The clock epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time point `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates a time point `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (fractional part truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

/// A monotone time source.
///
/// Implementations must be cheap to clone (they are shared via [`Arc`])
/// and callable from any thread.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current time.
    fn now(&self) -> SimTime;

    /// Blocks the calling thread for (at least) `d`.
    ///
    /// Under a [`VirtualClock`] this spins on the virtual time and yields,
    /// so it should only be used from threads co-operating with a driver
    /// that advances the clock; simulation code should prefer the
    /// event [`Scheduler`](crate::scheduler::Scheduler).
    fn sleep(&self, d: Duration);
}

/// Wall-clock time relative to the moment the clock was created.
///
/// ```
/// use adapta_sim::{Clock, RealClock};
/// let clock = RealClock::new();
/// let t0 = clock.now();
/// assert!(clock.now() >= t0);
/// ```
#[derive(Debug, Clone)]
pub struct RealClock {
    origin: std::time::Instant,
}

impl RealClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        RealClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> SimTime {
        SimTime(self.origin.elapsed().as_nanos() as u64)
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A manually-advanced clock for deterministic tests and experiments.
///
/// Cloning a `VirtualClock` yields a handle to the *same* underlying
/// time, so a clock can be shared between hosts, monitors and transports.
///
/// ```
/// use adapta_sim::{Clock, VirtualClock};
/// use std::time::Duration;
///
/// let clock = VirtualClock::new();
/// let view = clock.clone();
/// clock.advance(Duration::from_secs(60));
/// assert_eq!(view.now().as_secs(), 60);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a virtual clock at time zero.
    pub fn new() -> Self {
        VirtualClock {
            nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Moves time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Sets the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time: virtual clocks are
    /// monotone like real ones.
    pub fn advance_to(&self, t: SimTime) {
        let prev = self.nanos.swap(t.as_nanos(), Ordering::SeqCst);
        assert!(
            prev <= t.as_nanos(),
            "virtual clock moved backwards: {prev} -> {}",
            t.as_nanos()
        );
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        let deadline = self.now() + d;
        while self.now() < deadline {
            std::thread::yield_now();
        }
    }
}

/// Convenience alias used across the workspace for a shared clock handle.
pub type SharedClock = Arc<dyn Clock>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_round_trips() {
        let t = SimTime::from_secs(2) + Duration::from_millis(500);
        assert_eq!(t.as_nanos(), 2_500_000_000);
        assert_eq!(t.as_secs(), 2);
        assert_eq!(t - SimTime::from_secs(1), Duration::from_millis(1500));
    }

    #[test]
    fn simtime_since_saturates() {
        assert_eq!(SimTime::ZERO.since(SimTime::from_secs(5)), Duration::ZERO);
    }

    #[test]
    fn virtual_clock_is_shared_between_clones() {
        let c = VirtualClock::new();
        let view = c.clone();
        c.advance(Duration::from_secs(3));
        assert_eq!(view.now(), SimTime::from_secs(3));
    }

    #[test]
    fn virtual_clock_advance_to_is_monotone() {
        let c = VirtualClock::new();
        c.advance_to(SimTime::from_secs(10));
        assert_eq!(c.now().as_secs(), 10);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn virtual_clock_rejects_time_travel() {
        let c = VirtualClock::new();
        c.advance_to(SimTime::from_secs(10));
        c.advance_to(SimTime::from_secs(5));
    }

    #[test]
    fn real_clock_is_monotone() {
        let c = RealClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }
}
