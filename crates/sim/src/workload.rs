//! Seeded workload generators.
//!
//! Experiments use two standard client models:
//!
//! * **closed loop** — a fixed population of clients, each issuing one
//!   request, waiting for the reply, then thinking for an exponentially
//!   distributed time ([`ClosedLoop`]);
//! * **open loop** — requests arrive as a Poisson process regardless of
//!   completions ([`PoissonArrivals`]).
//!
//! All generators are deterministic given a seed.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws an exponentially distributed duration with the given mean.
///
/// ```
/// use adapta_sim::workload::exp_duration;
/// use rand::{rngs::StdRng, SeedableRng};
/// use std::time::Duration;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let d = exp_duration(&mut rng, Duration::from_millis(100));
/// assert!(d > Duration::ZERO);
/// ```
pub fn exp_duration(rng: &mut impl Rng, mean: Duration) -> Duration {
    // Inverse-CDF sampling; `1 - u` avoids ln(0).
    let u: f64 = rng.gen::<f64>();
    let x = -(1.0 - u).ln();
    Duration::from_nanos((mean.as_nanos() as f64 * x) as u64)
}

/// An endless stream of Poisson interarrival gaps with a given rate
/// (requests per second).
///
/// ```
/// use adapta_sim::workload::PoissonArrivals;
///
/// let mut arrivals = PoissonArrivals::new(100.0, 42);
/// let gaps: Vec<_> = (0..1000).map(|_| arrivals.next_gap()).collect();
/// let mean_s: f64 = gaps.iter().map(|d| d.as_secs_f64()).sum::<f64>() / 1000.0;
/// assert!((mean_s - 0.01).abs() < 0.002, "mean gap should be ~1/rate");
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean_gap: Duration,
    rng: StdRng,
}

impl PoissonArrivals {
    /// Creates a process with `rate` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        PoissonArrivals {
            mean_gap: Duration::from_secs_f64(1.0 / rate),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The gap until the next arrival.
    pub fn next_gap(&mut self) -> Duration {
        exp_duration(&mut self.rng, self.mean_gap)
    }
}

/// A closed-loop client population: think times are exponential with the
/// configured mean, one stream per client, all derived from one seed.
#[derive(Debug, Clone)]
pub struct ClosedLoop {
    mean_think: Duration,
    rngs: Vec<StdRng>,
}

impl ClosedLoop {
    /// Creates `clients` independent think-time streams.
    pub fn new(clients: usize, mean_think: Duration, seed: u64) -> Self {
        ClosedLoop {
            mean_think,
            rngs: (0..clients)
                .map(|i| {
                    StdRng::seed_from_u64(
                        seed.wrapping_add(i as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    )
                })
                .collect(),
        }
    }

    /// Number of clients in the population.
    pub fn clients(&self) -> usize {
        self.rngs.len()
    }

    /// Draws the next think time for `client`.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn think_time(&mut self, client: usize) -> Duration {
        let mean = self.mean_think;
        exp_duration(&mut self.rngs[client], mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_duration_has_requested_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean = Duration::from_millis(50);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| exp_duration(&mut rng, mean).as_secs_f64())
            .sum();
        let observed = total / n as f64;
        assert!((observed - 0.05).abs() < 0.003, "observed mean {observed}");
    }

    #[test]
    fn poisson_is_deterministic_for_a_seed() {
        let mut a = PoissonArrivals::new(10.0, 99);
        let mut b = PoissonArrivals::new(10.0, 99);
        for _ in 0..100 {
            assert_eq!(a.next_gap(), b.next_gap());
        }
    }

    #[test]
    fn poisson_seeds_differ() {
        let mut a = PoissonArrivals::new(10.0, 1);
        let mut b = PoissonArrivals::new(10.0, 2);
        let same = (0..20).filter(|_| a.next_gap() == b.next_gap()).count();
        assert!(same < 5);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_rejects_zero_rate() {
        PoissonArrivals::new(0.0, 0);
    }

    #[test]
    fn closed_loop_clients_are_independent_streams() {
        let mut w = ClosedLoop::new(2, Duration::from_millis(100), 7);
        let a: Vec<_> = (0..5).map(|_| w.think_time(0)).collect();
        let mut w2 = ClosedLoop::new(2, Duration::from_millis(100), 7);
        let b: Vec<_> = (0..5).map(|_| w2.think_time(1)).collect();
        assert_ne!(a, b, "per-client streams should differ");
        // Same seed, same client: identical.
        let mut w3 = ClosedLoop::new(2, Duration::from_millis(100), 7);
        let a2: Vec<_> = (0..5).map(|_| w3.think_time(0)).collect();
        assert_eq!(a, a2);
    }
}
