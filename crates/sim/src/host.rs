//! Simulated hosts with Linux-style load averages.
//!
//! The paper's `LoadAvg` monitor reads `/proc/loadavg`: the number of
//! jobs in the run queue, exponentially damped over 1, 5 and 15 minutes,
//! sampled every 5 seconds. [`LoadAvg`] implements exactly that recurrence
//! and [`SimHost`] feeds it from a simulated ready queue: requests being
//! served plus a configurable amount of background load.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::clock::SimTime;

/// Sampling interval of the Linux load-average estimator.
pub const LOADAVG_SAMPLE: Duration = Duration::from_secs(5);

/// Linux-style 1/5/15-minute exponentially-damped load averages.
///
/// Every [`LOADAVG_SAMPLE`] the estimator folds the instantaneous number
/// of runnable jobs `n` into each average:
/// `load ← load·e + n·(1−e)` with `e = exp(−5s/τ)` for
/// `τ ∈ {60s, 300s, 900s}`.
///
/// ```
/// use adapta_sim::{LoadAvg, SimTime};
/// use std::time::Duration;
///
/// let mut la = LoadAvg::new();
/// // A constant queue of 4 jobs for 10 minutes converges towards 4.
/// la.advance(SimTime::from_secs(600), 4.0);
/// let (one, five, fifteen) = la.values();
/// assert!((one - 4.0).abs() < 0.01);
/// assert!(five > 3.0 && five < 4.0);
/// assert!(fifteen > 1.0 && fifteen < five);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoadAvg {
    one: f64,
    five: f64,
    fifteen: f64,
    /// Time of the last absorbed 5-second sample.
    sampled_at: SimTime,
}

const EXP_1: f64 = 0.920_044_414_629_323; // exp(-5/60)
const EXP_5: f64 = 0.983_471_453_716_5; // exp(-5/300)
const EXP_15: f64 = 0.994_459_848_486_6; // exp(-5/900)

impl LoadAvg {
    /// A load average starting at zero at time zero.
    pub fn new() -> Self {
        LoadAvg {
            one: 0.0,
            five: 0.0,
            fifteen: 0.0,
            sampled_at: SimTime::ZERO,
        }
    }

    /// The `(1min, 5min, 15min)` averages as of the last absorbed sample.
    pub fn values(&self) -> (f64, f64, f64) {
        (self.one, self.five, self.fifteen)
    }

    /// Absorbs all 5-second samples between the last update and `now`,
    /// assuming the runnable-job count was a constant `jobs` throughout.
    ///
    /// Callers that change the job count must call `advance` *before*
    /// each change so every interval is folded with the right count.
    pub fn advance(&mut self, now: SimTime, jobs: f64) {
        while self.sampled_at + LOADAVG_SAMPLE <= now {
            self.sampled_at += LOADAVG_SAMPLE;
            self.one = self.one * EXP_1 + jobs * (1.0 - EXP_1);
            self.five = self.five * EXP_5 + jobs * (1.0 - EXP_5);
            self.fifteen = self.fifteen * EXP_15 + jobs * (1.0 - EXP_15);
        }
    }
}

impl Default for LoadAvg {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
struct HostState {
    active: u32,
    background: f64,
    load: LoadAvg,
    total_requests: u64,
}

/// A simulated machine: a named host with a ready queue made of in-flight
/// requests plus background load, and the resulting load averages.
///
/// `SimHost` is a cheap cloneable handle to shared state, so a server
/// servant, a monitor source and the experiment driver can all observe
/// the same machine. All methods take the current time explicitly so the
/// host works under any clock discipline.
///
/// ```
/// use adapta_sim::{SimHost, SimTime};
/// use std::time::Duration;
///
/// let host = SimHost::new("node1", Duration::from_millis(20));
/// host.set_background(SimTime::ZERO, 2.0);
/// host.begin_request(SimTime::ZERO);
/// // 3 runnable jobs for a minute pushes the 1-min average towards 3.
/// let (one, _, _) = host.load_avg(SimTime::from_secs(120));
/// assert!(one > 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimHost {
    name: Arc<str>,
    base_service: Duration,
    state: Arc<Mutex<HostState>>,
}

impl SimHost {
    /// Creates a host. `base_service` is the no-contention service time
    /// for one request.
    pub fn new(name: impl Into<Arc<str>>, base_service: Duration) -> Self {
        SimHost {
            name: name.into(),
            base_service,
            state: Arc::new(Mutex::new(HostState {
                active: 0,
                background: 0.0,
                load: LoadAvg::new(),
                total_requests: 0,
            })),
        }
    }

    /// The host's name (used as the trading-offer `Host` property).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured no-contention service time.
    pub fn base_service(&self) -> Duration {
        self.base_service
    }

    /// Instantaneous runnable-job count (in-flight requests + background).
    pub fn ready_len(&self, now: SimTime) -> f64 {
        let mut s = self.state.lock();
        let jobs = s.active as f64 + s.background;
        s.load.advance(now, jobs);
        jobs
    }

    /// Replaces the background load (e.g. "another user started a build").
    pub fn set_background(&self, now: SimTime, jobs: f64) {
        assert!(jobs >= 0.0, "background load must be non-negative");
        let mut s = self.state.lock();
        let prev = s.active as f64 + s.background;
        s.load.advance(now, prev);
        s.background = jobs;
    }

    /// Current background load.
    pub fn background(&self, _now: SimTime) -> f64 {
        self.state.lock().background
    }

    /// Registers the start of a request's service.
    pub fn begin_request(&self, now: SimTime) {
        let mut s = self.state.lock();
        let prev = s.active as f64 + s.background;
        s.load.advance(now, prev);
        s.active += 1;
        s.total_requests += 1;
    }

    /// Registers the completion of a request's service.
    ///
    /// # Panics
    ///
    /// Panics if there is no request in flight.
    pub fn end_request(&self, now: SimTime) {
        let mut s = self.state.lock();
        assert!(s.active > 0, "end_request without matching begin_request");
        let prev = s.active as f64 + s.background;
        s.load.advance(now, prev);
        s.active -= 1;
    }

    /// Number of requests ever started on this host.
    pub fn total_requests(&self) -> u64 {
        self.state.lock().total_requests
    }

    /// The `(1min, 5min, 15min)` load averages at `now`.
    pub fn load_avg(&self, now: SimTime) -> (f64, f64, f64) {
        let mut s = self.state.lock();
        let jobs = s.active as f64 + s.background;
        s.load.advance(now, jobs);
        s.load.values()
    }

    /// Service time for a request arriving at `now` under a
    /// processor-sharing approximation: the base time stretched by the
    /// number of jobs competing for the CPU (including this one).
    pub fn service_time(&self, now: SimTime) -> Duration {
        let mut s = self.state.lock();
        let jobs = s.active as f64 + s.background;
        s.load.advance(now, jobs);
        // `jobs` already includes this request if begin_request was
        // called; competing share is at least 1.
        let factor = jobs.max(1.0);
        Duration::from_nanos((self.base_service.as_nanos() as f64 * factor) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadavg_starts_at_zero() {
        assert_eq!(LoadAvg::new().values(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn loadavg_converges_to_constant_load() {
        let mut la = LoadAvg::new();
        la.advance(SimTime::from_secs(3600), 2.0);
        let (one, five, fifteen) = la.values();
        assert!((one - 2.0).abs() < 1e-3);
        assert!((five - 2.0).abs() < 1e-2);
        assert!((fifteen - 2.0).abs() < 0.1);
    }

    #[test]
    fn loadavg_one_minute_reacts_fastest() {
        let mut la = LoadAvg::new();
        la.advance(SimTime::from_secs(60), 4.0);
        let (one, five, fifteen) = la.values();
        assert!(one > five && five > fifteen);
        assert!(
            one > 2.0,
            "1-min average should react within a minute: {one}"
        );
    }

    #[test]
    fn loadavg_decays_when_load_stops() {
        let mut la = LoadAvg::new();
        la.advance(SimTime::from_secs(300), 4.0);
        let peak = la.values().0;
        la.advance(SimTime::from_secs(600), 0.0);
        assert!(la.values().0 < peak * 0.1);
    }

    #[test]
    fn loadavg_partial_interval_is_deferred() {
        let mut la = LoadAvg::new();
        la.advance(SimTime::from_secs(4), 100.0);
        assert_eq!(la.values(), (0.0, 0.0, 0.0));
        la.advance(SimTime::from_secs(5), 100.0);
        assert!(la.values().0 > 0.0);
    }

    #[test]
    fn host_tracks_active_and_background_jobs() {
        let h = SimHost::new("n", Duration::from_millis(10));
        assert_eq!(h.ready_len(SimTime::ZERO), 0.0);
        h.begin_request(SimTime::ZERO);
        h.set_background(SimTime::ZERO, 1.5);
        assert_eq!(h.ready_len(SimTime::ZERO), 2.5);
        h.end_request(SimTime::ZERO);
        assert_eq!(h.ready_len(SimTime::ZERO), 1.5);
    }

    #[test]
    fn host_service_time_stretches_with_load() {
        let h = SimHost::new("n", Duration::from_millis(10));
        let idle = h.service_time(SimTime::ZERO);
        assert_eq!(idle, Duration::from_millis(10));
        h.set_background(SimTime::ZERO, 3.0);
        assert_eq!(h.service_time(SimTime::ZERO), Duration::from_millis(30));
    }

    #[test]
    #[should_panic(expected = "without matching")]
    fn host_end_without_begin_panics() {
        SimHost::new("n", Duration::from_millis(1)).end_request(SimTime::ZERO);
    }

    #[test]
    fn host_clones_share_state() {
        let h = SimHost::new("n", Duration::from_millis(1));
        let view = h.clone();
        h.begin_request(SimTime::ZERO);
        assert_eq!(view.ready_len(SimTime::ZERO), 1.0);
        assert_eq!(view.total_requests(), 1);
    }

    #[test]
    fn host_load_average_follows_sustained_traffic() {
        let h = SimHost::new("n", Duration::from_millis(10));
        h.set_background(SimTime::ZERO, 0.0);
        h.begin_request(SimTime::ZERO);
        h.begin_request(SimTime::ZERO);
        let (one, _, _) = h.load_avg(SimTime::from_secs(180));
        assert!(one > 1.8, "sustained 2 jobs should show ~2.0, got {one}");
    }
}
