//! Simulation substrate for the `adapta` workspace.
//!
//! The paper's evaluation ran on departmental Linux machines, reading
//! `/proc/loadavg` and sharing load between live CORBA servers. This crate
//! provides the laptop-scale, deterministic equivalent:
//!
//! * [`clock`] — a [`Clock`] abstraction with a real
//!   implementation and a [`VirtualClock`] that tests
//!   and experiments can advance manually;
//! * [`scheduler`] — a discrete-event [`Scheduler`]
//!   used by the experiment harness;
//! * [`host`] — [`SimHost`], a simulated machine with a
//!   ready queue and Linux-style 1/5/15-minute load averages, the signal
//!   the paper's `LoadAvg` monitor observes;
//! * [`workload`] — seeded open- and closed-loop request generators;
//! * [`metrics`] — latency/counter collection used to print experiment
//!   tables.
//!
//! Everything here is deterministic given a seed, so the experiments in
//! `adapta-bench` are exactly reproducible.

pub mod clock;
pub mod host;
pub mod metrics;
pub mod scheduler;
pub mod workload;

pub use clock::{Clock, RealClock, SimTime, VirtualClock};
pub use host::{LoadAvg, SimHost};
pub use metrics::{Counter, Histogram};
pub use scheduler::Scheduler;
