//! Property tests for the simulation substrate: load-average bounds,
//! histogram quantile monotonicity, scheduler ordering.

use std::time::Duration;

use adapta_sim::{Histogram, LoadAvg, Scheduler, SimHost, SimTime};
use proptest::prelude::*;

proptest! {
    /// The exponentially-damped averages never overshoot the extremes
    /// of the job counts they absorbed.
    #[test]
    fn loadavg_stays_within_job_bounds(
        phases in proptest::collection::vec((1u64..400, 0u32..16), 1..8),
    ) {
        let mut la = LoadAvg::new();
        let mut t = SimTime::ZERO;
        let max_jobs = phases.iter().map(|(_, j)| *j as f64).fold(0.0, f64::max);
        for (secs, jobs) in phases {
            t += Duration::from_secs(secs);
            la.advance(t, jobs as f64);
            let (one, five, fifteen) = la.values();
            for avg in [one, five, fifteen] {
                prop_assert!(avg >= -1e-9, "negative average {avg}");
                prop_assert!(avg <= max_jobs + 1e-9, "average {avg} above max {max_jobs}");
            }
        }
    }

    /// Constant load converges to that load from below.
    #[test]
    fn loadavg_converges_monotonically(jobs in 1u32..12) {
        let mut la = LoadAvg::new();
        let mut prev = 0.0;
        for minute in 1..=30u64 {
            la.advance(SimTime::from_secs(minute * 60), jobs as f64);
            let (one, _, _) = la.values();
            prop_assert!(one + 1e-9 >= prev, "1-min average decreased under constant load");
            prev = one;
        }
        prop_assert!((prev - jobs as f64).abs() < 0.01);
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn histogram_quantiles_are_monotone(
        samples in proptest::collection::vec(0u64..10_000, 1..200),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..6),
    ) {
        let mut h = Histogram::new();
        for ms in &samples {
            h.record(Duration::from_micros(*ms));
        }
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = Duration::ZERO;
        for q in qs {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile not monotone");
            prev = v;
        }
        let min = Duration::from_micros(*samples.iter().min().unwrap());
        let max = Duration::from_micros(*samples.iter().max().unwrap());
        prop_assert!(h.quantile(0.0) >= min || h.quantile(0.0) == min);
        prop_assert_eq!(h.quantile(1.0), max);
    }

    /// The scheduler runs every event exactly once, in time order.
    #[test]
    fn scheduler_runs_all_events_in_order(
        times in proptest::collection::vec(0u64..10_000, 0..64),
    ) {
        let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
        for &t in &times {
            sched.at(SimTime::from_millis(t), move |log, _| log.push(t));
        }
        let mut log = Vec::new();
        sched.run_to_completion(&mut log);
        prop_assert_eq!(log.len(), times.len());
        let mut expected = times.clone();
        expected.sort_unstable();
        // Stable for ties because ties break by insertion order; sorted
        // comparison is enough here.
        let mut got = log.clone();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
        for pair in log.windows(2) {
            prop_assert!(pair[0] <= pair[1], "out of order: {log:?}");
        }
    }

    /// begin/end bookkeeping never lets ready length go negative and
    /// service time scales with occupancy.
    #[test]
    fn host_occupancy_is_consistent(ops in proptest::collection::vec(any::<bool>(), 0..64)) {
        let host = SimHost::new("p", Duration::from_millis(10));
        let mut active = 0u32;
        let mut t = SimTime::ZERO;
        for begin in ops {
            t += Duration::from_millis(100);
            if begin {
                host.begin_request(t);
                active += 1;
            } else if active > 0 {
                host.end_request(t);
                active -= 1;
            }
            prop_assert_eq!(host.ready_len(t), active as f64);
            let st = host.service_time(t);
            prop_assert!(st >= Duration::from_millis(10));
        }
    }
}
