//! Property tests for the type system and the IDL parser.

use adapta_idl::{parse_idl, ObjRefData, TypeCode, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Long),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Double),
        "[a-z ]{0,16}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(Value::Map),
        ]
    })
}

proptest! {
    /// `Any` accepts every value; every value is accepted by its own
    /// type code.
    #[test]
    fn type_codes_are_sound(v in value_strategy()) {
        prop_assert!(TypeCode::Any.accepts(&v));
        let tc = v.type_code();
        prop_assert!(tc.accepts(&v), "value {v:?} rejected by its own type {tc}");
    }

    /// `Long` always coerces into `Double` parameters.
    #[test]
    fn long_coerces_to_double(n in any::<i64>()) {
        prop_assert!(TypeCode::Double.accepts(&Value::Long(n)));
        prop_assert_eq!(Value::Long(n).as_double(), Some(n as f64));
    }

    /// The IDL parser never panics on arbitrary input.
    #[test]
    fn idl_parser_is_total(src in ".{0,200}") {
        let _ = parse_idl(&src);
    }

    /// Generated well-formed interfaces parse and expose their
    /// operations.
    #[test]
    fn generated_interfaces_parse(
        iface in "[A-Z][A-Za-z0-9]{0,10}",
        ops in proptest::collection::vec(
            ("[a-z][A-Za-z0-9_]{0,10}", 0usize..4, any::<bool>()),
            1..6,
        ),
    ) {
        // Deduplicate operation names to keep the expectation simple.
        let mut seen = std::collections::HashSet::new();
        let ops: Vec<_> = ops
            .into_iter()
            .filter(|(name, _, _)| seen.insert(name.clone()) && name != "in")
            .collect();
        prop_assume!(!ops.is_empty());
        let mut src = format!("interface {iface} {{\n");
        for (name, arity, oneway) in &ops {
            let params: Vec<String> = (0..*arity)
                .map(|i| format!("in any p{i}"))
                .collect();
            let prefix = if *oneway { "oneway void" } else { "any" };
            src.push_str(&format!("  {prefix} {name}({});\n", params.join(", ")));
        }
        src.push_str("};\n");
        let defs = parse_idl(&src).expect("generated idl parses");
        prop_assert_eq!(defs.len(), 1);
        prop_assert_eq!(&defs[0].name, &iface);
        for (name, arity, oneway) in &ops {
            let op = defs[0].operation(name).expect("operation exists");
            prop_assert_eq!(op.params.len(), *arity);
            prop_assert_eq!(op.oneway, *oneway);
        }
    }

    /// Object-reference URIs round-trip for arbitrary printable content.
    #[test]
    fn objref_uris_round_trip(
        endpoint in "[ -~]{0,32}",
        key in "[ -~]{0,32}",
        type_id in "[ -~]{0,32}",
    ) {
        let r = ObjRefData::new(endpoint, key, type_id);
        prop_assert_eq!(ObjRefData::from_uri(&r.to_uri()), Some(r));
    }

    /// Map field lookup returns the first match and misses cleanly.
    #[test]
    fn map_lookup_semantics(
        fields in proptest::collection::vec(("[a-c]", any::<i64>()), 0..8),
        probe in "[a-e]",
    ) {
        let v = Value::Map(
            fields
                .iter()
                .map(|(k, n)| (k.clone(), Value::Long(*n)))
                .collect(),
        );
        let expected = fields.iter().find(|(k, _)| *k == probe).map(|(_, n)| *n);
        prop_assert_eq!(v.get(&probe).and_then(Value::as_long), expected);
    }
}
