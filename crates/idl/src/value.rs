//! Self-describing wire values — the CORBA `Any` analogue.

use std::fmt;

use bytes::Bytes;

use crate::typecode::TypeCode;

/// The data carried by an object reference: enough to reach the object
/// from any process.
///
/// This is the stringified-IOR payload: a transport endpoint, the object
/// key within that endpoint's adapter, and the interface (repository id)
/// the object claims to implement.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRefData {
    /// Transport endpoint, e.g. `inproc://node1` or `tcp://127.0.0.1:9001`.
    pub endpoint: String,
    /// Object key within the endpoint's object adapter.
    pub key: String,
    /// Interface name (repository id) of the most derived interface.
    pub type_id: String,
}

impl ObjRefData {
    /// Creates reference data from its three components.
    pub fn new(
        endpoint: impl Into<String>,
        key: impl Into<String>,
        type_id: impl Into<String>,
    ) -> Self {
        ObjRefData {
            endpoint: endpoint.into(),
            key: key.into(),
            type_id: type_id.into(),
        }
    }

    /// Stringified form (`adapta-ref:<endpoint>;<key>;<type_id>`), the
    /// IOR analogue. Components are percent-escaped where needed.
    pub fn to_uri(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    ';' => out.push_str("%3B"),
                    '%' => out.push_str("%25"),
                    c => out.push(c),
                }
            }
            out
        }
        format!(
            "adapta-ref:{};{};{}",
            esc(&self.endpoint),
            esc(&self.key),
            esc(&self.type_id)
        )
    }

    /// Parses the stringified form produced by [`to_uri`](Self::to_uri).
    pub fn from_uri(uri: &str) -> Option<Self> {
        fn unesc(s: &str) -> String {
            s.replace("%3B", ";").replace("%25", "%")
        }
        let rest = uri.strip_prefix("adapta-ref:")?;
        let mut parts = rest.split(';');
        let endpoint = unesc(parts.next()?);
        let key = unesc(parts.next()?);
        let type_id = unesc(parts.next()?);
        if parts.next().is_some() {
            return None;
        }
        Some(ObjRefData::new(endpoint, key, type_id))
    }
}

impl fmt::Display for ObjRefData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_uri())
    }
}

/// A dynamically-typed value as carried in requests and replies.
///
/// `Value` is the single currency of the whole stack: DII arguments,
/// DSI results, trading properties, monitor readings and script values
/// all map to it. It is deliberately structural — like LuaCorba, the
/// system type-checks at invocation time, not at compile time.
///
/// ```
/// use adapta_idl::Value;
///
/// let v = Value::map([
///     ("name", Value::from("LoadAvg")),
///     ("values", Value::from(vec![Value::from(0.5), Value::from(0.3)])),
/// ]);
/// assert_eq!(v.get("name").unwrap().as_str(), Some("LoadAvg"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// Absence of a value (maps to script `nil`, IDL `void`).
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Long(i64),
    /// A 64-bit float.
    Double(f64),
    /// A UTF-8 string (also used to ship script source code).
    Str(String),
    /// An opaque byte payload (images in the viewer example).
    Bytes(Bytes),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered set of named fields (struct / script-table analogue).
    Map(Vec<(String, Value)>),
    /// A remote object reference.
    ObjRef(ObjRefData),
}

impl Value {
    /// Builds a [`Value::Map`] from `(name, value)` pairs.
    pub fn map<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The structural type of this value.
    pub fn type_code(&self) -> TypeCode {
        match self {
            Value::Null => TypeCode::Void,
            Value::Bool(_) => TypeCode::Boolean,
            Value::Long(_) => TypeCode::Long,
            Value::Double(_) => TypeCode::Double,
            Value::Str(_) => TypeCode::Str,
            Value::Bytes(_) => TypeCode::Octets,
            Value::Seq(items) => {
                // Homogeneous sequences get a precise element type;
                // heterogeneous (or empty) ones are sequences of `any`.
                let inner = match items.split_first() {
                    Some((first, rest)) => {
                        let tc = first.type_code();
                        if rest.iter().all(|v| v.type_code() == tc) {
                            tc
                        } else {
                            TypeCode::Any
                        }
                    }
                    None => TypeCode::Any,
                };
                TypeCode::Sequence(Box::new(inner))
            }
            Value::Map(_) => TypeCode::AnyStruct,
            Value::ObjRef(data) => TypeCode::Object(data.type_id.clone()),
        }
    }

    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Long(_) => "long",
            Value::Double(_) => "double",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
            Value::ObjRef(_) => "objref",
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer, if this is a `Long` (or a `Double` with an integral
    /// value).
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Value::Long(n) => Some(*n),
            Value::Double(d) if d.fract() == 0.0 && d.is_finite() => Some(*d as i64),
            _ => None,
        }
    }

    /// The value as a float; `Long` coerces losslessly.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Long(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The byte payload, if this is `Bytes`.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The elements, if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is a `Map`.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(fields) => Some(fields),
            _ => None,
        }
    }

    /// The reference data, if this is an `ObjRef`.
    pub fn as_objref(&self) -> Option<&ObjRefData> {
        match self {
            Value::ObjRef(data) => Some(data),
            _ => None,
        }
    }

    /// Looks up a field by name in a `Map` (first match wins).
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element `i` of a `Seq`.
    pub fn at(&self, i: usize) -> Option<&Value> {
        self.as_seq().and_then(|s| s.get(i))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Long(n) => write!(f, "{n}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Seq(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Map(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}={v}")?;
                }
                write!(f, "}}")
            }
            Value::ObjRef(data) => write!(f, "{data}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(n: i32) -> Value {
        Value::Long(n as i64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Long(n)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Long(n as i64)
    }
}
impl From<f64> for Value {
    fn from(d: f64) -> Value {
        Value::Double(d)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Bytes> for Value {
    fn from(b: Bytes) -> Value {
        Value::Bytes(b)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Seq(items)
    }
}
impl From<ObjRefData> for Value {
    fn from(data: ObjRefData) -> Value {
        Value::ObjRef(data)
    }
}
impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Value {
        Value::Seq(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(42i64).as_long(), Some(42));
        assert_eq!(Value::from(42i64).as_double(), Some(42.0));
        assert_eq!(Value::from(2.5).as_double(), Some(2.5));
        assert_eq!(Value::from(2.0).as_long(), Some(2));
        assert_eq!(Value::from(2.5).as_long(), None);
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("hi").as_bool(), None);
    }

    #[test]
    fn map_lookup_finds_first_match() {
        let v = Value::map([("a", Value::from(1i64)), ("b", Value::from(2i64))]);
        assert_eq!(v.get("b").unwrap().as_long(), Some(2));
        assert!(v.get("z").is_none());
        assert!(Value::Null.get("a").is_none());
    }

    #[test]
    fn seq_indexing() {
        let v: Value = vec![Value::from(10i64), Value::from(20i64)].into();
        assert_eq!(v.at(1).unwrap().as_long(), Some(20));
        assert!(v.at(5).is_none());
    }

    #[test]
    fn objref_uri_round_trips() {
        let r = ObjRefData::new("tcp://127.0.0.1:9000", "mon;1", "EventMonitor");
        let uri = r.to_uri();
        assert_eq!(ObjRefData::from_uri(&uri), Some(r));
    }

    #[test]
    fn objref_uri_rejects_garbage() {
        assert!(ObjRefData::from_uri("http://x").is_none());
        assert!(ObjRefData::from_uri("adapta-ref:only-one-part").is_none());
        assert!(ObjRefData::from_uri("adapta-ref:a;b;c;d").is_none());
    }

    #[test]
    fn display_is_readable() {
        let v = Value::map([("n", Value::from(1i64))]);
        assert_eq!(v.to_string(), "{n=1}");
        let v: Value = vec![Value::from(true), Value::Null].into();
        assert_eq!(v.to_string(), "[true, null]");
    }

    #[test]
    fn kind_names_cover_all_variants() {
        let cases: Vec<(Value, &str)> = vec![
            (Value::Null, "null"),
            (Value::from(true), "bool"),
            (Value::from(1i64), "long"),
            (Value::from(1.0), "double"),
            (Value::from("x"), "string"),
            (Value::Bytes(Bytes::from_static(b"x")), "bytes"),
            (Value::Seq(vec![]), "sequence"),
            (Value::Map(vec![]), "map"),
            (Value::ObjRef(ObjRefData::new("e", "k", "T")), "objref"),
        ];
        for (v, kind) in cases {
            assert_eq!(v.kind(), kind);
        }
    }

    #[test]
    fn from_iterator_collects_into_seq() {
        let v: Value = (0..3i64).map(Value::from).collect();
        assert_eq!(v.as_seq().unwrap().len(), 3);
    }
}
