//! Structural type codes.

use std::fmt;

use crate::value::Value;

/// A structural description of a value's type, used by the interface
/// repository for argument checking and by the trading service for
/// property definitions.
///
/// `TypeCode` checking is *gradual*: [`TypeCode::Any`] accepts every
/// value, and `Long` values coerce to `Double` parameters (mirroring the
/// scripting language's single number type).
///
/// ```
/// use adapta_idl::{TypeCode, Value};
///
/// assert!(TypeCode::Double.accepts(&Value::from(3i64)));
/// assert!(!TypeCode::Str.accepts(&Value::from(3i64)));
/// assert!(TypeCode::Any.accepts(&Value::Null));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeCode {
    /// No value (operation results only).
    Void,
    /// Matches any value, including `Null`.
    Any,
    /// Booleans.
    Boolean,
    /// 64-bit integers.
    Long,
    /// 64-bit floats (accepts integers by coercion).
    Double,
    /// UTF-8 strings.
    Str,
    /// Opaque byte payloads.
    Octets,
    /// Homogeneous sequences.
    Sequence(Box<TypeCode>),
    /// Any map/struct value (field-level typing is dynamic).
    AnyStruct,
    /// A named struct with typed fields.
    Struct(Vec<(String, TypeCode)>),
    /// An object reference whose `type_id` must be a subtype of the given
    /// interface (subtype checking is done by the interface repository;
    /// structurally we compare names, with the empty string meaning "any
    /// object").
    Object(String),
}

impl TypeCode {
    /// True if `value` is acceptable where this type is expected.
    ///
    /// This is a *structural* check: object-reference subtyping beyond
    /// name equality is delegated to the interface repository by callers
    /// that have one.
    pub fn accepts(&self, value: &Value) -> bool {
        match (self, value) {
            (TypeCode::Any, _) => true,
            (TypeCode::Void, Value::Null) => true,
            (TypeCode::Boolean, Value::Bool(_)) => true,
            (TypeCode::Long, Value::Long(_)) => true,
            (TypeCode::Double, Value::Double(_) | Value::Long(_)) => true,
            (TypeCode::Str, Value::Str(_)) => true,
            (TypeCode::Octets, Value::Bytes(_)) => true,
            (TypeCode::Sequence(inner), Value::Seq(items)) => {
                items.iter().all(|item| inner.accepts(item))
            }
            (TypeCode::AnyStruct, Value::Map(_)) => true,
            (TypeCode::Struct(fields), Value::Map(entries)) => fields.iter().all(|(name, tc)| {
                entries
                    .iter()
                    .find(|(k, _)| k == name)
                    .is_some_and(|(_, v)| tc.accepts(v))
            }),
            (TypeCode::Object(want), Value::ObjRef(data)) => {
                want.is_empty() || *want == data.type_id
            }
            _ => false,
        }
    }
}

impl fmt::Display for TypeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeCode::Void => write!(f, "void"),
            TypeCode::Any => write!(f, "any"),
            TypeCode::Boolean => write!(f, "boolean"),
            TypeCode::Long => write!(f, "long"),
            TypeCode::Double => write!(f, "double"),
            TypeCode::Str => write!(f, "string"),
            TypeCode::Octets => write!(f, "octets"),
            TypeCode::Sequence(inner) => write!(f, "sequence<{inner}>"),
            TypeCode::AnyStruct => write!(f, "struct"),
            TypeCode::Struct(fields) => {
                write!(f, "struct{{")?;
                for (i, (name, tc)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {tc}")?;
                }
                write!(f, "}}")
            }
            TypeCode::Object(id) if id.is_empty() => write!(f, "Object"),
            TypeCode::Object(id) => write!(f, "Object<{id}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ObjRefData;

    #[test]
    fn primitives_accept_their_values_only() {
        assert!(TypeCode::Boolean.accepts(&Value::from(true)));
        assert!(!TypeCode::Boolean.accepts(&Value::from(1i64)));
        assert!(TypeCode::Long.accepts(&Value::from(1i64)));
        assert!(!TypeCode::Long.accepts(&Value::from(1.5)));
        assert!(TypeCode::Str.accepts(&Value::from("x")));
        assert!(!TypeCode::Void.accepts(&Value::from("x")));
        assert!(TypeCode::Void.accepts(&Value::Null));
    }

    #[test]
    fn double_accepts_long_by_coercion() {
        assert!(TypeCode::Double.accepts(&Value::from(7i64)));
        assert!(TypeCode::Double.accepts(&Value::from(7.5)));
    }

    #[test]
    fn sequences_check_all_elements() {
        let tc = TypeCode::Sequence(Box::new(TypeCode::Long));
        assert!(tc.accepts(&Value::Seq(vec![Value::from(1i64), Value::from(2i64)])));
        assert!(!tc.accepts(&Value::Seq(vec![Value::from(1i64), Value::from("x")])));
        assert!(tc.accepts(&Value::Seq(vec![])));
    }

    #[test]
    fn structs_require_typed_fields() {
        let tc = TypeCode::Struct(vec![("load".into(), TypeCode::Double)]);
        assert!(tc.accepts(&Value::map([("load", Value::from(0.5))])));
        assert!(!tc.accepts(&Value::map([("load", Value::from("high"))])));
        assert!(!tc.accepts(&Value::map([("other", Value::from(0.5))])));
        // Extra fields are fine (width subtyping).
        assert!(tc.accepts(&Value::map([
            ("load", Value::from(0.5)),
            ("host", Value::from("n1")),
        ])));
    }

    #[test]
    fn object_type_matches_by_name() {
        let r = Value::ObjRef(ObjRefData::new("e", "k", "EventMonitor"));
        assert!(TypeCode::Object("EventMonitor".into()).accepts(&r));
        assert!(!TypeCode::Object("Trader".into()).accepts(&r));
        assert!(TypeCode::Object(String::new()).accepts(&r));
    }

    #[test]
    fn any_accepts_everything() {
        for v in [
            Value::Null,
            Value::from(false),
            Value::from(0i64),
            Value::from("s"),
            Value::Seq(vec![]),
        ] {
            assert!(TypeCode::Any.accepts(&v));
        }
    }

    #[test]
    fn display_round_names() {
        assert_eq!(
            TypeCode::Sequence(Box::new(TypeCode::Double)).to_string(),
            "sequence<double>"
        );
        assert_eq!(TypeCode::Object("X".into()).to_string(), "Object<X>");
        assert_eq!(TypeCode::Object(String::new()).to_string(), "Object");
    }
}
