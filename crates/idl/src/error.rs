//! Error type shared by the IDL parser, repository and type checks.

use std::error::Error;
use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdlError {
    /// The IDL source failed to parse.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A value did not match the expected type code.
    TypeMismatch {
        /// What the interface demanded.
        expected: String,
        /// What was supplied.
        found: String,
    },
    /// An interface name was not found in the repository.
    UnknownInterface(String),
    /// An operation is not declared by an interface (or its bases).
    UnknownOperation {
        /// The interface searched.
        interface: String,
        /// The missing operation.
        operation: String,
    },
    /// A definition with this name already exists.
    Duplicate(String),
    /// An operation was invoked with the wrong number of arguments.
    ArityMismatch {
        /// The operation name.
        operation: String,
        /// Parameters declared.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
}

impl fmt::Display for IdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdlError::Parse { line, message } => {
                write!(f, "idl parse error at line {line}: {message}")
            }
            IdlError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            IdlError::UnknownInterface(name) => write!(f, "unknown interface `{name}`"),
            IdlError::UnknownOperation {
                interface,
                operation,
            } => write!(f, "interface `{interface}` has no operation `{operation}`"),
            IdlError::Duplicate(name) => write!(f, "duplicate definition of `{name}`"),
            IdlError::ArityMismatch {
                operation,
                expected,
                found,
            } => write!(
                f,
                "operation `{operation}` takes {expected} argument(s), {found} supplied"
            ),
        }
    }
}

impl Error for IdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = IdlError::Parse {
            line: 3,
            message: "expected `;`".into(),
        };
        assert_eq!(e.to_string(), "idl parse error at line 3: expected `;`");
        let e = IdlError::UnknownOperation {
            interface: "EventMonitor".into(),
            operation: "frob".into(),
        };
        assert!(e.to_string().contains("EventMonitor"));
        assert!(e.to_string().contains("frob"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<IdlError>();
    }
}
