//! Run-time interface descriptions — the Interface Repository analogue.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::error::IdlError;
use crate::typecode::TypeCode;
use crate::value::Value;
use crate::Result;

/// A declared operation parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDef {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub type_code: TypeCode,
}

impl ParamDef {
    /// Creates a parameter definition.
    pub fn new(name: impl Into<String>, type_code: TypeCode) -> Self {
        ParamDef {
            name: name.into(),
            type_code,
        }
    }
}

/// A declared operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDef {
    /// Operation name.
    pub name: String,
    /// Declared parameters, in order.
    pub params: Vec<ParamDef>,
    /// Result type ([`TypeCode::Void`] for `void`).
    pub result: TypeCode,
    /// True for `oneway` operations: fire-and-forget, no reply.
    pub oneway: bool,
}

impl OperationDef {
    /// Creates a two-way operation definition.
    pub fn new(name: impl Into<String>, params: Vec<ParamDef>, result: TypeCode) -> Self {
        OperationDef {
            name: name.into(),
            params,
            result,
            oneway: false,
        }
    }

    /// Creates a `oneway void` operation definition.
    pub fn oneway(name: impl Into<String>, params: Vec<ParamDef>) -> Self {
        OperationDef {
            name: name.into(),
            params,
            result: TypeCode::Void,
            oneway: true,
        }
    }

    /// Checks an argument list against the declared parameters.
    ///
    /// # Errors
    ///
    /// Returns [`IdlError::ArityMismatch`] or [`IdlError::TypeMismatch`].
    pub fn check_args(&self, args: &[Value]) -> Result<()> {
        if args.len() != self.params.len() {
            return Err(IdlError::ArityMismatch {
                operation: self.name.clone(),
                expected: self.params.len(),
                found: args.len(),
            });
        }
        for (param, arg) in self.params.iter().zip(args) {
            if !param.type_code.accepts(arg) {
                return Err(IdlError::TypeMismatch {
                    expected: format!("{} for parameter `{}`", param.type_code, param.name),
                    found: arg.kind().to_owned(),
                });
            }
        }
        Ok(())
    }
}

/// A declared interface: a name, optional bases, and operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InterfaceDef {
    /// Interface name (doubles as the repository id).
    pub name: String,
    /// Names of directly inherited interfaces.
    pub bases: Vec<String>,
    /// Operations declared directly on this interface.
    pub operations: Vec<OperationDef>,
}

impl InterfaceDef {
    /// Creates an interface with no bases.
    pub fn new(name: impl Into<String>) -> Self {
        InterfaceDef {
            name: name.into(),
            bases: Vec::new(),
            operations: Vec::new(),
        }
    }

    /// Adds a base interface; returns `self` for chaining.
    pub fn inherits(mut self, base: impl Into<String>) -> Self {
        self.bases.push(base.into());
        self
    }

    /// Adds an operation; returns `self` for chaining.
    pub fn with_operation(mut self, op: OperationDef) -> Self {
        self.operations.push(op);
        self
    }

    /// Finds an operation declared *directly* on this interface.
    pub fn operation(&self, name: &str) -> Option<&OperationDef> {
        self.operations.iter().find(|op| op.name == name)
    }
}

/// A registry of interface definitions shared across a process.
///
/// The repository is what makes fully dynamic invocation safe: given only
/// an interface *name* obtained at run time (e.g. from a trading offer), a
/// client can discover operations and have its argument lists validated —
/// the paper's "identification of new service types and the integration
/// of their instances into a dynamically assembled application".
///
/// ```
/// use adapta_idl::{InterfaceDef, InterfaceRepository, OperationDef, TypeCode};
///
/// let repo = InterfaceRepository::new();
/// repo.register(
///     InterfaceDef::new("Hello")
///         .with_operation(OperationDef::new("hello", vec![], TypeCode::Str)),
/// ).unwrap();
/// assert!(repo.lookup_operation("Hello", "hello").is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct InterfaceRepository {
    inner: Arc<Mutex<HashMap<String, Arc<InterfaceDef>>>>,
}

impl InterfaceRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        InterfaceRepository {
            inner: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<InterfaceDef>>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers an interface definition.
    ///
    /// # Errors
    ///
    /// Returns [`IdlError::Duplicate`] if the name is taken, or
    /// [`IdlError::UnknownInterface`] if a base is not registered.
    pub fn register(&self, def: InterfaceDef) -> Result<()> {
        let mut map = self.lock();
        for base in &def.bases {
            if !map.contains_key(base) {
                return Err(IdlError::UnknownInterface(base.clone()));
            }
        }
        if map.contains_key(&def.name) {
            return Err(IdlError::Duplicate(def.name));
        }
        map.insert(def.name.clone(), Arc::new(def));
        Ok(())
    }

    /// Registers every interface parsed from `defs` (used with
    /// [`parse_idl`](crate::parse_idl)).
    pub fn register_all(&self, defs: impl IntoIterator<Item = InterfaceDef>) -> Result<()> {
        for def in defs {
            self.register(def)?;
        }
        Ok(())
    }

    /// Looks up an interface by name.
    ///
    /// # Errors
    ///
    /// Returns [`IdlError::UnknownInterface`] when absent.
    pub fn lookup(&self, name: &str) -> Result<Arc<InterfaceDef>> {
        self.lock()
            .get(name)
            .cloned()
            .ok_or_else(|| IdlError::UnknownInterface(name.to_owned()))
    }

    /// True if the interface is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.lock().contains_key(name)
    }

    /// Names of all registered interfaces (unspecified order).
    pub fn interface_names(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// Finds `operation` on `interface`, searching inherited interfaces
    /// depth-first (the CORBA `_is_a`-style walk).
    ///
    /// # Errors
    ///
    /// Returns [`IdlError::UnknownInterface`] or
    /// [`IdlError::UnknownOperation`].
    pub fn lookup_operation(&self, interface: &str, operation: &str) -> Result<OperationDef> {
        let def = self.lookup(interface)?;
        if let Some(op) = def.operation(operation) {
            return Ok(op.clone());
        }
        for base in &def.bases {
            if let Ok(op) = self.lookup_operation(base, operation) {
                return Ok(op);
            }
        }
        Err(IdlError::UnknownOperation {
            interface: interface.to_owned(),
            operation: operation.to_owned(),
        })
    }

    /// True if `derived` equals `base` or (transitively) inherits it.
    pub fn is_a(&self, derived: &str, base: &str) -> bool {
        if derived == base {
            return true;
        }
        match self.lookup(derived) {
            Ok(def) => def.bases.iter().any(|b| self.is_a(b, base)),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_with_monitors() -> InterfaceRepository {
        let repo = InterfaceRepository::new();
        repo.register(
            InterfaceDef::new("BasicMonitor")
                .with_operation(OperationDef::new("getValue", vec![], TypeCode::Any))
                .with_operation(OperationDef::new(
                    "setValue",
                    vec![ParamDef::new("v", TypeCode::Any)],
                    TypeCode::Void,
                )),
        )
        .unwrap();
        repo.register(
            InterfaceDef::new("EventMonitor")
                .inherits("BasicMonitor")
                .with_operation(OperationDef::new(
                    "attachEventObserver",
                    vec![
                        ParamDef::new("obj", TypeCode::Object(String::new())),
                        ParamDef::new("evid", TypeCode::Str),
                        ParamDef::new("notifyf", TypeCode::Str),
                    ],
                    TypeCode::Long,
                )),
        )
        .unwrap();
        repo
    }

    #[test]
    fn inherited_operations_are_found() {
        let repo = repo_with_monitors();
        let op = repo.lookup_operation("EventMonitor", "getValue").unwrap();
        assert_eq!(op.name, "getValue");
        assert!(repo.lookup_operation("EventMonitor", "missing").is_err());
    }

    #[test]
    fn is_a_walks_inheritance() {
        let repo = repo_with_monitors();
        assert!(repo.is_a("EventMonitor", "BasicMonitor"));
        assert!(repo.is_a("EventMonitor", "EventMonitor"));
        assert!(!repo.is_a("BasicMonitor", "EventMonitor"));
        assert!(!repo.is_a("Nope", "BasicMonitor"));
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let repo = repo_with_monitors();
        let err = repo
            .register(InterfaceDef::new("BasicMonitor"))
            .unwrap_err();
        assert_eq!(err, IdlError::Duplicate("BasicMonitor".into()));
    }

    #[test]
    fn unknown_base_is_rejected() {
        let repo = InterfaceRepository::new();
        let err = repo
            .register(InterfaceDef::new("X").inherits("Missing"))
            .unwrap_err();
        assert_eq!(err, IdlError::UnknownInterface("Missing".into()));
    }

    #[test]
    fn check_args_validates_arity_and_types() {
        let op = OperationDef::new(
            "f",
            vec![
                ParamDef::new("s", TypeCode::Str),
                ParamDef::new("n", TypeCode::Double),
            ],
            TypeCode::Void,
        );
        assert!(op
            .check_args(&[Value::from("x"), Value::from(1i64)])
            .is_ok());
        assert!(matches!(
            op.check_args(&[Value::from("x")]),
            Err(IdlError::ArityMismatch { .. })
        ));
        assert!(matches!(
            op.check_args(&[Value::from(1i64), Value::from(1i64)]),
            Err(IdlError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn repository_clones_share_state() {
        let repo = InterfaceRepository::new();
        let view = repo.clone();
        repo.register(InterfaceDef::new("T")).unwrap();
        assert!(view.contains("T"));
    }

    #[test]
    fn oneway_constructor_sets_flag() {
        let op = OperationDef::oneway("notifyEvent", vec![ParamDef::new("e", TypeCode::Str)]);
        assert!(op.oneway);
        assert_eq!(op.result, TypeCode::Void);
    }
}
