//! A parser for the IDL subset used by the paper's figures.
//!
//! Supported constructs: `module` (namespacing is flattened — interface
//! names in the paper are used unqualified), `typedef`, `struct`,
//! `interface` with inheritance, `oneway` operations, `readonly
//! attribute` (mapped to a getter operation), parameter modes
//! (`in`/`out`/`inout` — parsed, semantically all `in`), and the types
//! `void`, `boolean`, `short`, `long`, `unsigned long`, `float`,
//! `double`, `string`, `any`, `Object`, `octet`, and `sequence<T>`.
//!
//! Unknown type identifiers (the paper freely uses undeclared names such
//! as `PropertyValue` or `LuaCode`) resolve to [`TypeCode::Any`], so the
//! figures parse verbatim; declared typedefs, structs and interfaces
//! resolve precisely.

use std::collections::HashMap;

use crate::error::IdlError;
use crate::interface::{InterfaceDef, OperationDef, ParamDef};
use crate::typecode::TypeCode;
use crate::Result;

/// Parses IDL source into interface definitions.
///
/// # Errors
///
/// Returns [`IdlError::Parse`] with a line number on malformed input.
///
/// ```
/// use adapta_idl::parse_idl;
///
/// let defs = parse_idl(r#"
///     interface EventObserver {
///         oneway void notifyEvent(in EventID evid);
///     };
/// "#).unwrap();
/// assert_eq!(defs[0].name, "EventObserver");
/// assert!(defs[0].operations[0].oneway);
/// ```
pub fn parse_idl(source: &str) -> Result<Vec<InterfaceDef>> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        typedefs: HashMap::new(),
        structs: HashMap::new(),
        interfaces: Vec::new(),
    };
    parser.parse_unit()?;
    Ok(parser.interfaces)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
}

fn lex(source: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some('/') => {
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    Some('*') => {
                        chars.next();
                        let mut prev = ' ';
                        loop {
                            match chars.next() {
                                Some('\n') => {
                                    line += 1;
                                    prev = '\n';
                                }
                                Some('/') if prev == '*' => break,
                                Some(c) => prev = c,
                                None => {
                                    return Err(IdlError::Parse {
                                        line,
                                        message: "unterminated comment".into(),
                                    })
                                }
                            }
                        }
                    }
                    _ => {
                        return Err(IdlError::Parse {
                            line,
                            message: "unexpected `/`".into(),
                        })
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(ident),
                    line,
                });
            }
            '{' | '}' | '(' | ')' | ';' | ',' | ':' | '<' | '>' => {
                chars.next();
                out.push(Spanned {
                    tok: Tok::Punct(c),
                    line,
                });
            }
            other => {
                return Err(IdlError::Parse {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    typedefs: HashMap<String, TypeCode>,
    structs: HashMap<String, TypeCode>,
    interfaces: Vec<InterfaceDef>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> IdlError {
        IdlError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn next(&mut self) -> Result<Tok> {
        let tok = self
            .tokens
            .get(self.pos)
            .map(|s| s.tok.clone())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(tok)
    }

    fn expect_punct(&mut self, c: char) -> Result<()> {
        let line = self.line();
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(IdlError::Parse {
                line,
                message: format!("expected `{c}`, found {other:?}"),
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(name) => Ok(name),
            other => Err(IdlError::Parse {
                line,
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(Tok::Ident(name)) = self.peek() {
            if name == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn parse_unit(&mut self) -> Result<()> {
        while self.peek().is_some() {
            self.parse_definition()?;
        }
        Ok(())
    }

    fn parse_definition(&mut self) -> Result<()> {
        if self.eat_ident("module") {
            let _name = self.expect_ident()?;
            self.expect_punct('{')?;
            while !self.eat_punct('}') {
                self.parse_definition()?;
            }
            self.eat_punct(';');
        } else if self.eat_ident("typedef") {
            let tc = self.parse_type()?;
            let name = self.expect_ident()?;
            self.expect_punct(';')?;
            self.typedefs.insert(name, tc);
        } else if self.eat_ident("struct") {
            let name = self.expect_ident()?;
            self.expect_punct('{')?;
            let mut fields = Vec::new();
            while !self.eat_punct('}') {
                let tc = self.parse_type()?;
                let fname = self.expect_ident()?;
                self.expect_punct(';')?;
                fields.push((fname, tc));
            }
            self.expect_punct(';')?;
            self.structs.insert(name, TypeCode::Struct(fields));
        } else if self.eat_ident("interface") {
            self.parse_interface()?;
        } else {
            return Err(self.error("expected `module`, `typedef`, `struct` or `interface`"));
        }
        Ok(())
    }

    fn parse_interface(&mut self) -> Result<()> {
        let name = self.expect_ident()?;
        let mut def = InterfaceDef::new(name);
        if self.eat_punct(':') {
            loop {
                def.bases.push(self.expect_ident()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        self.expect_punct('{')?;
        while !self.eat_punct('}') {
            let op = self.parse_member()?;
            def.operations.extend(op);
        }
        self.expect_punct(';')?;
        self.interfaces.push(def);
        Ok(())
    }

    /// Parses one interface member: an operation or an attribute
    /// (attributes expand to getter/setter operations).
    fn parse_member(&mut self) -> Result<Vec<OperationDef>> {
        let readonly = self.eat_ident("readonly");
        if self.eat_ident("attribute") {
            let tc = self.parse_type()?;
            let name = self.expect_ident()?;
            self.expect_punct(';')?;
            let mut ops = vec![OperationDef::new(
                format!("_get_{name}"),
                vec![],
                tc.clone(),
            )];
            if !readonly {
                ops.push(OperationDef::new(
                    format!("_set_{name}"),
                    vec![ParamDef::new("value", tc)],
                    TypeCode::Void,
                ));
            }
            return Ok(ops);
        }
        if readonly {
            return Err(self.error("`readonly` must be followed by `attribute`"));
        }
        let oneway = self.eat_ident("oneway");
        let result = self.parse_type()?;
        if oneway && result != TypeCode::Void {
            return Err(self.error("`oneway` operations must return `void`"));
        }
        let name = self.expect_ident()?;
        self.expect_punct('(')?;
        let mut params = Vec::new();
        if !self.eat_punct(')') {
            loop {
                // Parameter mode; all modes behave as `in` in this ORB.
                let _ = self.eat_ident("in") || self.eat_ident("out") || self.eat_ident("inout");
                let tc = self.parse_type()?;
                let pname = self.expect_ident()?;
                params.push(ParamDef::new(pname, tc));
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        self.expect_punct(';')?;
        let mut op = OperationDef::new(name, params, result);
        op.oneway = oneway;
        Ok(vec![op])
    }

    fn parse_type(&mut self) -> Result<TypeCode> {
        let name = self.expect_ident()?;
        Ok(match name.as_str() {
            "void" => TypeCode::Void,
            "any" => TypeCode::Any,
            "boolean" => TypeCode::Boolean,
            "short" | "long" => {
                // `long long` is also a long.
                self.eat_ident("long");
                TypeCode::Long
            }
            "unsigned" => {
                self.expect_ident()?; // the integer kind
                self.eat_ident("long");
                TypeCode::Long
            }
            "float" | "double" => TypeCode::Double,
            "string" => TypeCode::Str,
            "octet" => TypeCode::Long,
            "Object" => TypeCode::Object(String::new()),
            "sequence" => {
                self.expect_punct('<')?;
                let inner = self.parse_type()?;
                self.expect_punct('>')?;
                TypeCode::Sequence(Box::new(inner))
            }
            other => {
                if let Some(tc) = self.typedefs.get(other) {
                    tc.clone()
                } else if let Some(tc) = self.structs.get(other) {
                    tc.clone()
                } else if self.interfaces.iter().any(|i| i.name == other) {
                    TypeCode::Object(other.to_owned())
                } else {
                    // Undeclared name (the paper's `PropertyValue` etc.):
                    // dynamically typed.
                    TypeCode::Any
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1 of the paper, verbatim.
    const FIG1: &str = r#"
        interface AspectsManager {
            PropertyValue getAspectValue(in AspectName name);
            AspectList definedAspects();
            void defineAspect(in AspectName name, in LuaCode updatef);
        };
    "#;

    /// Figure 2 of the paper, verbatim (BasicMonitor declared first so
    /// the base resolves).
    const FIG2: &str = r#"
        interface BasicMonitor {
            any getValue();
            void setValue(in any v);
        };
        interface EventObserver {
            oneway void notifyEvent(in EventID evid);
        };
        interface EventMonitor : BasicMonitor {
            EventObserverID attachEventObserver(in EventObserver obj,
                                                in EventID evid,
                                                in LuaCode notifyf);
            void detachEventObserver(in EventObserverID id);
        };
    "#;

    #[test]
    fn fig1_parses_verbatim() {
        let defs = parse_idl(FIG1).unwrap();
        assert_eq!(defs.len(), 1);
        let am = &defs[0];
        assert_eq!(am.name, "AspectsManager");
        assert_eq!(am.operations.len(), 3);
        let define = am.operation("defineAspect").unwrap();
        assert_eq!(define.params.len(), 2);
        assert_eq!(define.result, TypeCode::Void);
    }

    #[test]
    fn fig2_parses_with_inheritance_and_oneway() {
        let defs = parse_idl(FIG2).unwrap();
        assert_eq!(defs.len(), 3);
        let observer = defs.iter().find(|d| d.name == "EventObserver").unwrap();
        assert!(observer.operation("notifyEvent").unwrap().oneway);
        let em = defs.iter().find(|d| d.name == "EventMonitor").unwrap();
        assert_eq!(em.bases, vec!["BasicMonitor".to_owned()]);
        let attach = em.operation("attachEventObserver").unwrap();
        // EventObserver resolves to an object type because it was
        // declared earlier in the unit.
        assert_eq!(
            attach.params[0].type_code,
            TypeCode::Object("EventObserver".into())
        );
    }

    #[test]
    fn modules_flatten_and_typedefs_resolve() {
        let defs = parse_idl(
            r#"
            module LuaMonitor {
                typedef string LuaCode;
                typedef sequence<string> AspectList;
                interface M {
                    AspectList definedAspects();
                    void defineAspect(in LuaCode updatef);
                };
            };
        "#,
        )
        .unwrap();
        let m = &defs[0];
        assert_eq!(
            m.operation("definedAspects").unwrap().result,
            TypeCode::Sequence(Box::new(TypeCode::Str))
        );
        assert_eq!(
            m.operation("defineAspect").unwrap().params[0].type_code,
            TypeCode::Str
        );
    }

    #[test]
    fn structs_become_struct_typecodes() {
        let defs = parse_idl(
            r#"
            struct Sample { double value; string host; };
            interface S { Sample read(); };
        "#,
        )
        .unwrap();
        match &defs[0].operation("read").unwrap().result {
            TypeCode::Struct(fields) => {
                assert_eq!(fields[0], ("value".into(), TypeCode::Double));
                assert_eq!(fields[1], ("host".into(), TypeCode::Str));
            }
            other => panic!("expected struct, got {other}"),
        }
    }

    #[test]
    fn attributes_expand_to_accessors() {
        let defs = parse_idl(
            r#"
            interface A {
                readonly attribute double load;
                attribute string label;
            };
        "#,
        )
        .unwrap();
        let a = &defs[0];
        assert!(a.operation("_get_load").is_some());
        assert!(a.operation("_set_load").is_none());
        assert!(a.operation("_get_label").is_some());
        assert!(a.operation("_set_label").is_some());
    }

    #[test]
    fn comments_are_ignored() {
        let defs =
            parse_idl("// line comment\ninterface C { /* block\ncomment */ void f(); };").unwrap();
        assert_eq!(defs[0].operations.len(), 1);
    }

    #[test]
    fn numeric_type_spellings() {
        let defs = parse_idl(
            r#"
            interface N {
                void f(in short a, in long b, in long long c,
                       in unsigned long d, in float e, in octet g);
            };
        "#,
        )
        .unwrap();
        let f = defs[0].operation("f").unwrap();
        let tcs: Vec<_> = f.params.iter().map(|p| p.type_code.clone()).collect();
        assert_eq!(
            tcs,
            vec![
                TypeCode::Long,
                TypeCode::Long,
                TypeCode::Long,
                TypeCode::Long,
                TypeCode::Double,
                TypeCode::Long
            ]
        );
    }

    #[test]
    fn oneway_must_return_void() {
        let err = parse_idl("interface X { oneway long f(); };").unwrap_err();
        assert!(matches!(err, IdlError::Parse { .. }));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_idl("interface X {\n  void f(;\n};").unwrap_err();
        match err {
            IdlError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(parse_idl("/* oops").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = parse_idl("interface X @ {};").unwrap_err();
        assert!(err.to_string().contains('@'));
    }

    #[test]
    fn empty_source_parses_to_nothing() {
        assert_eq!(parse_idl("").unwrap(), Vec::new());
    }
}
