//! Type system for the `adapta` object broker.
//!
//! This crate plays the role CORBA's IDL, `Any` and Interface Repository
//! play in the paper:
//!
//! * [`Value`] — a self-describing wire value (the `Any` analogue). The
//!   whole stack is dynamically typed end-to-end, exactly as LuaCorba
//!   uses the DII/DSI: arguments and results are `Value`s, mapped to and
//!   from the scripting language at the edges.
//! * [`TypeCode`] — structural types used for interface checking and
//!   trading-property definitions.
//! * [`InterfaceDef`]/[`InterfaceRepository`] — run-time descriptions of
//!   interfaces and their operations (the IFR analogue), which is what
//!   lets clients discover and invoke *new* service types on the fly.
//! * [`parse_idl`] — a parser for the IDL subset the paper uses in its
//!   figures (`module`, `interface` with inheritance, `typedef`,
//!   `struct`, `oneway`, `sequence<>`).

mod error;
mod interface;
mod parser;
mod typecode;
mod value;

pub use error::IdlError;
pub use interface::{InterfaceDef, InterfaceRepository, OperationDef, ParamDef};
pub use parser::parse_idl;
pub use typecode::TypeCode;
pub use value::{ObjRefData, Value};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, IdlError>;
