//! The Rua abstract syntax tree.

use std::rc::Rc;

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stats: Vec<Stat>,
}

/// A statement with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stat {
    /// The statement proper.
    pub kind: StatKind,
    /// 1-based source line.
    pub line: usize,
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StatKind {
    /// `local a, b = e1, e2`
    Local {
        /// Declared names.
        names: Vec<String>,
        /// Initialisers (may be shorter or longer than `names`).
        exprs: Vec<Expr>,
    },
    /// `a, t[k] = e1, e2`
    Assign {
        /// Assignment targets.
        targets: Vec<LValue>,
        /// Right-hand sides.
        exprs: Vec<Expr>,
    },
    /// A call evaluated for its side effects.
    Call(Expr),
    /// `if … then … elseif … else … end`
    If {
        /// `(condition, body)` arms in order.
        arms: Vec<(Expr, Block)>,
        /// The `else` body, if present.
        else_body: Option<Block>,
    },
    /// `while cond do body end`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `repeat body until cond`
    Repeat {
        /// Loop body.
        body: Block,
        /// Exit condition (checked after the body).
        cond: Expr,
    },
    /// `for v = start, stop [, step] do body end`
    NumericFor {
        /// Control variable.
        var: String,
        /// Initial value.
        start: Expr,
        /// Limit.
        stop: Expr,
        /// Step (defaults to 1).
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `for a, b in exprs do body end`
    GenericFor {
        /// Bound names.
        names: Vec<String>,
        /// Iterator expressions.
        exprs: Vec<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `do body end`
    Do(Block),
    /// `return e1, e2`
    Return(Vec<Expr>),
    /// `break`
    Break,
}

/// An assignable place.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A variable.
    Name(String),
    /// A table slot.
    Index {
        /// The table expression.
        obj: Expr,
        /// The key expression.
        key: Expr,
    },
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression proper.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: usize,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `nil`
    Nil,
    /// `true`
    True,
    /// `false`
    False,
    /// A number literal.
    Num(f64),
    /// A string literal.
    Str(String),
    /// A variable reference.
    Name(String),
    /// `...` (the callee's extra arguments).
    Vararg,
    /// `obj[key]` (also `obj.field`).
    Index {
        /// The table expression.
        obj: Box<Expr>,
        /// The key expression.
        key: Box<Expr>,
    },
    /// `f(args)`
    Call {
        /// The callee.
        f: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `obj:method(args)`
    MethodCall {
        /// The receiver.
        obj: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments (receiver prepended at run time).
        args: Vec<Expr>,
    },
    /// `function(params) body end`
    Function(Rc<FuncBody>),
    /// `{ … }`
    Table(Vec<TableItem>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
}

/// One item of a table constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum TableItem {
    /// A positional value (`{a, b}` — assigned indices 1, 2, …).
    Positional(Expr),
    /// `name = value`
    Named(String, Expr),
    /// `[key] = value`
    Keyed(Expr, Expr),
}

/// The compiled body of a function literal or declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncBody {
    /// Parameter names (`self` prepended for method definitions).
    pub params: Vec<String>,
    /// True when the parameter list ends with `...`.
    pub has_vararg: bool,
    /// The body.
    pub body: Block,
    /// Name for diagnostics, when declared with one.
    pub name: Option<String>,
    /// 1-based line of the `function` keyword.
    pub line: usize,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^`
    Pow,
    /// `..`
    Concat,
    /// `==`
    Eq,
    /// `~=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (short-circuit)
    And,
    /// `or` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical `not`.
    Not,
    /// `#` (length).
    Len,
}
