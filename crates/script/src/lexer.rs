//! The Rua lexer.

use std::fmt;

use crate::error::RuaError;
use crate::Result;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A number literal.
    Num(f64),
    /// A string literal (quotes or `[[…]]`).
    Str(String),
    /// An identifier.
    Name(String),

    // Keywords.
    And,
    Break,
    Do,
    Else,
    Elseif,
    End,
    False,
    For,
    Function,
    If,
    In,
    Local,
    Nil,
    Not,
    Or,
    Repeat,
    Return,
    Then,
    True,
    Until,
    While,

    // Symbols.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Caret,
    Hash,
    EqEq,
    NotEq,
    LessEq,
    GreaterEq,
    Less,
    Greater,
    Assign,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    Concat,
    Ellipsis,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Num(n) => write!(f, "number {n}"),
            Token::Str(_) => write!(f, "string literal"),
            Token::Name(n) => write!(f, "`{n}`"),
            Token::And => write!(f, "`and`"),
            Token::Break => write!(f, "`break`"),
            Token::Do => write!(f, "`do`"),
            Token::Else => write!(f, "`else`"),
            Token::Elseif => write!(f, "`elseif`"),
            Token::End => write!(f, "`end`"),
            Token::False => write!(f, "`false`"),
            Token::For => write!(f, "`for`"),
            Token::Function => write!(f, "`function`"),
            Token::If => write!(f, "`if`"),
            Token::In => write!(f, "`in`"),
            Token::Local => write!(f, "`local`"),
            Token::Nil => write!(f, "`nil`"),
            Token::Not => write!(f, "`not`"),
            Token::Or => write!(f, "`or`"),
            Token::Repeat => write!(f, "`repeat`"),
            Token::Return => write!(f, "`return`"),
            Token::Then => write!(f, "`then`"),
            Token::True => write!(f, "`true`"),
            Token::Until => write!(f, "`until`"),
            Token::While => write!(f, "`while`"),
            Token::Plus => write!(f, "`+`"),
            Token::Minus => write!(f, "`-`"),
            Token::Star => write!(f, "`*`"),
            Token::Slash => write!(f, "`/`"),
            Token::Percent => write!(f, "`%`"),
            Token::Caret => write!(f, "`^`"),
            Token::Hash => write!(f, "`#`"),
            Token::EqEq => write!(f, "`==`"),
            Token::NotEq => write!(f, "`~=`"),
            Token::LessEq => write!(f, "`<=`"),
            Token::GreaterEq => write!(f, "`>=`"),
            Token::Less => write!(f, "`<`"),
            Token::Greater => write!(f, "`>`"),
            Token::Assign => write!(f, "`=`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::LBrace => write!(f, "`{{`"),
            Token::RBrace => write!(f, "`}}`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::Semi => write!(f, "`;`"),
            Token::Colon => write!(f, "`:`"),
            Token::Comma => write!(f, "`,`"),
            Token::Dot => write!(f, "`.`"),
            Token::Concat => write!(f, "`..`"),
            Token::Ellipsis => write!(f, "`...`"),
        }
    }
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

/// Tokenises Rua source.
///
/// # Errors
///
/// Returns a parse-stage [`RuaError`] on malformed literals or stray
/// characters.
pub fn lex(source: &str) -> Result<Vec<SpannedToken>> {
    let mut lexer = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        out.push(tok);
    }
    Ok(out)
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> RuaError {
        RuaError::parse(message, self.line)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    self.pos += 2;
                    // Block comment --[[ ... ]]
                    if self.peek() == Some(b'[') && self.peek2() == Some(b'[') {
                        self.pos += 2;
                        self.read_long_bracket_body()?;
                    } else {
                        while let Some(c) = self.peek() {
                            if c == b'\n' {
                                break;
                            }
                            self.pos += 1;
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Reads the body of a `[[ … ]]` bracket (opening already consumed).
    fn read_long_bracket_body(&mut self) -> Result<String> {
        // Per Lua, a newline immediately after `[[` is skipped.
        if self.peek() == Some(b'\n') {
            self.bump();
        }
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(b']') if self.peek2() == Some(b']') => {
                    self.pos += 2;
                    return String::from_utf8(out)
                        .map_err(|_| self.error("invalid UTF-8 in long string"));
                }
                Some(_) => {
                    let c = self.bump().expect("peeked");
                    out.push(c);
                }
                None => return Err(self.error("unterminated `[[` string")),
            }
        }
    }

    fn read_quoted(&mut self, quote: u8) -> Result<String> {
        let mut out = Vec::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return Err(self.error("unterminated string")),
                Some(c) if c == quote => {
                    return String::from_utf8(out)
                        .map_err(|_| self.error("invalid UTF-8 in string"))
                }
                Some(b'\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    match esc {
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'a' => out.push(7),
                        b'0' => out.push(0),
                        b'\\' => out.push(b'\\'),
                        b'"' => out.push(b'"'),
                        b'\'' => out.push(b'\''),
                        b'\n' => out.push(b'\n'),
                        other => {
                            return Err(self.error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn read_number(&mut self) -> Result<f64> {
        let start = self.pos;
        // Hex literal.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.pos += 2;
            let hex_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            if self.pos == hex_start {
                return Err(self.error("malformed hex literal"));
            }
            let text = std::str::from_utf8(&self.src[hex_start..self.pos]).expect("hex digits");
            return Ok(u64::from_str_radix(text, 16)
                .map_err(|_| self.error("hex literal out of range"))?
                as f64);
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        // Fraction — but `1..2` must lex as number, concat, number.
        if self.peek() == Some(b'.') && self.peek2() != Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("malformed number exponent"));
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits");
        text.parse::<f64>()
            .map_err(|_| self.error(format!("malformed number `{text}`")))
    }

    fn next_token(&mut self) -> Result<Option<SpannedToken>> {
        self.skip_trivia()?;
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let token = match c {
            b'0'..=b'9' => Token::Num(self.read_number()?),
            b'.' if matches!(self.peek2(), Some(d) if d.is_ascii_digit()) => {
                Token::Num(self.read_number_with_leading_dot()?)
            }
            b'"' | b'\'' => {
                self.bump();
                Token::Str(self.read_quoted(c)?)
            }
            b'[' if self.peek2() == Some(b'[') => {
                self.pos += 2;
                Token::Str(self.read_long_bracket_body()?)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    self.pos += 1;
                }
                let word = std::str::from_utf8(&self.src[start..self.pos]).expect("ident bytes");
                keyword(word).unwrap_or_else(|| Token::Name(word.to_owned()))
            }
            _ => {
                self.bump();
                match c {
                    b'+' => Token::Plus,
                    b'-' => Token::Minus,
                    b'*' => Token::Star,
                    b'/' => Token::Slash,
                    b'%' => Token::Percent,
                    b'^' => Token::Caret,
                    b'#' => Token::Hash,
                    b'(' => Token::LParen,
                    b')' => Token::RParen,
                    b'{' => Token::LBrace,
                    b'}' => Token::RBrace,
                    b'[' => Token::LBracket,
                    b']' => Token::RBracket,
                    b';' => Token::Semi,
                    b':' => Token::Colon,
                    b',' => Token::Comma,
                    b'=' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Token::EqEq
                        } else {
                            Token::Assign
                        }
                    }
                    b'~' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Token::NotEq
                        } else {
                            return Err(self.error("unexpected `~` (did you mean `~=`?)"));
                        }
                    }
                    b'<' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Token::LessEq
                        } else {
                            Token::Less
                        }
                    }
                    b'>' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Token::GreaterEq
                        } else {
                            Token::Greater
                        }
                    }
                    b'.' => {
                        if self.peek() == Some(b'.') {
                            self.bump();
                            if self.peek() == Some(b'.') {
                                self.bump();
                                Token::Ellipsis
                            } else {
                                Token::Concat
                            }
                        } else {
                            Token::Dot
                        }
                    }
                    other => {
                        return Err(self.error(format!("unexpected character `{}`", other as char)))
                    }
                }
            }
        };
        Ok(Some(SpannedToken { token, line }))
    }

    fn read_number_with_leading_dot(&mut self) -> Result<f64> {
        let start = self.pos;
        self.pos += 1; // the dot
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits");
        text.parse::<f64>()
            .map_err(|_| self.error(format!("malformed number `{text}`")))
    }
}

fn keyword(word: &str) -> Option<Token> {
    Some(match word {
        "and" => Token::And,
        "break" => Token::Break,
        "do" => Token::Do,
        "else" => Token::Else,
        "elseif" => Token::Elseif,
        "end" => Token::End,
        "false" => Token::False,
        "for" => Token::For,
        "function" => Token::Function,
        "if" => Token::If,
        "in" => Token::In,
        "local" => Token::Local,
        "nil" => Token::Nil,
        "not" => Token::Not,
        "or" => Token::Or,
        "repeat" => Token::Repeat,
        "return" => Token::Return,
        "then" => Token::Then,
        "true" => Token::True,
        "until" => Token::Until,
        "while" => Token::While,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn simple_statement() {
        assert_eq!(
            toks("local x = 42"),
            vec![
                Token::Local,
                Token::Name("x".into()),
                Token::Assign,
                Token::Num(42.0)
            ]
        );
    }

    #[test]
    fn keywords_vs_names() {
        assert_eq!(
            toks("endx end"),
            vec![Token::Name("endx".into()), Token::End]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("3.5"), vec![Token::Num(3.5)]);
        assert_eq!(toks("0x10"), vec![Token::Num(16.0)]);
        assert_eq!(toks("1e2"), vec![Token::Num(100.0)]);
        assert_eq!(toks("2.5e-1"), vec![Token::Num(0.25)]);
        assert_eq!(toks(".5"), vec![Token::Num(0.5)]);
    }

    #[test]
    fn concat_does_not_eat_number_dots() {
        assert_eq!(
            toks("1..2"),
            vec![Token::Num(1.0), Token::Concat, Token::Num(2.0)]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r#""a\nb""#), vec![Token::Str("a\nb".into())]);
        assert_eq!(
            toks(r#"'it''s'"#),
            vec![Token::Str("it".into()), Token::Str("s".into())]
        );
        assert_eq!(toks(r#""\"q\"""#), vec![Token::Str("\"q\"".into())]);
    }

    #[test]
    fn long_strings_span_lines_and_skip_leading_newline() {
        let src = "[[function(x)\nreturn x\nend]]";
        assert_eq!(
            toks(src),
            vec![Token::Str("function(x)\nreturn x\nend".into())]
        );
        assert_eq!(toks("[[\nbody]]"), vec![Token::Str("body".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a -- comment\nb --[[ block\ncomment ]] c"),
            vec![
                Token::Name("a".into()),
                Token::Name("b".into()),
                Token::Name("c".into())
            ]
        );
    }

    #[test]
    fn relational_operators() {
        assert_eq!(
            toks("== ~= <= >= < > ="),
            vec![
                Token::EqEq,
                Token::NotEq,
                Token::LessEq,
                Token::GreaterEq,
                Token::Less,
                Token::Greater,
                Token::Assign
            ]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let tokens = lex("a\nb\n\nc").unwrap();
        let lines: Vec<_> = tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("[[never closed").is_err());
        assert!(lex("@").is_err());
        assert!(lex("~x").is_err());
        assert!(lex("0x").is_err());
        assert!(lex("1e").is_err());
    }

    #[test]
    fn fig3_listing_lexes() {
        // The shape of the paper's Figure 3 code.
        let src = r#"
            lmon = EventMonitor.new("LoadAvg",
                function()
                    readfrom("/proc/loadavg")
                    local nj1,nj5,nj15 = read("*n","*n","*n")
                    readfrom()
                    return {nj1,nj5,nj15}
                end,
                60) -- update values every minute
        "#;
        assert!(lex(src).is_ok());
    }
}
