//! Rua runtime values and tables.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use crate::interp::{Closure, NativeFn};

/// A Rua value.
///
/// Like Lua, Rua is dynamically typed with a single number type (`f64`),
/// interned-ish strings (`Rc<str>`), reference-semantics tables and
/// first-class functions (script closures or host natives).
#[derive(Clone, Default)]
pub enum Value {
    /// The absent value.
    #[default]
    Nil,
    /// A boolean.
    Bool(bool),
    /// A number (`f64`, like classic Lua).
    Num(f64),
    /// An immutable string.
    Str(Rc<str>),
    /// A mutable table with reference semantics.
    Table(Rc<RefCell<Table>>),
    /// A script closure.
    Function(Rc<Closure>),
    /// A host-provided native function.
    Native(NativeFn),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Builds a fresh empty table value.
    pub fn table() -> Value {
        Value::Table(Rc::new(RefCell::new(Table::new())))
    }

    /// Lua truthiness: everything except `nil` and `false` is true.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// The value's type name, as returned by the `type` builtin.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Table(_) => "table",
            Value::Function(_) | Value::Native(_) => "function",
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The table handle, if this is one.
    pub fn as_table(&self) -> Option<&Rc<RefCell<Table>>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Coerces to a number the way Lua arithmetic does: numbers pass
    /// through, numeric strings convert.
    pub fn coerce_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(s) => s.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// Renders the value the way `tostring` does.
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            other => other.to_string(),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<i32> for Value {
    fn from(n: i32) -> Value {
        Value::Num(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(Rc::from(s.as_str()))
    }
}

/// Formats a number the way Lua prints it: integral values without a
/// decimal point.
pub(crate) fn fmt_number(n: f64) -> String {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{}", fmt_number(*n)),
            Value::Str(s) => write!(f, "{s}"),
            Value::Table(t) => write!(f, "table: {:p}", Rc::as_ptr(t)),
            Value::Function(c) => write!(f, "function: {:p}", Rc::as_ptr(c)),
            Value::Native(n) => write!(f, "function: builtin:{}", n.name),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Table(t) => {
                let table = t.borrow();
                write!(f, "{{")?;
                for (i, (k, v)) in table.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "[{k:?}]={v:?}")?;
                }
                write!(f, "}}")
            }
            other => write!(f, "{other}"),
        }
    }
}

/// Lua equality: primitive values by value, tables and functions by
/// identity.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Table(a), Value::Table(b)) => Rc::ptr_eq(a, b),
            (Value::Function(a), Value::Function(b)) => Rc::ptr_eq(a, b),
            (Value::Native(a), Value::Native(b)) => Rc::ptr_eq(&a.f, &b.f),
            _ => false,
        }
    }
}

/// A table key. `nil` and NaN are not valid keys; integral numbers
/// normalise to [`Key::Int`] so `t[1]` and `t[1.0]` agree.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Key {
    /// Boolean key.
    Bool(bool),
    /// Integer key (also any integral number).
    Int(i64),
    /// Non-integral number key, ordered by bit pattern.
    Num(u64),
    /// String key.
    Str(Rc<str>),
}

impl Key {
    /// Converts a value to a key.
    ///
    /// Returns `None` for `nil`, NaN, tables and functions (identity
    /// keys are not supported in Rua).
    pub fn from_value(v: &Value) -> Option<Key> {
        match v {
            Value::Bool(b) => Some(Key::Bool(*b)),
            Value::Num(n) if n.is_nan() => None,
            Value::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(Key::Int(*n as i64)),
            Value::Num(n) => Some(Key::Num(n.to_bits())),
            Value::Str(s) => Some(Key::Str(s.clone())),
            _ => None,
        }
    }

    /// Converts the key back to a value.
    pub fn to_value(&self) -> Value {
        match self {
            Key::Bool(b) => Value::Bool(*b),
            Key::Int(n) => Value::Num(*n as f64),
            Key::Num(bits) => Value::Num(f64::from_bits(*bits)),
            Key::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// A Rua table: an ordered associative array.
///
/// Iteration order is deterministic (sorted by key), which keeps remote
/// evaluation reproducible across runs — a deliberate difference from
/// Lua's unspecified `pairs` order.
///
/// ```
/// use adapta_script::{Table, Value};
///
/// let mut t = Table::new();
/// t.set(Value::from(1i64), Value::from("a")).unwrap();
/// t.set(Value::from("x"), Value::from(2.5)).unwrap();
/// assert_eq!(t.len(), 1); // array part: consecutive keys from 1
/// assert_eq!(t.get(&Value::from("x")), Value::from(2.5));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    map: BTreeMap<Key, Value>,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table {
            map: BTreeMap::new(),
        }
    }

    /// Number of entries (of any key type).
    pub fn total_entries(&self) -> usize {
        self.map.len()
    }

    /// Lua's `#`: the number of consecutive integer keys starting at 1.
    pub fn len(&self) -> usize {
        let mut n = 0usize;
        while self.map.contains_key(&Key::Int(n as i64 + 1)) {
            n += 1;
        }
        n
    }

    /// True if the table holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Reads `key`, returning `nil` when absent or unkeyable.
    pub fn get(&self, key: &Value) -> Value {
        Key::from_value(key)
            .and_then(|k| self.map.get(&k).cloned())
            .unwrap_or(Value::Nil)
    }

    /// Reads a string key.
    pub fn get_str(&self, key: &str) -> Value {
        self.map
            .get(&Key::Str(Rc::from(key)))
            .cloned()
            .unwrap_or(Value::Nil)
    }

    /// Writes `key = value`; assigning `nil` removes the entry.
    ///
    /// # Errors
    ///
    /// Returns a message when the key is `nil`, NaN, a table or a
    /// function.
    pub fn set(&mut self, key: Value, value: Value) -> Result<(), String> {
        let k = Key::from_value(&key)
            .ok_or_else(|| format!("invalid table key of type {}", key.type_name()))?;
        if matches!(value, Value::Nil) {
            self.map.remove(&k);
        } else {
            self.map.insert(k, value);
        }
        Ok(())
    }

    /// Writes a string key.
    pub fn set_str(&mut self, key: &str, value: Value) {
        // String keys are always valid.
        self.set(Value::str(key), value).expect("string key");
    }

    /// Appends to the array part (`table.insert` semantics).
    pub fn push(&mut self, value: Value) {
        let next = self.len() as i64 + 1;
        if !matches!(value, Value::Nil) {
            self.map.insert(Key::Int(next), value);
        }
    }

    /// Iterates entries in deterministic (sorted-key) order.
    pub fn iter(&self) -> impl Iterator<Item = (Value, Value)> + '_ {
        self.map.iter().map(|(k, v)| (k.to_value(), v.clone()))
    }

    /// The key sorted immediately after `key`, with its value — the
    /// `next` primitive backing `pairs`.
    pub fn next_after(&self, key: Option<&Value>) -> Option<(Value, Value)> {
        match key {
            None => self
                .map
                .iter()
                .next()
                .map(|(k, v)| (k.to_value(), v.clone())),
            Some(k) => {
                let k = Key::from_value(k)?;
                self.map
                    .range((std::ops::Bound::Excluded(k), std::ops::Bound::Unbounded))
                    .next()
                    .map(|(k, v)| (k.to_value(), v.clone()))
            }
        }
    }
}

impl FromIterator<(Value, Value)> for Table {
    fn from_iter<I: IntoIterator<Item = (Value, Value)>>(iter: I) -> Table {
        let mut t = Table::new();
        for (k, v) in iter {
            let _ = t.set(k, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_follows_lua() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Num(0.0).truthy());
        assert!(Value::str("").truthy());
    }

    #[test]
    fn numbers_print_like_lua() {
        assert_eq!(Value::Num(3.0).to_string(), "3");
        assert_eq!(Value::Num(3.5).to_string(), "3.5");
        assert_eq!(Value::Num(-0.0).to_string(), "0");
    }

    #[test]
    fn equality_is_by_value_for_primitives_identity_for_tables() {
        assert_eq!(Value::str("a"), Value::str("a"));
        assert_eq!(Value::Num(1.0), Value::from(1i64));
        let t1 = Value::table();
        let t2 = Value::table();
        assert_ne!(t1, t2);
        assert_eq!(t1.clone(), t1);
    }

    #[test]
    fn integral_float_keys_normalise() {
        let mut t = Table::new();
        t.set(Value::Num(1.0), Value::from("one")).unwrap();
        assert_eq!(t.get(&Value::from(1i64)), Value::from("one"));
    }

    #[test]
    fn nil_and_nan_keys_are_rejected() {
        let mut t = Table::new();
        assert!(t.set(Value::Nil, Value::from(1i64)).is_err());
        assert!(t.set(Value::Num(f64::NAN), Value::from(1i64)).is_err());
        assert_eq!(t.get(&Value::Nil), Value::Nil);
    }

    #[test]
    fn assigning_nil_removes() {
        let mut t = Table::new();
        t.set_str("k", Value::from(1i64));
        t.set(Value::str("k"), Value::Nil).unwrap();
        assert_eq!(t.get_str("k"), Value::Nil);
        assert!(t.is_empty());
    }

    #[test]
    fn len_counts_consecutive_array_part() {
        let mut t = Table::new();
        t.push(Value::from("a"));
        t.push(Value::from("b"));
        t.set(Value::from(5i64), Value::from("gap")).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_entries(), 3);
    }

    #[test]
    fn next_after_walks_all_entries() {
        let mut t = Table::new();
        t.set_str("a", Value::from(1i64));
        t.set(Value::from(1i64), Value::from(10i64)).unwrap();
        t.set_str("b", Value::from(2i64));
        let mut seen = Vec::new();
        let mut cursor: Option<Value> = None;
        while let Some((k, _)) = t.next_after(cursor.as_ref()) {
            seen.push(k.clone());
            cursor = Some(k);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn coerce_num_accepts_numeric_strings() {
        assert_eq!(Value::str(" 42 ").coerce_num(), Some(42.0));
        assert_eq!(Value::str("x").coerce_num(), None);
        assert_eq!(Value::Bool(true).coerce_num(), None);
    }

    #[test]
    fn collect_into_table() {
        let t: Table = vec![
            (Value::from(1i64), Value::from("x")),
            (Value::from(2i64), Value::from("y")),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 2);
    }
}
