//! The Rua tree-walking interpreter.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::ast::*;
use crate::error::RuaError;
use crate::parser::parse;
use crate::stdlib;
use crate::value::{Table, Value};
use crate::Result;

/// A host-provided native function.
///
/// Natives receive the interpreter (so they can call back into script
/// code) and the argument list, and return zero or more values.
/// The closure type behind a [`NativeFn`].
pub type NativeImpl = dyn Fn(&mut Interpreter, Vec<Value>) -> Result<Vec<Value>>;

#[derive(Clone)]
pub struct NativeFn {
    /// Diagnostic name.
    pub name: Rc<str>,
    /// The implementation.
    pub f: Rc<NativeImpl>,
}

impl std::fmt::Debug for NativeFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NativeFn({})", self.name)
    }
}

/// A script closure: a function body plus its captured environment.
#[derive(Debug)]
pub struct Closure {
    /// The compiled body.
    pub body: Rc<FuncBody>,
    /// The environment the function was created in.
    pub env: Env,
}

/// A lexical environment: a scope chain with reference-captured
/// variables (closures see later mutations of captured locals).
#[derive(Debug, Clone)]
pub struct Env(Rc<Scope>);

#[derive(Debug)]
struct Scope {
    vars: RefCell<HashMap<String, Rc<RefCell<Value>>>>,
    parent: Option<Env>,
}

impl Env {
    fn root() -> Env {
        Env(Rc::new(Scope {
            vars: RefCell::new(HashMap::new()),
            parent: None,
        }))
    }

    fn child(&self) -> Env {
        Env(Rc::new(Scope {
            vars: RefCell::new(HashMap::new()),
            parent: Some(self.clone()),
        }))
    }

    fn declare(&self, name: &str, value: Value) {
        self.0
            .vars
            .borrow_mut()
            .insert(name.to_owned(), Rc::new(RefCell::new(value)));
    }

    /// Finds the cell for `name` in this scope chain.
    fn find(&self, name: &str) -> Option<Rc<RefCell<Value>>> {
        if let Some(cell) = self.0.vars.borrow().get(name) {
            return Some(cell.clone());
        }
        self.0.parent.as_ref().and_then(|p| p.find(name))
    }
}

/// What an installed chunk of code is allowed to reach in the host.
///
/// Remotely shipped code (the paper's remote-evaluation paradigm) runs
/// under [`CapabilityProfile::Remote`], which strips the stdlib entry
/// points that escape the sandbox: `print` (host stdout), `readfrom`/
/// `read` (the host reader) and `_G` (the raw globals table, through
/// which code could re-acquire stripped functions or clobber host
/// natives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapabilityProfile {
    /// Full stdlib — for locally authored, trusted code.
    #[default]
    Trusted,
    /// Host-escape functions removed — for remotely installed code.
    Remote,
}

/// Resource limits and capabilities for code run by an [`Interpreter`].
///
/// Grows the original instruction budget into a full sandbox: an
/// allocation cap (accounting units ≈ bytes for strings, a fixed charge
/// per table entry), a recursion-depth cap, a wall-clock deadline
/// checked alongside the step counter, and a [`CapabilityProfile`].
/// Exceeding any limit raises a `ResourceExhausted`-class error that
/// `pcall` cannot swallow.
///
/// ```
/// use adapta_script::{Interpreter, RuaErrorKind, SandboxPolicy};
///
/// let mut rua = Interpreter::new();
/// rua.set_sandbox(&SandboxPolicy::remote());
/// let err = rua.eval("while true do end").unwrap_err();
/// assert!(err.is_resource_limit());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SandboxPolicy {
    /// Max evaluation steps per top-level `eval`/`call` (`None` = unlimited).
    pub step_budget: Option<u64>,
    /// Max allocation accounting units per top-level run (`None` = unlimited).
    pub memory_limit: Option<u64>,
    /// Max call-stack depth.
    pub max_call_depth: usize,
    /// Wall-clock deadline per top-level run (`None` = unlimited).
    pub wall_clock: Option<Duration>,
    /// Which stdlib surface the code may reach.
    pub profile: CapabilityProfile,
}

impl Default for SandboxPolicy {
    /// The trusted default: no budget, no memory cap, no deadline, the
    /// historical depth limit of 100, full stdlib.
    fn default() -> Self {
        SandboxPolicy {
            step_budget: None,
            memory_limit: None,
            max_call_depth: 100,
            wall_clock: None,
            profile: CapabilityProfile::Trusted,
        }
    }
}

impl SandboxPolicy {
    /// The profile for remotely installed code: 250k steps, 4 MB of
    /// accounting units, depth 64, a 250 ms deadline, and the
    /// [`Remote`](CapabilityProfile::Remote) capability profile.
    pub fn remote() -> Self {
        SandboxPolicy {
            step_budget: Some(250_000),
            memory_limit: Some(4 << 20),
            max_call_depth: 64,
            wall_clock: Some(Duration::from_millis(250)),
            profile: CapabilityProfile::Remote,
        }
    }

    /// Sets the step budget.
    pub fn with_step_budget(mut self, budget: Option<u64>) -> Self {
        self.step_budget = budget;
        self
    }

    /// Sets the memory cap (accounting units).
    pub fn with_memory_limit(mut self, limit: Option<u64>) -> Self {
        self.memory_limit = limit;
        self
    }

    /// Sets the call-depth cap.
    pub fn with_max_call_depth(mut self, depth: usize) -> Self {
        self.max_call_depth = depth;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_wall_clock(mut self, deadline: Option<Duration>) -> Self {
        self.wall_clock = deadline;
        self
    }
}

/// Accounting units charged per table entry (≈ a small allocation);
/// strings are charged one unit per byte.
pub(crate) const TABLE_ENTRY_COST: u64 = 16;

/// The closure type behind the pluggable `readfrom` reader.
pub(crate) type ReaderFn = dyn Fn(&str) -> Option<String>;

enum Flow {
    Normal,
    Break,
    Return(Vec<Value>),
}

/// A Rua interpreter: globals, budget, and host hooks.
///
/// An `Interpreter` is the analogue of a Lua state. It is deliberately
/// `!Send`: values share `Rc`s. To serve concurrent callers, host one
/// interpreter per thread (see `adapta-core`'s `ScriptActor`).
///
/// ```
/// use adapta_script::{Interpreter, Value};
///
/// let mut rua = Interpreter::new();
/// let out = rua.eval("local t = {3, 1, 2} return #t + t[1]").unwrap();
/// assert_eq!(out, vec![Value::Num(6.0)]);
/// ```
pub struct Interpreter {
    globals: Rc<RefCell<Table>>,
    steps: u64,
    budget: Option<u64>,
    mem_used: u64,
    mem_limit: Option<u64>,
    max_depth: usize,
    wall_clock: Option<Duration>,
    deadline: Option<Instant>,
    depth: usize,
    current_line: usize,
    /// Pluggable file reader backing `readfrom` (Figure 3 reads
    /// `/proc/loadavg`; hosts map paths to synthetic content).
    pub(crate) reader: Option<Rc<ReaderFn>>,
    /// The buffer `read(...)` consumes from, with a cursor.
    pub(crate) input: Option<(String, usize)>,
    /// Captured `print` output when capture is enabled.
    pub(crate) printed: Option<Vec<String>>,
    /// Host clock for `os.clock()`/`os.time()`, seconds.
    pub(crate) clock: Option<Rc<dyn Fn() -> f64>>,
    /// Deterministic PRNG state for `math.random`.
    pub(crate) rng_state: u64,
}

impl std::fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interpreter")
            .field("steps", &self.steps)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with the standard library installed.
    pub fn new() -> Self {
        let mut interp = Interpreter {
            globals: Rc::new(RefCell::new(Table::new())),
            steps: 0,
            budget: None,
            mem_used: 0,
            mem_limit: None,
            max_depth: 100,
            wall_clock: None,
            deadline: None,
            depth: 0,
            current_line: 0,
            reader: None,
            input: None,
            printed: None,
            clock: None,
            rng_state: 0x853c_49e6_748f_ea9b,
        };
        stdlib::install(&mut interp);
        interp
    }

    /// The globals table (shared handle).
    pub fn globals(&self) -> Rc<RefCell<Table>> {
        self.globals.clone()
    }

    /// Reads a global variable.
    pub fn global(&self, name: &str) -> Value {
        self.globals.borrow().get_str(name)
    }

    /// Sets a global variable.
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.globals.borrow_mut().set_str(name, value);
    }

    /// Registers a native function as a global.
    ///
    /// ```
    /// use adapta_script::{Interpreter, Value};
    ///
    /// let mut rua = Interpreter::new();
    /// rua.register("double", |_, args| {
    ///     let n = args[0].as_num().unwrap_or(0.0);
    ///     Ok(vec![Value::Num(n * 2.0)])
    /// });
    /// assert_eq!(rua.eval("return double(21)").unwrap(), vec![Value::Num(42.0)]);
    /// ```
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&mut Interpreter, Vec<Value>) -> Result<Vec<Value>> + 'static,
    ) {
        let native = Value::Native(NativeFn {
            name: Rc::from(name),
            f: Rc::new(f),
        });
        self.set_global(name, native);
    }

    /// Builds a native function value without installing it globally.
    pub fn native(
        name: &str,
        f: impl Fn(&mut Interpreter, Vec<Value>) -> Result<Vec<Value>> + 'static,
    ) -> Value {
        Value::Native(NativeFn {
            name: Rc::from(name),
            f: Rc::new(f),
        })
    }

    /// Limits the number of evaluation steps for subsequent runs
    /// (`None` removes the limit). The counter resets on each top-level
    /// [`eval`](Self::eval)/[`call`](Self::call).
    pub fn set_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// Applies a full [`SandboxPolicy`]: step budget, memory cap,
    /// call-depth cap and wall-clock deadline for subsequent runs. For
    /// [`CapabilityProfile::Remote`] the host-escape stdlib entry points
    /// (`print`, `readfrom`, `read`, `_G`) are removed from the globals.
    pub fn set_sandbox(&mut self, policy: &SandboxPolicy) {
        self.budget = policy.step_budget;
        self.mem_limit = policy.memory_limit;
        self.max_depth = policy.max_call_depth;
        self.wall_clock = policy.wall_clock;
        if policy.profile == CapabilityProfile::Remote {
            let mut globals = self.globals.borrow_mut();
            for name in ["print", "readfrom", "read", "_G"] {
                globals.set_str(name, Value::Nil);
            }
        }
    }

    /// Steps consumed by the current (or last) top-level run.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Allocation accounting units consumed by the current (or last)
    /// top-level run.
    pub fn memory_used(&self) -> u64 {
        self.mem_used
    }

    /// Installs the file reader backing the `readfrom` builtin.
    pub fn set_reader(&mut self, f: impl Fn(&str) -> Option<String> + 'static) {
        self.reader = Some(Rc::new(f));
    }

    /// Installs the clock backing `os.clock()` and `os.time()`.
    pub fn set_clock(&mut self, f: impl Fn() -> f64 + 'static) {
        self.clock = Some(Rc::new(f));
    }

    /// Starts capturing `print` output instead of writing to stdout.
    pub fn capture_print(&mut self) {
        self.printed = Some(Vec::new());
    }

    /// Takes the captured `print` lines (empty if capture is off).
    pub fn take_printed(&mut self) -> Vec<String> {
        match &mut self.printed {
            Some(lines) => std::mem::take(lines),
            None => Vec::new(),
        }
    }

    /// Parses and runs a chunk; returns the chunk's `return` values.
    ///
    /// # Errors
    ///
    /// Returns parse errors, runtime errors, or budget exhaustion.
    pub fn eval(&mut self, source: &str) -> Result<Vec<Value>> {
        let block = parse(source)?;
        self.reset_limits();
        let env = Env::root().child();
        // Top-level chunks are vararg functions with no arguments
        // (loadstring semantics).
        env.declare(
            "...",
            Value::Table(std::rc::Rc::new(RefCell::new(Table::new()))),
        );
        match self.exec_block(&block, &env)? {
            Flow::Return(values) => Ok(values),
            _ => Ok(Vec::new()),
        }
    }

    /// Evaluates a single expression.
    ///
    /// # Errors
    ///
    /// As for [`eval`](Self::eval).
    pub fn eval_expr(&mut self, source: &str) -> Result<Value> {
        let values = self.eval(&format!("return ({source})"))?;
        Ok(values.into_iter().next().unwrap_or(Value::Nil))
    }

    /// Compiles a chunk into a zero-argument function value without
    /// running it — the `loadstring` analogue used for all remotely
    /// shipped code.
    ///
    /// # Errors
    ///
    /// Returns parse errors only.
    pub fn compile(&mut self, source: &str) -> Result<Value> {
        let block = parse(source)?;
        let body = FuncBody {
            params: Vec::new(),
            has_vararg: true,
            body: block,
            name: Some("chunk".to_owned()),
            line: 1,
        };
        Ok(Value::Function(Rc::new(Closure {
            body: Rc::new(body),
            env: Env::root().child(),
        })))
    }

    /// Compiles a source string that must evaluate to a function — the
    /// idiom for the paper's code-carrying parameters, which are written
    /// either as `function(...) ... end` literals or as chunks returning
    /// a function.
    ///
    /// # Errors
    ///
    /// Returns a parse error, or a runtime error if the chunk does not
    /// yield a function.
    pub fn compile_function(&mut self, source: &str) -> Result<Value> {
        let trimmed = source.trim();
        let chunk = if trimmed.starts_with("function") {
            format!("return {trimmed}")
        } else {
            trimmed.to_owned()
        };
        let values = self.eval(&chunk)?;
        match values.into_iter().next() {
            Some(v @ (Value::Function(_) | Value::Native(_))) => Ok(v),
            other => Err(RuaError::runtime(
                format!(
                    "expected code evaluating to a function, got {}",
                    other.map(|v| v.type_name()).unwrap_or("nothing")
                ),
                0,
            )),
        }
    }

    /// Calls a function value with arguments, resetting the step budget.
    ///
    /// # Errors
    ///
    /// Returns a runtime error if `f` is not callable or the call fails.
    pub fn call(&mut self, f: &Value, args: Vec<Value>) -> Result<Vec<Value>> {
        self.reset_limits();
        self.call_value(f, args)
    }

    // ---- internals ---------------------------------------------------

    /// Resets the per-run counters and arms the wall-clock deadline.
    fn reset_limits(&mut self) {
        self.steps = 0;
        self.mem_used = 0;
        self.deadline = self.wall_clock.map(|d| Instant::now() + d);
    }

    fn tick(&mut self, line: usize) -> Result<()> {
        self.current_line = line;
        self.steps += 1;
        if let Some(budget) = self.budget {
            if self.steps > budget {
                return Err(RuaError::budget(line));
            }
        }
        // Checking the clock every step would dominate interpretation
        // cost; every 256 steps keeps overrun under a millisecond.
        if self.steps & 0xFF == 0 {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Err(RuaError::deadline(line));
                }
            }
        }
        Ok(())
    }

    /// Charges allocation accounting units against the memory cap.
    /// Called *before* the allocation happens so a single oversized
    /// request (e.g. `string.rep(s, 1e9)`) fails without allocating.
    pub(crate) fn charge(&mut self, units: u64, line: usize) -> Result<()> {
        self.mem_used = self.mem_used.saturating_add(units);
        if let Some(limit) = self.mem_limit {
            if self.mem_used > limit {
                return Err(RuaError::memory(if line == 0 {
                    self.current_line
                } else {
                    line
                }));
            }
        }
        Ok(())
    }

    fn rt(&self, message: impl Into<String>, line: usize) -> RuaError {
        RuaError::runtime(message, if line == 0 { self.current_line } else { line })
    }

    fn exec_block(&mut self, block: &Block, env: &Env) -> Result<Flow> {
        for stat in &block.stats {
            match self.exec_stat(stat, env)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stat(&mut self, stat: &Stat, env: &Env) -> Result<Flow> {
        self.tick(stat.line)?;
        match &stat.kind {
            StatKind::Local { names, exprs } => {
                // `local function f` needs f visible inside its own body.
                let recursive_fn = names.len() == 1
                    && exprs.len() == 1
                    && matches!(exprs[0].kind, ExprKind::Function(_));
                if recursive_fn {
                    env.declare(&names[0], Value::Nil);
                }
                let values = self.eval_list(exprs, env)?;
                for (i, name) in names.iter().enumerate() {
                    let v = values.get(i).cloned().unwrap_or(Value::Nil);
                    if recursive_fn {
                        if let Some(cell) = env.find(name) {
                            *cell.borrow_mut() = v;
                            continue;
                        }
                    }
                    env.declare(name, v);
                }
                Ok(Flow::Normal)
            }
            StatKind::Assign { targets, exprs } => {
                let values = self.eval_list(exprs, env)?;
                for (i, target) in targets.iter().enumerate() {
                    let v = values.get(i).cloned().unwrap_or(Value::Nil);
                    self.assign(target, v, env, stat.line)?;
                }
                Ok(Flow::Normal)
            }
            StatKind::Call(expr) => {
                self.eval_multi(expr, env)?;
                Ok(Flow::Normal)
            }
            StatKind::If { arms, else_body } => {
                for (cond, body) in arms {
                    if self.eval_one(cond, env)?.truthy() {
                        return self.exec_block(body, &env.child());
                    }
                }
                if let Some(body) = else_body {
                    return self.exec_block(body, &env.child());
                }
                Ok(Flow::Normal)
            }
            StatKind::While { cond, body } => {
                while self.eval_one(cond, env)?.truthy() {
                    self.tick(stat.line)?;
                    match self.exec_block(body, &env.child())? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                }
                Ok(Flow::Normal)
            }
            StatKind::Repeat { body, cond } => {
                loop {
                    self.tick(stat.line)?;
                    // The condition sees the body's scope (Lua rule).
                    let scope = env.child();
                    match self.exec_block(body, &scope)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                    if self.eval_one(cond, &scope)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StatKind::NumericFor {
                var,
                start,
                stop,
                step,
                body,
            } => {
                let start = self.expect_num(start, env, "for initial value")?;
                let stop = self.expect_num(stop, env, "for limit")?;
                let step = match step {
                    Some(e) => self.expect_num(e, env, "for step")?,
                    None => 1.0,
                };
                if step == 0.0 {
                    return Err(self.rt("for step is zero", stat.line));
                }
                let mut i = start;
                while (step > 0.0 && i <= stop) || (step < 0.0 && i >= stop) {
                    self.tick(stat.line)?;
                    let scope = env.child();
                    scope.declare(var, Value::Num(i));
                    match self.exec_block(body, &scope)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                    i += step;
                }
                Ok(Flow::Normal)
            }
            StatKind::GenericFor { names, exprs, body } => {
                let mut iter = self.eval_list(exprs, env)?;
                iter.resize(3, Value::Nil);
                let f = iter[0].clone();
                let state = iter[1].clone();
                let mut control = iter[2].clone();
                loop {
                    self.tick(stat.line)?;
                    let mut values = self.call_value(&f, vec![state.clone(), control.clone()])?;
                    values.resize(names.len().max(1), Value::Nil);
                    if values[0] == Value::Nil {
                        break;
                    }
                    control = values[0].clone();
                    let scope = env.child();
                    for (name, v) in names.iter().zip(values) {
                        scope.declare(name, v);
                    }
                    match self.exec_block(body, &scope)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                }
                Ok(Flow::Normal)
            }
            StatKind::Do(body) => self.exec_block(body, &env.child()),
            StatKind::Return(exprs) => {
                let values = self.eval_list(exprs, env)?;
                Ok(Flow::Return(values))
            }
            StatKind::Break => Ok(Flow::Break),
        }
    }

    fn assign(&mut self, target: &LValue, value: Value, env: &Env, line: usize) -> Result<()> {
        match target {
            LValue::Name(name) => {
                if let Some(cell) = env.find(name) {
                    *cell.borrow_mut() = value;
                } else {
                    self.globals.borrow_mut().set_str(name, value);
                }
                Ok(())
            }
            LValue::Index { obj, key } => {
                let table = self.eval_one(obj, env)?;
                let key = self.eval_one(key, env)?;
                match table {
                    Value::Table(t) => {
                        self.charge(TABLE_ENTRY_COST, line)?;
                        t.borrow_mut().set(key, value).map_err(|m| self.rt(m, line))
                    }
                    other => Err(self.rt(
                        format!("attempt to index a {} value", other.type_name()),
                        line,
                    )),
                }
            }
        }
    }

    fn expect_num(&mut self, expr: &Expr, env: &Env, what: &str) -> Result<f64> {
        let v = self.eval_one(expr, env)?;
        v.coerce_num()
            .ok_or_else(|| self.rt(format!("{what} must be a number"), expr.line))
    }

    /// Evaluates an expression list; the *last* expression expands its
    /// multiple values (Lua semantics).
    fn eval_list(&mut self, exprs: &[Expr], env: &Env) -> Result<Vec<Value>> {
        let mut out = Vec::with_capacity(exprs.len());
        for (i, expr) in exprs.iter().enumerate() {
            if i + 1 == exprs.len() {
                out.extend(self.eval_multi(expr, env)?);
            } else {
                out.push(self.eval_one(expr, env)?);
            }
        }
        Ok(out)
    }

    /// Evaluates to possibly-multiple values (calls expand).
    fn eval_multi(&mut self, expr: &Expr, env: &Env) -> Result<Vec<Value>> {
        match &expr.kind {
            ExprKind::Call { f, args } => {
                self.tick(expr.line)?;
                let callee = self.eval_one(f, env)?;
                let args = self.eval_list(args, env)?;
                self.call_value(&callee, args)
                    .map_err(|e| self.contextualise(e, expr.line))
            }
            ExprKind::MethodCall { obj, method, args } => {
                self.tick(expr.line)?;
                let receiver = self.eval_one(obj, env)?;
                let callee = match &receiver {
                    Value::Table(t) => t.borrow().get_str(method),
                    other => {
                        return Err(self.rt(
                            format!(
                                "attempt to call method `{method}` on a {} value",
                                other.type_name()
                            ),
                            expr.line,
                        ))
                    }
                };
                if callee == Value::Nil {
                    return Err(self.rt(format!("method `{method}` is nil"), expr.line));
                }
                let mut full_args = vec![receiver];
                full_args.extend(self.eval_list(args, env)?);
                self.call_value(&callee, full_args)
                    .map_err(|e| self.contextualise(e, expr.line))
            }
            ExprKind::Vararg => {
                self.tick(expr.line)?;
                let cell = env.find("...");
                let v = cell.map(|c| c.borrow().clone());
                match v {
                    Some(Value::Table(t)) => {
                        let t = t.borrow();
                        Ok((1..=t.len())
                            .map(|i| t.get(&Value::from(i as i64)))
                            .collect())
                    }
                    _ => Err(self.rt("cannot use `...` outside a vararg function", expr.line)),
                }
            }
            _ => Ok(vec![self.eval_one(expr, env)?]),
        }
    }

    /// Attaches a line to errors raised by natives (which report line 0).
    fn contextualise(&self, e: RuaError, line: usize) -> RuaError {
        if e.line() == 0 {
            RuaError::runtime(e.message().to_owned(), line)
        } else {
            e
        }
    }

    fn eval_one(&mut self, expr: &Expr, env: &Env) -> Result<Value> {
        self.tick(expr.line)?;
        Ok(match &expr.kind {
            ExprKind::Nil => Value::Nil,
            ExprKind::True => Value::Bool(true),
            ExprKind::False => Value::Bool(false),
            ExprKind::Num(n) => Value::Num(*n),
            ExprKind::Str(s) => Value::str(s),
            ExprKind::Name(name) => match env.find(name) {
                Some(cell) => cell.borrow().clone(),
                None => self.globals.borrow().get_str(name),
            },
            ExprKind::Index { obj, key } => {
                let table = self.eval_one(obj, env)?;
                let key = self.eval_one(key, env)?;
                match table {
                    Value::Table(t) => t.borrow().get(&key),
                    other => {
                        return Err(self.rt(
                            format!("attempt to index a {} value", other.type_name()),
                            expr.line,
                        ))
                    }
                }
            }
            ExprKind::Call { .. } | ExprKind::MethodCall { .. } | ExprKind::Vararg => {
                let values = self.eval_multi(expr, env)?;
                values.into_iter().next().unwrap_or(Value::Nil)
            }
            ExprKind::Function(body) => Value::Function(Rc::new(Closure {
                body: body.clone(),
                env: env.clone(),
            })),
            ExprKind::Table(items) => {
                let mut table = Table::new();
                let mut index = 0i64;
                let last = items.len().saturating_sub(1);
                for (i, item) in items.iter().enumerate() {
                    self.charge(TABLE_ENTRY_COST, expr.line)?;
                    match item {
                        TableItem::Positional(e) => {
                            // The final positional item expands multiple
                            // values (`{...}`, `{f()}` — Lua rule).
                            if i == last
                                && matches!(
                                    e.kind,
                                    ExprKind::Call { .. }
                                        | ExprKind::MethodCall { .. }
                                        | ExprKind::Vararg
                                )
                            {
                                for v in self.eval_multi(e, env)? {
                                    self.charge(TABLE_ENTRY_COST, e.line)?;
                                    index += 1;
                                    table
                                        .set(Value::Num(index as f64), v)
                                        .map_err(|m| self.rt(m, e.line))?;
                                }
                                continue;
                            }
                            index += 1;
                            let v = self.eval_one(e, env)?;
                            table
                                .set(Value::Num(index as f64), v)
                                .map_err(|m| self.rt(m, e.line))?;
                        }
                        TableItem::Named(name, e) => {
                            let v = self.eval_one(e, env)?;
                            table.set_str(name, v);
                        }
                        TableItem::Keyed(k, e) => {
                            let key = self.eval_one(k, env)?;
                            let v = self.eval_one(e, env)?;
                            table.set(key, v).map_err(|m| self.rt(m, e.line))?;
                        }
                    }
                }
                Value::Table(Rc::new(RefCell::new(table)))
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // Short-circuit forms first.
                match op {
                    BinOp::And => {
                        let l = self.eval_one(lhs, env)?;
                        return if l.truthy() {
                            self.eval_one(rhs, env)
                        } else {
                            Ok(l)
                        };
                    }
                    BinOp::Or => {
                        let l = self.eval_one(lhs, env)?;
                        return if l.truthy() {
                            Ok(l)
                        } else {
                            self.eval_one(rhs, env)
                        };
                    }
                    _ => {}
                }
                let l = self.eval_one(lhs, env)?;
                let r = self.eval_one(rhs, env)?;
                self.binop(*op, l, r, expr.line)?
            }
            ExprKind::Unary { op, expr: inner } => {
                let v = self.eval_one(inner, env)?;
                match op {
                    UnOp::Not => Value::Bool(!v.truthy()),
                    UnOp::Neg => Value::Num(-v.coerce_num().ok_or_else(|| {
                        self.rt(
                            format!("attempt to perform arithmetic on a {} value", v.type_name()),
                            inner.line,
                        )
                    })?),
                    UnOp::Len => match &v {
                        Value::Table(t) => Value::Num(t.borrow().len() as f64),
                        Value::Str(s) => Value::Num(s.len() as f64),
                        other => {
                            return Err(self.rt(
                                format!("attempt to get length of a {} value", other.type_name()),
                                inner.line,
                            ))
                        }
                    },
                }
            }
        })
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value, line: usize) -> Result<Value> {
        use BinOp::*;
        let arith = |l: &Value, r: &Value| -> Result<(f64, f64)> {
            match (l.coerce_num(), r.coerce_num()) {
                (Some(a), Some(b)) => Ok((a, b)),
                (None, _) => Err(self.rt(
                    format!("attempt to perform arithmetic on a {} value", l.type_name()),
                    line,
                )),
                (_, None) => Err(self.rt(
                    format!("attempt to perform arithmetic on a {} value", r.type_name()),
                    line,
                )),
            }
        };
        Ok(match op {
            Add => {
                let (a, b) = arith(&l, &r)?;
                Value::Num(a + b)
            }
            Sub => {
                let (a, b) = arith(&l, &r)?;
                Value::Num(a - b)
            }
            Mul => {
                let (a, b) = arith(&l, &r)?;
                Value::Num(a * b)
            }
            Div => {
                let (a, b) = arith(&l, &r)?;
                Value::Num(a / b)
            }
            Mod => {
                let (a, b) = arith(&l, &r)?;
                // Lua: result has the sign of the divisor.
                Value::Num(a - (a / b).floor() * b)
            }
            Pow => {
                let (a, b) = arith(&l, &r)?;
                Value::Num(a.powf(b))
            }
            Concat => {
                let left = match &l {
                    Value::Str(s) => s.to_string(),
                    Value::Num(n) => crate::value::fmt_number(*n),
                    other => {
                        return Err(self.rt(
                            format!("attempt to concatenate a {} value", other.type_name()),
                            line,
                        ))
                    }
                };
                let right = match &r {
                    Value::Str(s) => s.to_string(),
                    Value::Num(n) => crate::value::fmt_number(*n),
                    other => {
                        return Err(self.rt(
                            format!("attempt to concatenate a {} value", other.type_name()),
                            line,
                        ))
                    }
                };
                self.charge((left.len() + right.len()) as u64, line)?;
                Value::str(format!("{left}{right}"))
            }
            Eq => Value::Bool(l == r),
            Ne => Value::Bool(l != r),
            Lt | Le | Gt | Ge => {
                let ord = match (&l, &r) {
                    (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
                    (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
                    _ => {
                        return Err(self.rt(
                            format!(
                                "attempt to compare {} with {}",
                                l.type_name(),
                                r.type_name()
                            ),
                            line,
                        ))
                    }
                };
                let Some(ord) = ord else {
                    return Ok(Value::Bool(false)); // NaN comparisons
                };
                Value::Bool(match op {
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    Ge => ord.is_ge(),
                    _ => unreachable!(),
                })
            }
            And | Or => unreachable!("short-circuit ops handled earlier"),
        })
    }

    /// Calls a callable value. Public to natives via `pcall` etc.
    pub(crate) fn call_value(&mut self, f: &Value, mut args: Vec<Value>) -> Result<Vec<Value>> {
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(RuaError::resource("call stack overflow", self.current_line));
        }
        let result = match f {
            Value::Function(closure) => {
                let scope = closure.env.child();
                if args.len() < closure.body.params.len() {
                    args.resize(closure.body.params.len(), Value::Nil);
                }
                let extra: Vec<Value> = args.split_off(closure.body.params.len());
                for (param, arg) in closure.body.params.iter().zip(args) {
                    scope.declare(param, arg);
                }
                if closure.body.has_vararg {
                    // `...` is stored as a table in a hidden local; the
                    // Vararg expression expands it back to values.
                    let mut t = Table::new();
                    for v in extra {
                        t.push(v);
                    }
                    scope.declare("...", Value::Table(std::rc::Rc::new(RefCell::new(t))));
                } else {
                    // Shadow any enclosing vararg scope: `...` is not
                    // visible inside non-vararg functions (Lua rule).
                    scope.declare("...", Value::Nil);
                }
                match self.exec_block(&closure.body.body, &scope) {
                    Ok(Flow::Return(values)) => Ok(values),
                    Ok(_) => Ok(Vec::new()),
                    Err(e) => Err(e),
                }
            }
            Value::Native(native) => (native.f.clone())(self, args),
            other => Err(self.rt(format!("attempt to call a {} value", other.type_name()), 0)),
        };
        self.depth -= 1;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RuaErrorKind;

    fn eval1(src: &str) -> Value {
        Interpreter::new()
            .eval(src)
            .unwrap()
            .into_iter()
            .next()
            .unwrap_or(Value::Nil)
    }

    fn eval_err(src: &str) -> RuaError {
        Interpreter::new().eval(src).unwrap_err()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval1("return 1 + 2 * 3"), Value::Num(7.0));
        assert_eq!(eval1("return (1 + 2) * 3"), Value::Num(9.0));
        assert_eq!(eval1("return 2 ^ 3 ^ 2"), Value::Num(512.0));
        assert_eq!(eval1("return 7 % 3"), Value::Num(1.0));
        assert_eq!(eval1("return -7 % 3"), Value::Num(2.0)); // Lua sign rule
        assert_eq!(eval1("return -2 ^ 2"), Value::Num(-4.0));
        assert_eq!(eval1("return 10 / 4"), Value::Num(2.5));
    }

    #[test]
    fn string_number_coercion_in_arithmetic() {
        assert_eq!(eval1("return '10' + 5"), Value::Num(15.0));
        assert!(matches!(
            eval_err("return {} + 1").kind(),
            RuaErrorKind::Runtime
        ));
    }

    #[test]
    fn concat() {
        assert_eq!(eval1("return 'a' .. 'b' .. 1"), Value::str("ab1"));
        assert_eq!(eval1("return 1 .. 2"), Value::str("12"));
    }

    #[test]
    fn comparison_and_logic() {
        assert_eq!(eval1("return 1 < 2"), Value::Bool(true));
        assert_eq!(eval1("return 'a' < 'b'"), Value::Bool(true));
        assert_eq!(eval1("return nil == false"), Value::Bool(false));
        assert_eq!(eval1("return 1 and 2"), Value::Num(2.0));
        assert_eq!(eval1("return nil and 2"), Value::Nil);
        assert_eq!(eval1("return nil or 'x'"), Value::str("x"));
        assert_eq!(eval1("return not nil"), Value::Bool(true));
        assert!(eval_err("return 1 < 'a'").to_string().contains("compare"));
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        let v = eval1("local n = 0\nlocal function f() n = n + 1 return true end\nlocal x = false and f()\nreturn n");
        assert_eq!(v, Value::Num(0.0));
    }

    #[test]
    fn locals_scope_and_globals() {
        let v = eval1("x = 1\ndo local x = 2 end\nreturn x");
        assert_eq!(v, Value::Num(1.0));
        let v = eval1("local x = 1\nif true then x = 2 end\nreturn x");
        assert_eq!(v, Value::Num(2.0));
    }

    #[test]
    fn closures_capture_by_reference() {
        let v = eval1(
            r#"
            local function counter()
                local n = 0
                return function() n = n + 1 return n end
            end
            local c = counter()
            c() c()
            return c()
        "#,
        );
        assert_eq!(v, Value::Num(3.0));
    }

    #[test]
    fn multiple_assignment_and_returns() {
        let out = Interpreter::new()
            .eval("local function two() return 1, 2 end\nlocal a, b, c = two()\nreturn a, b, c")
            .unwrap();
        assert_eq!(out, vec![Value::Num(1.0), Value::Num(2.0), Value::Nil]);
        // Only the last call in a list expands.
        let out = Interpreter::new()
            .eval("local function two() return 1, 2 end\nreturn two(), two()")
            .unwrap();
        assert_eq!(out, vec![Value::Num(1.0), Value::Num(1.0), Value::Num(2.0)]);
    }

    #[test]
    fn swap_assignment() {
        let out = Interpreter::new()
            .eval("local a, b = 1, 2\na, b = b, a\nreturn a, b")
            .unwrap();
        assert_eq!(out, vec![Value::Num(2.0), Value::Num(1.0)]);
    }

    #[test]
    fn numeric_for_with_step_and_break() {
        assert_eq!(
            eval1("local s = 0 for i = 1, 10 do s = s + i end return s"),
            Value::Num(55.0)
        );
        assert_eq!(
            eval1("local s = 0 for i = 10, 1, -2 do s = s + i end return s"),
            Value::Num(30.0)
        );
        assert_eq!(
            eval1("local s = 0 for i = 1, 10 do if i > 3 then break end s = s + i end return s"),
            Value::Num(6.0)
        );
        assert!(eval_err("for i = 1, 10, 0 do end")
            .to_string()
            .contains("step"));
    }

    #[test]
    fn while_and_repeat() {
        assert_eq!(
            eval1("local n = 0 while n < 5 do n = n + 1 end return n"),
            Value::Num(5.0)
        );
        assert_eq!(
            eval1("local n = 0 repeat n = n + 1 until n >= 3 return n"),
            Value::Num(3.0)
        );
        // repeat's condition sees body locals.
        assert_eq!(
            eval1("local n = 0 repeat local done = n > 1 n = n + 1 until done return n"),
            Value::Num(3.0)
        );
    }

    #[test]
    fn tables_and_methods() {
        assert_eq!(
            eval1("local t = {a = 1} function t:get() return self.a end return t:get()"),
            Value::Num(1.0)
        );
        assert_eq!(
            eval1("local t = {10, 20, 30} return t[2] + #t"),
            Value::Num(23.0)
        );
        assert_eq!(
            eval1("local t = {} t.x = 'v' return t['x']"),
            Value::str("v")
        );
        assert_eq!(
            eval1("local t = {} t[1] = 5 t[1] = nil return t[1]"),
            Value::Nil
        );
    }

    #[test]
    fn method_call_on_nil_is_an_error() {
        let e = eval_err("local t = {} return t:missing()");
        assert!(e.to_string().contains("missing"));
        let e = eval_err("local s = 'str' return s:upper()");
        assert!(e.to_string().contains("string"));
    }

    #[test]
    fn function_statement_declares_global() {
        let mut rua = Interpreter::new();
        rua.eval("function greet() return 'hi' end").unwrap();
        let f = rua.global("greet");
        assert_eq!(rua.call(&f, vec![]).unwrap(), vec![Value::str("hi")]);
    }

    #[test]
    fn local_function_can_recurse() {
        assert_eq!(
            eval1(
                "local function fib(n) if n < 2 then return n end return fib(n-1) + fib(n-2) end return fib(10)"
            ),
            Value::Num(55.0)
        );
    }

    #[test]
    fn stack_overflow_is_caught() {
        let e = eval_err("local function f() return f() end return f()");
        assert!(e.to_string().contains("stack overflow"));
    }

    #[test]
    fn budget_stops_runaway_code() {
        let mut rua = Interpreter::new();
        rua.set_budget(Some(10_000));
        let err = rua.eval("while true do end").unwrap_err();
        assert_eq!(err.kind(), RuaErrorKind::BudgetExhausted);
        // Budget resets per eval.
        assert!(rua.eval("return 1").is_ok());
    }

    #[test]
    fn memory_cap_stops_table_bomb() {
        let mut rua = Interpreter::new();
        rua.set_sandbox(&SandboxPolicy::default().with_memory_limit(Some(4096)));
        let err = rua
            .eval("local t = {} local i = 0 while true do i = i + 1 t[i] = i end")
            .unwrap_err();
        assert_eq!(err.kind(), RuaErrorKind::ResourceExhausted);
        assert!(err.message().contains("memory"));
        // Accounting resets per eval.
        assert!(rua.eval("return {1, 2, 3}").is_ok());
    }

    #[test]
    fn memory_cap_stops_string_bomb() {
        let mut rua = Interpreter::new();
        rua.set_sandbox(&SandboxPolicy::default().with_memory_limit(Some(1 << 16)));
        let err = rua
            .eval("local s = 'x' while true do s = s .. s end")
            .unwrap_err();
        assert_eq!(err.kind(), RuaErrorKind::ResourceExhausted);
    }

    #[test]
    fn wall_clock_deadline_fires() {
        let mut rua = Interpreter::new();
        rua.set_sandbox(
            &SandboxPolicy::default().with_wall_clock(Some(std::time::Duration::from_millis(10))),
        );
        let err = rua.eval("while true do end").unwrap_err();
        assert_eq!(err.kind(), RuaErrorKind::ResourceExhausted);
        assert!(err.message().contains("deadline"));
    }

    #[test]
    fn call_depth_cap_is_configurable() {
        let mut rua = Interpreter::new();
        rua.set_sandbox(&SandboxPolicy::default().with_max_call_depth(10));
        let err = rua
            .eval("local function f(n) return f(n + 1) end return f(0)")
            .unwrap_err();
        assert_eq!(err.kind(), RuaErrorKind::ResourceExhausted);
        assert!(err.message().contains("stack overflow"));
    }

    #[test]
    fn pcall_cannot_swallow_resource_errors() {
        let mut rua = Interpreter::new();
        rua.set_sandbox(&SandboxPolicy::default().with_memory_limit(Some(1 << 16)));
        // A catching pcall would return (false, msg) and let the chunk
        // run to completion; the re-raise makes the whole eval fail.
        let err = rua
            .eval(
                "local ok, msg = pcall(function() local s = 'x' while true do s = s .. s end end)
                 return ok, msg",
            )
            .unwrap_err();
        assert_eq!(err.kind(), RuaErrorKind::ResourceExhausted);
        // Plain runtime errors stay catchable.
        let out = rua
            .eval("local ok, msg = pcall(function() error('boom') end) return ok, msg")
            .unwrap();
        assert_eq!(out[0], Value::Bool(false));
    }

    #[test]
    fn remote_profile_strips_host_escapes() {
        let mut rua = Interpreter::new();
        rua.set_reader(|_| Some("secret".to_owned()));
        rua.set_sandbox(&SandboxPolicy::remote());
        for src in [
            "print('leak')",
            "readfrom('/etc/passwd')",
            "read('*a')",
            "return _G.x",
        ] {
            let err = rua.eval(src).unwrap_err();
            assert!(
                err.message().contains("call a nil") || err.message().contains("index a nil"),
                "{src}: {err}"
            );
        }
        // The computational stdlib survives.
        assert_eq!(
            rua.eval("return math.floor(2.9)").unwrap(),
            vec![Value::Num(2.0)]
        );
    }

    #[test]
    fn compile_returns_callable_chunk() {
        let mut rua = Interpreter::new();
        let f = rua.compile("return 40 + 2").unwrap();
        assert_eq!(rua.call(&f, vec![]).unwrap(), vec![Value::Num(42.0)]);
    }

    #[test]
    fn compile_function_accepts_both_idioms() {
        let mut rua = Interpreter::new();
        let f = rua
            .compile_function("function(a, b) return a + b end")
            .unwrap();
        assert_eq!(
            rua.call(&f, vec![Value::Num(1.0), Value::Num(2.0)])
                .unwrap(),
            vec![Value::Num(3.0)]
        );
        let f = rua
            .compile_function("local k = 10\nreturn function(x) return x * k end")
            .unwrap();
        assert_eq!(
            rua.call(&f, vec![Value::Num(4.0)]).unwrap(),
            vec![Value::Num(40.0)]
        );
        assert!(rua.compile_function("return 42").is_err());
    }

    #[test]
    fn eval_expr_sugar() {
        let mut rua = Interpreter::new();
        assert_eq!(rua.eval_expr("1 + 1").unwrap(), Value::Num(2.0));
    }

    #[test]
    fn native_functions_integrate() {
        let mut rua = Interpreter::new();
        rua.register("add", |_, args| {
            let a = args.first().and_then(Value::as_num).unwrap_or(0.0);
            let b = args.get(1).and_then(Value::as_num).unwrap_or(0.0);
            Ok(vec![Value::Num(a + b)])
        });
        assert_eq!(rua.eval("return add(2, 3)").unwrap(), vec![Value::Num(5.0)]);
    }

    #[test]
    fn missing_arguments_become_nil() {
        assert_eq!(
            eval1("local function f(a, b) return b end return f(1)"),
            Value::Nil
        );
    }

    #[test]
    fn extra_arguments_are_dropped() {
        assert_eq!(
            eval1("local function f(a) return a end return f(1, 2, 3)"),
            Value::Num(1.0)
        );
    }

    #[test]
    fn calling_a_non_function_errors() {
        let e = eval_err("local x = 5 return x()");
        assert!(e.to_string().contains("call a number"));
    }

    #[test]
    fn globals_are_shared_across_evals() {
        let mut rua = Interpreter::new();
        rua.eval("counter = 10").unwrap();
        assert_eq!(
            rua.eval("return counter + 1").unwrap(),
            vec![Value::Num(11.0)]
        );
    }
}
