//! Error reporting for Rua programs.

use std::error::Error;
use std::fmt;

/// What stage produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuaErrorKind {
    /// Lexing or parsing failed.
    Parse,
    /// Execution failed (type error, explicit `error(...)`, …).
    Runtime,
    /// The configured instruction budget was exhausted — the embedder's
    /// defence against runaway remotely-supplied code.
    BudgetExhausted,
    /// A sandbox resource limit other than the step budget was hit:
    /// memory cap, call-depth cap or wall-clock deadline. Like
    /// [`BudgetExhausted`](Self::BudgetExhausted) this class is
    /// *uncatchable* from script code — `pcall` re-raises it — so
    /// hostile code cannot swallow its own termination.
    ResourceExhausted,
}

/// An error raised while compiling or running Rua code.
///
/// Errors carry the 1-based source line where they arose (0 when the
/// location is unknown, e.g. inside a native function).
#[derive(Debug, Clone, PartialEq)]
pub struct RuaError {
    kind: RuaErrorKind,
    message: String,
    line: usize,
}

impl RuaError {
    /// Creates a parse-stage error.
    pub fn parse(message: impl Into<String>, line: usize) -> Self {
        RuaError {
            kind: RuaErrorKind::Parse,
            message: message.into(),
            line,
        }
    }

    /// Creates a runtime error.
    pub fn runtime(message: impl Into<String>, line: usize) -> Self {
        RuaError {
            kind: RuaErrorKind::Runtime,
            message: message.into(),
            line,
        }
    }

    /// Creates a budget-exhaustion error.
    pub fn budget(line: usize) -> Self {
        RuaError {
            kind: RuaErrorKind::BudgetExhausted,
            message: "instruction budget exhausted".into(),
            line,
        }
    }

    /// Creates a memory-cap resource error.
    pub fn memory(line: usize) -> Self {
        RuaError {
            kind: RuaErrorKind::ResourceExhausted,
            message: "memory limit exceeded".into(),
            line,
        }
    }

    /// Creates a wall-clock-deadline resource error.
    pub fn deadline(line: usize) -> Self {
        RuaError {
            kind: RuaErrorKind::ResourceExhausted,
            message: "wall-clock deadline exceeded".into(),
            line,
        }
    }

    /// Creates a generic resource-limit error (depth caps etc.).
    pub fn resource(message: impl Into<String>, line: usize) -> Self {
        RuaError {
            kind: RuaErrorKind::ResourceExhausted,
            message: message.into(),
            line,
        }
    }

    /// True for the error classes that mean "the sandbox stopped this
    /// code" (step budget or any other resource limit). These are
    /// re-raised through `pcall` so script code cannot catch them.
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self.kind,
            RuaErrorKind::BudgetExhausted | RuaErrorKind::ResourceExhausted
        )
    }

    /// The error's stage.
    pub fn kind(&self) -> RuaErrorKind {
        self.kind
    }

    /// The message without location prefix.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The 1-based source line (0 when unknown).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for RuaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.kind {
            RuaErrorKind::Parse => "parse",
            RuaErrorKind::Runtime => "runtime",
            RuaErrorKind::BudgetExhausted => "budget",
            RuaErrorKind::ResourceExhausted => "resource",
        };
        if self.line > 0 {
            write!(
                f,
                "rua {stage} error at line {}: {}",
                self.line, self.message
            )
        } else {
            write!(f, "rua {stage} error: {}", self.message)
        }
    }
}

impl Error for RuaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_line() {
        let e = RuaError::parse("unexpected `end`", 4);
        assert_eq!(e.to_string(), "rua parse error at line 4: unexpected `end`");
        let e = RuaError::runtime("boom", 0);
        assert_eq!(e.to_string(), "rua runtime error: boom");
    }

    #[test]
    fn accessors() {
        let e = RuaError::budget(9);
        assert_eq!(e.kind(), RuaErrorKind::BudgetExhausted);
        assert_eq!(e.line(), 9);
        assert_eq!(e.message(), "instruction budget exhausted");
    }

    #[test]
    fn resource_limit_classification() {
        assert!(RuaError::budget(1).is_resource_limit());
        assert!(RuaError::memory(1).is_resource_limit());
        assert!(RuaError::deadline(1).is_resource_limit());
        assert!(RuaError::resource("call stack overflow", 1).is_resource_limit());
        assert!(!RuaError::runtime("boom", 1).is_resource_limit());
        assert!(!RuaError::parse("bad", 1).is_resource_limit());
        assert_eq!(
            RuaError::memory(2).to_string(),
            "rua resource error at line 2: memory limit exceeded"
        );
    }
}
