//! Error reporting for Rua programs.

use std::error::Error;
use std::fmt;

/// What stage produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuaErrorKind {
    /// Lexing or parsing failed.
    Parse,
    /// Execution failed (type error, explicit `error(...)`, …).
    Runtime,
    /// The configured instruction budget was exhausted — the embedder's
    /// defence against runaway remotely-supplied code.
    BudgetExhausted,
}

/// An error raised while compiling or running Rua code.
///
/// Errors carry the 1-based source line where they arose (0 when the
/// location is unknown, e.g. inside a native function).
#[derive(Debug, Clone, PartialEq)]
pub struct RuaError {
    kind: RuaErrorKind,
    message: String,
    line: usize,
}

impl RuaError {
    /// Creates a parse-stage error.
    pub fn parse(message: impl Into<String>, line: usize) -> Self {
        RuaError {
            kind: RuaErrorKind::Parse,
            message: message.into(),
            line,
        }
    }

    /// Creates a runtime error.
    pub fn runtime(message: impl Into<String>, line: usize) -> Self {
        RuaError {
            kind: RuaErrorKind::Runtime,
            message: message.into(),
            line,
        }
    }

    /// Creates a budget-exhaustion error.
    pub fn budget(line: usize) -> Self {
        RuaError {
            kind: RuaErrorKind::BudgetExhausted,
            message: "instruction budget exhausted".into(),
            line,
        }
    }

    /// The error's stage.
    pub fn kind(&self) -> RuaErrorKind {
        self.kind
    }

    /// The message without location prefix.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The 1-based source line (0 when unknown).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for RuaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.kind {
            RuaErrorKind::Parse => "parse",
            RuaErrorKind::Runtime => "runtime",
            RuaErrorKind::BudgetExhausted => "budget",
        };
        if self.line > 0 {
            write!(
                f,
                "rua {stage} error at line {}: {}",
                self.line, self.message
            )
        } else {
            write!(f, "rua {stage} error: {}", self.message)
        }
    }
}

impl Error for RuaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_line() {
        let e = RuaError::parse("unexpected `end`", 4);
        assert_eq!(e.to_string(), "rua parse error at line 4: unexpected `end`");
        let e = RuaError::runtime("boom", 0);
        assert_eq!(e.to_string(), "rua runtime error: boom");
    }

    #[test]
    fn accessors() {
        let e = RuaError::budget(9);
        assert_eq!(e.kind(), RuaErrorKind::BudgetExhausted);
        assert_eq!(e.line(), 9);
        assert_eq!(e.message(), "instruction budget exhausted");
    }
}
