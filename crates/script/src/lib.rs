//! # Rua — a small, embeddable, Lua-like interpreted language
//!
//! The paper's infrastructure leans on Lua for everything dynamic:
//! adaptation strategies, aspect-update functions and event-diagnosing
//! predicates are *strings of interpreted code* created at run time,
//! shipped across the network (the remote-evaluation paradigm) and
//! installed into live components. `adapta-script` provides that
//! capability from scratch: a dynamically-typed language with Lua's
//! surface syntax — tables, closures, `obj:method()` sugar, `[[long
//! strings]]`, multiple assignment and multiple return values — and a
//! host API in the spirit of the Lua/C API.
//!
//! The paper's code listings (Figures 3, 4 and 7) run unmodified as Rua
//! programs; see the `figures` integration tests of the workspace.
//!
//! ## Example
//!
//! ```
//! use adapta_script::{Interpreter, Value};
//!
//! let mut rua = Interpreter::new();
//! rua.set_global("limit", Value::from(50.0));
//! let out = rua.eval(r#"
//!     local mon = { load = 70 }
//!     function mon:overloaded() return self.load > limit end
//!     return mon:overloaded()
//! "#).unwrap();
//! assert_eq!(out, vec![Value::Bool(true)]);
//! ```
//!
//! ## Embedding
//!
//! Hosts register native functions with
//! [`Interpreter::register`] and exchange [`Value`]s. Each
//! [`Interpreter`] is single-threaded (like a Lua state); the
//! `adapta-core` crate shows how to host one behind a channel to serve
//! concurrent remote requests.
//!
//! ## Differences from Lua
//!
//! Rua implements the subset the paper's listings exercise, plus the
//! conveniences a middleware host needs. Deliberate differences:
//!
//! * **no metatables / tag methods** — method dispatch is plain table
//!   lookup; remote proxies get *generated* method entries instead of
//!   an `__index` hook (see `adapta-core::script_env`);
//! * **deterministic `pairs` order** (sorted keys) so remotely shipped
//!   code behaves identically on every run;
//! * **no coroutines**, no `goto`, no pattern matching in `string.find`
//!   (plain substring search only) and a minimal `string.format`;
//! * **table keys** are booleans, numbers and strings — tables and
//!   functions cannot key (identity semantics are not supported);
//! * a **sandbox** ([`Interpreter::set_sandbox`], [`SandboxPolicy`])
//!   defends the host against hostile remote code — plain Lua has no
//!   analogue: an instruction budget, an allocation cap, a call-depth
//!   cap, a wall-clock deadline, and capability profiles that strip
//!   host-escape functions. Exceeding a limit raises a
//!   `ResourceExhausted`-class error that `pcall` cannot catch;
//! * `readfrom`/`read` (Lua 4 style, used by the paper's Figure 3) read
//!   from a host-pluggable [`Interpreter::set_reader`] instead of the
//!   real filesystem.
//!
//! Supported and tested: closures with upvalue capture, multiple
//! assignment/returns, varargs (`...`, `select`), numeric/generic
//! `for`, `repeat`/`until`, method-call sugar, `[[long strings]]`,
//! `pcall`/`error`, and the `math`/`string`/`table`/`os` libraries'
//! common entry points.

mod ast;
mod error;
mod interp;
mod lexer;
mod parser;
mod stdlib;
mod value;

pub use error::{RuaError, RuaErrorKind};
pub use interp::{CapabilityProfile, Interpreter, NativeFn, SandboxPolicy};
pub use value::{Table, Value};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RuaError>;
