//! The Rua parser: recursive descent with precedence climbing.

use std::rc::Rc;

use crate::ast::*;
use crate::error::RuaError;
use crate::lexer::{lex, SpannedToken, Token};
use crate::Result;

/// Parses a complete chunk (a block) of Rua source.
///
/// # Errors
///
/// Returns a parse-stage [`RuaError`] with the offending line.
pub fn parse(source: &str) -> Result<Block> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let block = p.parse_block()?;
    if p.pos < p.tokens.len() {
        return Err(p.error(format!("unexpected {}", p.tokens[p.pos].token)));
    }
    Ok(block)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn error(&self, message: impl Into<String>) -> RuaError {
        RuaError::parse(message, self.line())
    }

    fn bump(&mut self) -> Result<Token> {
        let tok = self
            .tokens
            .get(self.pos)
            .map(|t| t.token.clone())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(tok)
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Token) -> Result<()> {
        let line = self.line();
        match self.bump() {
            Ok(found) if found == tok => Ok(()),
            Ok(found) => Err(RuaError::parse(
                format!("expected {tok}, found {found}"),
                line,
            )),
            Err(_) => Err(RuaError::parse(
                format!("expected {tok}, found end of input"),
                line,
            )),
        }
    }

    fn expect_name(&mut self) -> Result<String> {
        let line = self.line();
        match self.bump() {
            Ok(Token::Name(n)) => Ok(n),
            Ok(found) => Err(RuaError::parse(
                format!("expected a name, found {found}"),
                line,
            )),
            Err(_) => Err(RuaError::parse("expected a name", line)),
        }
    }

    /// True when the current token terminates a block.
    fn at_block_end(&self) -> bool {
        matches!(
            self.peek(),
            None | Some(Token::End) | Some(Token::Else) | Some(Token::Elseif) | Some(Token::Until)
        )
    }

    fn parse_block(&mut self) -> Result<Block> {
        let mut stats = Vec::new();
        while !self.at_block_end() {
            if self.eat(&Token::Semi) {
                continue;
            }
            let stat = self.parse_stat()?;
            let is_return = matches!(stat.kind, StatKind::Return(_));
            stats.push(stat);
            if is_return {
                // `return` closes the block (Lua rule); allow a `;`.
                self.eat(&Token::Semi);
                break;
            }
        }
        Ok(Block { stats })
    }

    fn parse_stat(&mut self) -> Result<Stat> {
        let line = self.line();
        let kind = match self.peek() {
            Some(Token::Local) => {
                self.bump()?;
                if self.eat(&Token::Function) {
                    let name = self.expect_name()?;
                    let body = self.parse_func_body(Some(name.clone()), false)?;
                    // `local function f` declares f before the body, so
                    // the closure can recurse; model it as local + assign.
                    StatKind::Local {
                        names: vec![name.clone()],
                        exprs: vec![Expr {
                            kind: ExprKind::Function(Rc::new(body)),
                            line,
                        }],
                    }
                } else {
                    let mut names = vec![self.expect_name()?];
                    while self.eat(&Token::Comma) {
                        names.push(self.expect_name()?);
                    }
                    let exprs = if self.eat(&Token::Assign) {
                        self.parse_expr_list()?
                    } else {
                        Vec::new()
                    };
                    StatKind::Local { names, exprs }
                }
            }
            Some(Token::If) => {
                self.bump()?;
                let mut arms = Vec::new();
                let cond = self.parse_expr()?;
                self.expect(Token::Then)?;
                let body = self.parse_block()?;
                arms.push((cond, body));
                let mut else_body = None;
                loop {
                    if self.eat(&Token::Elseif) {
                        let cond = self.parse_expr()?;
                        self.expect(Token::Then)?;
                        let body = self.parse_block()?;
                        arms.push((cond, body));
                    } else if self.eat(&Token::Else) {
                        else_body = Some(self.parse_block()?);
                        self.expect(Token::End)?;
                        break;
                    } else {
                        self.expect(Token::End)?;
                        break;
                    }
                }
                StatKind::If { arms, else_body }
            }
            Some(Token::While) => {
                self.bump()?;
                let cond = self.parse_expr()?;
                self.expect(Token::Do)?;
                let body = self.parse_block()?;
                self.expect(Token::End)?;
                StatKind::While { cond, body }
            }
            Some(Token::Repeat) => {
                self.bump()?;
                let body = self.parse_block()?;
                self.expect(Token::Until)?;
                let cond = self.parse_expr()?;
                StatKind::Repeat { body, cond }
            }
            Some(Token::For) => {
                self.bump()?;
                let first = self.expect_name()?;
                if self.eat(&Token::Assign) {
                    let start = self.parse_expr()?;
                    self.expect(Token::Comma)?;
                    let stop = self.parse_expr()?;
                    let step = if self.eat(&Token::Comma) {
                        Some(self.parse_expr()?)
                    } else {
                        None
                    };
                    self.expect(Token::Do)?;
                    let body = self.parse_block()?;
                    self.expect(Token::End)?;
                    StatKind::NumericFor {
                        var: first,
                        start,
                        stop,
                        step,
                        body,
                    }
                } else {
                    let mut names = vec![first];
                    while self.eat(&Token::Comma) {
                        names.push(self.expect_name()?);
                    }
                    self.expect(Token::In)?;
                    let exprs = self.parse_expr_list()?;
                    self.expect(Token::Do)?;
                    let body = self.parse_block()?;
                    self.expect(Token::End)?;
                    StatKind::GenericFor { names, exprs, body }
                }
            }
            Some(Token::Do) => {
                self.bump()?;
                let body = self.parse_block()?;
                self.expect(Token::End)?;
                StatKind::Do(body)
            }
            Some(Token::Return) => {
                self.bump()?;
                let exprs = if self.at_block_end() || self.peek() == Some(&Token::Semi) {
                    Vec::new()
                } else {
                    self.parse_expr_list()?
                };
                StatKind::Return(exprs)
            }
            Some(Token::Break) => {
                self.bump()?;
                StatKind::Break
            }
            Some(Token::Function) => {
                self.bump()?;
                // function Name{.field}[:method](params) body end
                let base = self.expect_name()?;
                let mut target = Expr {
                    kind: ExprKind::Name(base.clone()),
                    line,
                };
                let mut path = base;
                let mut is_method = false;
                loop {
                    if self.eat(&Token::Dot) {
                        let field = self.expect_name()?;
                        path = format!("{path}.{field}");
                        target = index_expr(target, str_expr(&field, line), line);
                    } else if self.eat(&Token::Colon) {
                        let method = self.expect_name()?;
                        path = format!("{path}:{method}");
                        target = index_expr(target, str_expr(&method, line), line);
                        is_method = true;
                        break;
                    } else {
                        break;
                    }
                }
                let body = self.parse_func_body(Some(path), is_method)?;
                let func = Expr {
                    kind: ExprKind::Function(Rc::new(body)),
                    line,
                };
                let lvalue = match target.kind {
                    ExprKind::Name(n) => LValue::Name(n),
                    ExprKind::Index { obj, key } => LValue::Index {
                        obj: *obj,
                        key: *key,
                    },
                    _ => unreachable!("function name target is a name or index"),
                };
                StatKind::Assign {
                    targets: vec![lvalue],
                    exprs: vec![func],
                }
            }
            _ => {
                // Expression statement: either a call or an assignment.
                let expr = self.parse_suffixed()?;
                if self.peek() == Some(&Token::Assign) || self.peek() == Some(&Token::Comma) {
                    let mut targets = vec![self.to_lvalue(expr)?];
                    while self.eat(&Token::Comma) {
                        let next = self.parse_suffixed()?;
                        targets.push(self.to_lvalue(next)?);
                    }
                    self.expect(Token::Assign)?;
                    let exprs = self.parse_expr_list()?;
                    StatKind::Assign { targets, exprs }
                } else {
                    match expr.kind {
                        ExprKind::Call { .. } | ExprKind::MethodCall { .. } => StatKind::Call(expr),
                        _ => {
                            return Err(
                                self.error("expected statement (is this expression a call?)")
                            )
                        }
                    }
                }
            }
        };
        Ok(Stat { kind, line })
    }

    fn to_lvalue(&self, expr: Expr) -> Result<LValue> {
        match expr.kind {
            ExprKind::Name(n) => Ok(LValue::Name(n)),
            ExprKind::Index { obj, key } => Ok(LValue::Index {
                obj: *obj,
                key: *key,
            }),
            _ => Err(RuaError::parse(
                "cannot assign to this expression",
                expr.line,
            )),
        }
    }

    fn parse_expr_list(&mut self) -> Result<Vec<Expr>> {
        let mut exprs = vec![self.parse_expr()?];
        while self.eat(&Token::Comma) {
            exprs.push(self.parse_expr()?);
        }
        Ok(exprs)
    }

    fn parse_func_body(&mut self, name: Option<String>, is_method: bool) -> Result<FuncBody> {
        let line = self.line();
        self.expect(Token::LParen)?;
        let mut params = Vec::new();
        let mut has_vararg = false;
        if is_method {
            params.push("self".to_owned());
        }
        if !self.eat(&Token::RParen) {
            loop {
                if self.eat(&Token::Ellipsis) {
                    has_vararg = true;
                    self.expect(Token::RParen)?;
                    break;
                }
                params.push(self.expect_name()?);
                if self.eat(&Token::RParen) {
                    break;
                }
                self.expect(Token::Comma)?;
            }
        }
        let body = self.parse_block()?;
        self.expect(Token::End)?;
        Ok(FuncBody {
            params,
            has_vararg,
            body,
            name,
            line,
        })
    }

    // ---- expressions ------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_binary(0)
    }

    /// Precedence climbing. Levels (low→high): or, and, comparison,
    /// concat (right-assoc), add, mul, unary, pow (right-assoc).
    fn parse_binary(&mut self, min_level: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, level, right_assoc)) = self.peek().and_then(binop_info) {
            if level < min_level {
                break;
            }
            let line = self.line();
            self.bump()?;
            let next_min = if right_assoc { level } else { level + 1 };
            let rhs = self.parse_binary(next_min)?;
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        let line = self.line();
        let op = match self.peek() {
            Some(Token::Not) => Some(UnOp::Not),
            Some(Token::Minus) => Some(UnOp::Neg),
            Some(Token::Hash) => Some(UnOp::Len),
            _ => None,
        };
        if let Some(op) = op {
            self.bump()?;
            // Unary binds tighter than binary ops except `^`.
            let expr = self.parse_binary(UNARY_LEVEL)?;
            return Ok(Expr {
                kind: ExprKind::Unary {
                    op,
                    expr: Box::new(expr),
                },
                line,
            });
        }
        self.parse_pow_operand()
    }

    /// Parses a suffixed expression, then an optional right-assoc `^`.
    fn parse_pow_operand(&mut self) -> Result<Expr> {
        let base = self.parse_suffixed()?;
        if self.peek() == Some(&Token::Caret) {
            let line = self.line();
            self.bump()?;
            // `^` is right-associative and binds tighter than unary on
            // the right side.
            let rhs = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Binary {
                    op: BinOp::Pow,
                    lhs: Box::new(base),
                    rhs: Box::new(rhs),
                },
                line,
            });
        }
        Ok(base)
    }

    /// primary expression followed by `.f`, `[k]`, `(args)`, `:m(args)`.
    fn parse_suffixed(&mut self) -> Result<Expr> {
        let mut expr = self.parse_primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                Some(Token::Dot) => {
                    self.bump()?;
                    let field = self.expect_name()?;
                    expr = index_expr(expr, str_expr(&field, line), line);
                }
                Some(Token::LBracket) => {
                    self.bump()?;
                    let key = self.parse_expr()?;
                    self.expect(Token::RBracket)?;
                    expr = index_expr(expr, key, line);
                }
                Some(Token::LParen) => {
                    self.bump()?;
                    let args = if self.eat(&Token::RParen) {
                        Vec::new()
                    } else {
                        let args = self.parse_expr_list()?;
                        self.expect(Token::RParen)?;
                        args
                    };
                    expr = Expr {
                        kind: ExprKind::Call {
                            f: Box::new(expr),
                            args,
                        },
                        line,
                    };
                }
                Some(Token::Colon) => {
                    self.bump()?;
                    let method = self.expect_name()?;
                    self.expect(Token::LParen)?;
                    let args = if self.eat(&Token::RParen) {
                        Vec::new()
                    } else {
                        let args = self.parse_expr_list()?;
                        self.expect(Token::RParen)?;
                        args
                    };
                    expr = Expr {
                        kind: ExprKind::MethodCall {
                            obj: Box::new(expr),
                            method,
                            args,
                        },
                        line,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let line = self.line();
        let kind = match self.bump()? {
            Token::Nil => ExprKind::Nil,
            Token::True => ExprKind::True,
            Token::False => ExprKind::False,
            Token::Num(n) => ExprKind::Num(n),
            Token::Str(s) => ExprKind::Str(s),
            Token::Name(n) => ExprKind::Name(n),
            Token::Ellipsis => ExprKind::Vararg,
            Token::Function => {
                let body = self.parse_func_body(None, false)?;
                ExprKind::Function(Rc::new(body))
            }
            Token::LParen => {
                let inner = self.parse_expr()?;
                self.expect(Token::RParen)?;
                // Parenthesisation truncates multiple values to one; our
                // evaluator already yields one value per expression, so
                // the inner expression is used as-is.
                return Ok(inner);
            }
            Token::LBrace => {
                let mut items = Vec::new();
                loop {
                    if self.eat(&Token::RBrace) {
                        break;
                    }
                    match self.peek() {
                        Some(Token::LBracket) => {
                            self.bump()?;
                            let key = self.parse_expr()?;
                            self.expect(Token::RBracket)?;
                            self.expect(Token::Assign)?;
                            let value = self.parse_expr()?;
                            items.push(TableItem::Keyed(key, value));
                        }
                        Some(Token::Name(_))
                            if self.tokens.get(self.pos + 1).map(|t| &t.token)
                                == Some(&Token::Assign) =>
                        {
                            let name = self.expect_name()?;
                            self.expect(Token::Assign)?;
                            let value = self.parse_expr()?;
                            items.push(TableItem::Named(name, value));
                        }
                        _ => {
                            items.push(TableItem::Positional(self.parse_expr()?));
                        }
                    }
                    if !(self.eat(&Token::Comma) || self.eat(&Token::Semi)) {
                        self.expect(Token::RBrace)?;
                        break;
                    }
                }
                ExprKind::Table(items)
            }
            other => {
                return Err(RuaError::parse(
                    format!("unexpected {other} in expression"),
                    line,
                ))
            }
        };
        Ok(Expr { kind, line })
    }
}

/// Precedence level reached by unary operators.
const UNARY_LEVEL: u8 = 6;

fn binop_info(tok: &Token) -> Option<(BinOp, u8, bool)> {
    Some(match tok {
        Token::Or => (BinOp::Or, 0, false),
        Token::And => (BinOp::And, 1, false),
        Token::Less => (BinOp::Lt, 2, false),
        Token::Greater => (BinOp::Gt, 2, false),
        Token::LessEq => (BinOp::Le, 2, false),
        Token::GreaterEq => (BinOp::Ge, 2, false),
        Token::EqEq => (BinOp::Eq, 2, false),
        Token::NotEq => (BinOp::Ne, 2, false),
        Token::Concat => (BinOp::Concat, 3, true),
        Token::Plus => (BinOp::Add, 4, false),
        Token::Minus => (BinOp::Sub, 4, false),
        Token::Star => (BinOp::Mul, 5, false),
        Token::Slash => (BinOp::Div, 5, false),
        Token::Percent => (BinOp::Mod, 5, false),
        // `^` is handled by parse_pow_operand (binds above unary).
        _ => return None,
    })
}

fn index_expr(obj: Expr, key: Expr, line: usize) -> Expr {
    Expr {
        kind: ExprKind::Index {
            obj: Box::new(obj),
            key: Box::new(key),
        },
        line,
    }
}

fn str_expr(s: &str, line: usize) -> Expr {
    Expr {
        kind: ExprKind::Str(s.to_owned()),
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_local_and_assign() {
        let b = parse("local a, b = 1, 2\na = b").unwrap();
        assert_eq!(b.stats.len(), 2);
        assert!(matches!(b.stats[0].kind, StatKind::Local { .. }));
        assert!(matches!(b.stats[1].kind, StatKind::Assign { .. }));
    }

    #[test]
    fn precedence_is_lua_like() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let b = parse("x = 1 + 2 * 3").unwrap();
        let StatKind::Assign { exprs, .. } = &b.stats[0].kind else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &exprs[0].kind
        else {
            panic!("expected top-level add, got {:?}", exprs[0].kind)
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn comparison_binds_looser_than_concat() {
        // a .. b == c parses as (a .. b) == c
        let b = parse("x = a .. b == c").unwrap();
        let StatKind::Assign { exprs, .. } = &b.stats[0].kind else {
            panic!()
        };
        assert!(matches!(
            exprs[0].kind,
            ExprKind::Binary { op: BinOp::Eq, .. }
        ));
    }

    #[test]
    fn concat_is_right_associative() {
        let b = parse("x = a .. b .. c").unwrap();
        let StatKind::Assign { exprs, .. } = &b.stats[0].kind else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Concat,
            rhs,
            ..
        } = &exprs[0].kind
        else {
            panic!()
        };
        assert!(matches!(
            rhs.kind,
            ExprKind::Binary {
                op: BinOp::Concat,
                ..
            }
        ));
    }

    #[test]
    fn unary_and_pow() {
        // -x^2 parses as -(x^2), like Lua.
        let b = parse("y = -x^2").unwrap();
        let StatKind::Assign { exprs, .. } = &b.stats[0].kind else {
            panic!()
        };
        let ExprKind::Unary {
            op: UnOp::Neg,
            expr,
        } = &exprs[0].kind
        else {
            panic!("expected neg at top, got {:?}", exprs[0].kind)
        };
        assert!(matches!(expr.kind, ExprKind::Binary { op: BinOp::Pow, .. }));
    }

    #[test]
    fn method_call_and_field_chains() {
        let b = parse(r#"mon:defineAspect("Increasing", f)"#).unwrap();
        assert!(matches!(
            b.stats[0].kind,
            StatKind::Call(Expr {
                kind: ExprKind::MethodCall { .. },
                ..
            })
        ));
        let b = parse("x = a.b.c[1]").unwrap();
        assert!(matches!(b.stats[0].kind, StatKind::Assign { .. }));
    }

    #[test]
    fn function_statement_sugar() {
        let b = parse("function t.f(x) return x end").unwrap();
        let StatKind::Assign { targets, exprs } = &b.stats[0].kind else {
            panic!()
        };
        assert!(matches!(targets[0], LValue::Index { .. }));
        let ExprKind::Function(body) = &exprs[0].kind else {
            panic!()
        };
        assert_eq!(body.params, vec!["x"]);

        let b = parse("function t:m(x) return x end").unwrap();
        let StatKind::Assign { exprs, .. } = &b.stats[0].kind else {
            panic!()
        };
        let ExprKind::Function(body) = &exprs[0].kind else {
            panic!()
        };
        assert_eq!(body.params, vec!["self", "x"]);
    }

    #[test]
    fn table_constructors() {
        let b = parse(r#"t = {nj1, nj5, label = "load", [10] = true}"#).unwrap();
        let StatKind::Assign { exprs, .. } = &b.stats[0].kind else {
            panic!()
        };
        let ExprKind::Table(items) = &exprs[0].kind else {
            panic!()
        };
        assert_eq!(items.len(), 4);
        assert!(matches!(items[0], TableItem::Positional(_)));
        assert!(matches!(items[2], TableItem::Named(..)));
        assert!(matches!(items[3], TableItem::Keyed(..)));
    }

    #[test]
    fn control_flow_forms_parse() {
        parse("if a then b() elseif c then d() else e() end").unwrap();
        parse("while x < 10 do x = x + 1 end").unwrap();
        parse("repeat x = x + 1 until x > 3").unwrap();
        parse("for i = 1, 10, 2 do f(i) end").unwrap();
        parse("for k, v in pairs(t) do f(k, v) end").unwrap();
        parse("do local x = 1 end").unwrap();
        parse("while true do break end").unwrap();
    }

    #[test]
    fn return_closes_block() {
        assert!(parse("return 1, 2").is_ok());
        assert!(parse("return\n").is_ok());
        // Statements after return are rejected.
        assert!(parse("return 1 x = 2").is_err());
    }

    #[test]
    fn non_call_expression_statement_is_an_error() {
        assert!(parse("x + 1").is_err());
        assert!(parse("42").is_err());
    }

    #[test]
    fn cannot_assign_to_call() {
        assert!(parse("f() = 3").is_err());
    }

    #[test]
    fn fig7_strategy_listing_parses() {
        // The shape of the paper's Figure 7 adaptation strategy.
        let src = r#"
            smartproxy._strategies = {
                LoadIncrease = function(self)
                    self._loadavg = self._loadavgmon:getvalue()
                    local query
                    query = "LoadAvg < 50 and LoadAvgIncreasing == no "
                    if not self:_select(query) then
                        self._loadavgmon:attachEventObserver(
                            self._observer,
                            "LoadIncrease",
                            [[function(self, value, monitor)
                                local incr
                                incr = monitor:getAspectValue("Increasing")
                                return value[1] > 70 and incr == "yes"
                            end]])
                    end
                end
            }
        "#;
        parse(src).unwrap();
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("x = 1\ny = )").unwrap_err();
        assert_eq!(err.line(), 2);
    }
}
