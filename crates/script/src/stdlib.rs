//! The Rua standard library.
//!
//! A pragmatic subset of Lua's: base functions (`print`, `type`,
//! `tostring`, `tonumber`, `pairs`, `ipairs`, `next`, `unpack`, `error`,
//! `assert`, `pcall`), `math`, `string` (plain-text `find`, no
//! patterns), `table`, `os.clock`/`os.time` (backed by the host clock),
//! and the `readfrom`/`read` input functions the paper's Figure 3 uses
//! to sample `/proc/loadavg` (backed by a host-pluggable reader).

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::RuaError;
use crate::interp::Interpreter;
use crate::value::{Table, Value};
use crate::Result;

fn err(message: impl Into<String>) -> RuaError {
    RuaError::runtime(message, 0)
}

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Nil)
}

fn num_arg(args: &[Value], i: usize, what: &str) -> Result<f64> {
    arg(args, i).coerce_num().ok_or_else(|| {
        err(format!(
            "bad argument #{} to {what} (number expected)",
            i + 1
        ))
    })
}

fn str_arg(args: &[Value], i: usize, what: &str) -> Result<Rc<str>> {
    match arg(args, i) {
        Value::Str(s) => Ok(s),
        Value::Num(n) => Ok(Rc::from(crate::value::fmt_number(n).as_str())),
        other => Err(err(format!(
            "bad argument #{} to {what} (string expected, got {})",
            i + 1,
            other.type_name()
        ))),
    }
}

fn table_arg(args: &[Value], i: usize, what: &str) -> Result<Rc<RefCell<Table>>> {
    match arg(args, i) {
        Value::Table(t) => Ok(t),
        other => Err(err(format!(
            "bad argument #{} to {what} (table expected, got {})",
            i + 1,
            other.type_name()
        ))),
    }
}

/// Installs the standard library into an interpreter's globals.
pub fn install(interp: &mut Interpreter) {
    base(interp);
    math_lib(interp);
    string_lib(interp);
    table_lib(interp);
    os_lib(interp);
    io_like(interp);
}

fn base(interp: &mut Interpreter) {
    interp.register("print", |interp, args| {
        let line = args
            .iter()
            .map(Value::to_display_string)
            .collect::<Vec<_>>()
            .join("\t");
        match &mut interp.printed {
            Some(captured) => captured.push(line),
            None => println!("{line}"),
        }
        Ok(vec![])
    });

    interp.register("type", |_, args| {
        Ok(vec![Value::str(arg(&args, 0).type_name())])
    });

    interp.register("tostring", |_, args| {
        Ok(vec![Value::str(arg(&args, 0).to_display_string())])
    });

    interp.register("tonumber", |_, args| {
        let v = arg(&args, 0);
        let result = match args.get(1).and_then(Value::as_num) {
            Some(base) => {
                let base = base as u32;
                v.as_str()
                    .and_then(|s| i64::from_str_radix(s.trim(), base).ok())
                    .map(|n| n as f64)
            }
            None => v.coerce_num(),
        };
        Ok(vec![result.map(Value::Num).unwrap_or(Value::Nil)])
    });

    interp.register("error", |_, args| {
        Err(err(arg(&args, 0).to_display_string()))
    });

    interp.register("assert", |_, args| {
        if arg(&args, 0).truthy() {
            Ok(args)
        } else {
            let msg = match arg(&args, 1) {
                Value::Nil => "assertion failed!".to_owned(),
                other => other.to_display_string(),
            };
            Err(err(msg))
        }
    });

    interp.register("pcall", |interp, mut args| {
        if args.is_empty() {
            return Err(err("bad argument #1 to pcall (value expected)"));
        }
        let f = args.remove(0);
        match interp.call_value(&f, args) {
            Ok(mut values) => {
                let mut out = vec![Value::Bool(true)];
                out.append(&mut values);
                Ok(out)
            }
            // Resource-limit errors are uncatchable: re-raise them so
            // sandboxed code cannot swallow its own termination.
            Err(e) if e.is_resource_limit() => Err(e),
            Err(e) => Ok(vec![Value::Bool(false), Value::str(e.message())]),
        }
    });

    interp.register("next", |_, args| {
        let t = table_arg(&args, 0, "next")?;
        let key = arg(&args, 1);
        let key = if key == Value::Nil { None } else { Some(key) };
        let entry = t.borrow().next_after(key.as_ref());
        match entry {
            Some((k, v)) => Ok(vec![k, v]),
            None => Ok(vec![Value::Nil]),
        }
    });

    interp.register("pairs", |interp, args| {
        let t = table_arg(&args, 0, "pairs")?;
        let next = interp.global("next");
        Ok(vec![next, Value::Table(t), Value::Nil])
    });

    interp.register("ipairs", |_, args| {
        let t = table_arg(&args, 0, "ipairs")?;
        let iter = Interpreter::native("ipairs_iter", |_, args| {
            let t = table_arg(&args, 0, "ipairs iterator")?;
            let i = num_arg(&args, 1, "ipairs iterator")? as i64 + 1;
            let v = t.borrow().get(&Value::Num(i as f64));
            if v == Value::Nil {
                Ok(vec![Value::Nil])
            } else {
                Ok(vec![Value::Num(i as f64), v])
            }
        });
        Ok(vec![iter, Value::Table(t), Value::Num(0.0)])
    });

    interp.register("select", |_, args| match args.first() {
        Some(Value::Str(s)) if &**s == "#" => {
            Ok(vec![Value::Num(args.len().saturating_sub(1) as f64)])
        }
        Some(v) => {
            let n = v
                .coerce_num()
                .ok_or_else(|| err("bad argument #1 to select (number or '#')"))?;
            if n < 1.0 {
                return Err(err("bad argument #1 to select (index out of range)"));
            }
            Ok(args.into_iter().skip(n as usize).collect())
        }
        None => Err(err("bad argument #1 to select (value expected)")),
    });

    interp.register("unpack", |_, args| {
        let t = table_arg(&args, 0, "unpack")?;
        let t = t.borrow();
        Ok((1..=t.len())
            .map(|i| t.get(&Value::Num(i as f64)))
            .collect())
    });

    interp.register("rawget", |_, args| {
        let t = table_arg(&args, 0, "rawget")?;
        let v = t.borrow().get(&arg(&args, 1));
        Ok(vec![v])
    });

    interp.register("rawset", |interp, args| {
        let t = table_arg(&args, 0, "rawset")?;
        interp.charge(crate::interp::TABLE_ENTRY_COST, 0)?;
        t.borrow_mut()
            .set(arg(&args, 1), arg(&args, 2))
            .map_err(err)?;
        Ok(vec![Value::Table(t)])
    });

    // Expose the globals table itself, Lua-style.
    let globals = interp.globals();
    interp.set_global("_G", Value::Table(globals));
}

fn new_table(entries: Vec<(&str, Value)>) -> Value {
    let mut t = Table::new();
    for (k, v) in entries {
        t.set_str(k, v);
    }
    Value::Table(Rc::new(RefCell::new(t)))
}

fn math_lib(interp: &mut Interpreter) {
    let n = |name: &str, f: fn(f64) -> f64| {
        let what = name.to_owned();
        Interpreter::native(name, move |_, args| {
            Ok(vec![Value::Num(f(num_arg(&args, 0, &what)?))])
        })
    };
    let math = new_table(vec![
        ("floor", n("math.floor", f64::floor)),
        ("ceil", n("math.ceil", f64::ceil)),
        ("abs", n("math.abs", f64::abs)),
        ("sqrt", n("math.sqrt", f64::sqrt)),
        ("exp", n("math.exp", f64::exp)),
        ("log", n("math.log", f64::ln)),
        ("sin", n("math.sin", f64::sin)),
        ("cos", n("math.cos", f64::cos)),
        ("huge", Value::Num(f64::INFINITY)),
        ("pi", Value::Num(std::f64::consts::PI)),
        (
            "max",
            Interpreter::native("math.max", |_, args| {
                let mut best = num_arg(&args, 0, "math.max")?;
                for i in 1..args.len() {
                    best = best.max(num_arg(&args, i, "math.max")?);
                }
                Ok(vec![Value::Num(best)])
            }),
        ),
        (
            "min",
            Interpreter::native("math.min", |_, args| {
                let mut best = num_arg(&args, 0, "math.min")?;
                for i in 1..args.len() {
                    best = best.min(num_arg(&args, i, "math.min")?);
                }
                Ok(vec![Value::Num(best)])
            }),
        ),
        (
            "fmod",
            Interpreter::native("math.fmod", |_, args| {
                let a = num_arg(&args, 0, "math.fmod")?;
                let b = num_arg(&args, 1, "math.fmod")?;
                Ok(vec![Value::Num(a % b)])
            }),
        ),
        (
            "random",
            Interpreter::native("math.random", |interp, args| {
                // xorshift64*: deterministic and seedable.
                let mut x = interp.rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                interp.rng_state = x;
                let unit =
                    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
                let v = match args.len() {
                    0 => Value::Num(unit),
                    1 => {
                        let m = num_arg(&args, 0, "math.random")?;
                        Value::Num((unit * m).floor() + 1.0)
                    }
                    _ => {
                        let lo = num_arg(&args, 0, "math.random")?;
                        let hi = num_arg(&args, 1, "math.random")?;
                        Value::Num(lo + (unit * (hi - lo + 1.0)).floor())
                    }
                };
                Ok(vec![v])
            }),
        ),
        (
            "randomseed",
            Interpreter::native("math.randomseed", |interp, args| {
                let seed = num_arg(&args, 0, "math.randomseed")? as i64 as u64;
                interp.rng_state = seed | 1;
                Ok(vec![])
            }),
        ),
    ]);
    interp.set_global("math", math);
}

/// Converts a Lua 1-based (possibly negative) index into a 0-based Rust
/// offset over a string of length `len`.
fn str_index(i: f64, len: usize) -> usize {
    if i >= 1.0 {
        (i as usize - 1).min(len)
    } else if i < 0.0 {
        len.saturating_sub((-i) as usize)
    } else {
        0
    }
}

fn string_lib(interp: &mut Interpreter) {
    let string = new_table(vec![
        (
            "len",
            Interpreter::native("string.len", |_, args| {
                Ok(vec![Value::Num(
                    str_arg(&args, 0, "string.len")?.len() as f64
                )])
            }),
        ),
        (
            "upper",
            Interpreter::native("string.upper", |_, args| {
                Ok(vec![Value::str(
                    str_arg(&args, 0, "string.upper")?.to_uppercase(),
                )])
            }),
        ),
        (
            "lower",
            Interpreter::native("string.lower", |_, args| {
                Ok(vec![Value::str(
                    str_arg(&args, 0, "string.lower")?.to_lowercase(),
                )])
            }),
        ),
        (
            "rep",
            Interpreter::native("string.rep", |interp, args| {
                let s = str_arg(&args, 0, "string.rep")?;
                let n = num_arg(&args, 1, "string.rep")?.max(0.0) as usize;
                // Charge before repeating so one oversized request
                // fails without allocating.
                interp.charge((s.len() as u64).saturating_mul(n as u64), 0)?;
                Ok(vec![Value::str(s.repeat(n))])
            }),
        ),
        (
            "sub",
            Interpreter::native("string.sub", |_, args| {
                let s = str_arg(&args, 0, "string.sub")?;
                let len = s.len();
                let i = str_index(num_arg(&args, 1, "string.sub")?, len);
                let j = match args.get(2) {
                    None | Some(Value::Nil) => len,
                    Some(v) => {
                        let j = v
                            .coerce_num()
                            .ok_or_else(|| err("bad argument #3 to string.sub"))?;
                        if j >= 0.0 {
                            (j as usize).min(len)
                        } else {
                            len.saturating_sub((-j) as usize - 1)
                        }
                    }
                };
                let out = if i < j { &s[i..j] } else { "" };
                Ok(vec![Value::str(out)])
            }),
        ),
        (
            "find",
            // Plain-text find (no Lua patterns): returns 1-based
            // start, end or nil.
            Interpreter::native("string.find", |_, args| {
                let s = str_arg(&args, 0, "string.find")?;
                let needle = str_arg(&args, 1, "string.find")?;
                let init = args
                    .get(2)
                    .and_then(Value::as_num)
                    .map(|i| str_index(i, s.len()))
                    .unwrap_or(0);
                match s.get(init..).and_then(|hay| hay.find(&*needle)) {
                    Some(pos) => Ok(vec![
                        Value::Num((init + pos + 1) as f64),
                        Value::Num((init + pos + needle.len()) as f64),
                    ]),
                    None => Ok(vec![Value::Nil]),
                }
            }),
        ),
        (
            "byte",
            Interpreter::native("string.byte", |_, args| {
                let s = str_arg(&args, 0, "string.byte")?;
                let i = args.get(1).and_then(Value::as_num).unwrap_or(1.0);
                let idx = str_index(i, s.len());
                Ok(vec![s
                    .as_bytes()
                    .get(idx)
                    .map(|b| Value::Num(*b as f64))
                    .unwrap_or(Value::Nil)])
            }),
        ),
        (
            "char",
            Interpreter::native("string.char", |interp, args| {
                interp.charge(args.len() as u64, 0)?;
                let mut out = String::new();
                for i in 0..args.len() {
                    out.push(num_arg(&args, i, "string.char")? as u8 as char);
                }
                Ok(vec![Value::str(out)])
            }),
        ),
        (
            "format",
            Interpreter::native("string.format", |interp, args| {
                let fmt = str_arg(&args, 0, "string.format")?;
                let out = format_impl(&fmt, &args[1..])?;
                interp.charge(out.len() as u64, 0)?;
                Ok(vec![Value::str(out)])
            }),
        ),
    ]);
    interp.set_global("string", string);
}

/// A minimal `string.format`: `%d %i %s %q %f %.Nf %g %x %%`.
fn format_impl(fmt: &str, args: &[Value]) -> Result<String> {
    let mut out = String::new();
    let mut chars = fmt.chars().peekable();
    let mut next = 0usize;
    let take = |next: &mut usize| -> Value {
        let v = args.get(*next).cloned().unwrap_or(Value::Nil);
        *next += 1;
        v
    };
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Optional precision like `%.2f`.
        let mut precision: Option<usize> = None;
        if chars.peek() == Some(&'.') {
            chars.next();
            let mut digits = String::new();
            while matches!(chars.peek(), Some(d) if d.is_ascii_digit()) {
                digits.push(chars.next().expect("digit"));
            }
            // Cap precision: the formatted string is allocated before
            // the sandbox can charge for it.
            precision = digits.parse().ok().map(|p: usize| p.min(99));
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('d') | Some('i') => {
                let v = take(&mut next);
                let n = v
                    .coerce_num()
                    .ok_or_else(|| err("bad argument to string.format %d"))?;
                out.push_str(&format!("{}", n as i64));
            }
            Some('f') => {
                let v = take(&mut next);
                let n = v
                    .coerce_num()
                    .ok_or_else(|| err("bad argument to string.format %f"))?;
                out.push_str(&format!("{:.*}", precision.unwrap_or(6), n));
            }
            Some('g') => {
                let v = take(&mut next);
                let n = v
                    .coerce_num()
                    .ok_or_else(|| err("bad argument to string.format %g"))?;
                out.push_str(&crate::value::fmt_number(n));
            }
            Some('x') => {
                let v = take(&mut next);
                let n = v
                    .coerce_num()
                    .ok_or_else(|| err("bad argument to string.format %x"))?;
                out.push_str(&format!("{:x}", n as i64));
            }
            Some('s') => {
                let v = take(&mut next);
                out.push_str(&v.to_display_string());
            }
            Some('q') => {
                let v = take(&mut next);
                out.push_str(&format!("{:?}", v.to_display_string()));
            }
            other => {
                return Err(err(format!(
                    "unsupported string.format directive %{}",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

fn table_lib(interp: &mut Interpreter) {
    let table = new_table(vec![
        (
            "insert",
            Interpreter::native("table.insert", |interp, args| {
                let t = table_arg(&args, 0, "table.insert")?;
                interp.charge(crate::interp::TABLE_ENTRY_COST, 0)?;
                match args.len() {
                    0 | 1 => Err(err("wrong number of arguments to table.insert")),
                    2 => {
                        t.borrow_mut().push(arg(&args, 1));
                        Ok(vec![])
                    }
                    _ => {
                        // insert(t, pos, value): shift the array part up.
                        let pos = num_arg(&args, 1, "table.insert")? as i64;
                        let value = arg(&args, 2);
                        let mut tb = t.borrow_mut();
                        let len = tb.len() as i64;
                        let mut i = len;
                        while i >= pos {
                            let v = tb.get(&Value::Num(i as f64));
                            tb.set(Value::Num((i + 1) as f64), v).map_err(err)?;
                            i -= 1;
                        }
                        tb.set(Value::Num(pos as f64), value).map_err(err)?;
                        Ok(vec![])
                    }
                }
            }),
        ),
        (
            "remove",
            Interpreter::native("table.remove", |_, args| {
                let t = table_arg(&args, 0, "table.remove")?;
                let mut tb = t.borrow_mut();
                let len = tb.len() as i64;
                if len == 0 {
                    return Ok(vec![Value::Nil]);
                }
                let pos = args
                    .get(1)
                    .and_then(Value::as_num)
                    .map(|n| n as i64)
                    .unwrap_or(len);
                let removed = tb.get(&Value::Num(pos as f64));
                let mut i = pos;
                while i < len {
                    let v = tb.get(&Value::Num((i + 1) as f64));
                    tb.set(Value::Num(i as f64), v).map_err(err)?;
                    i += 1;
                }
                tb.set(Value::Num(len as f64), Value::Nil).map_err(err)?;
                Ok(vec![removed])
            }),
        ),
        (
            "concat",
            Interpreter::native("table.concat", |_, args| {
                let t = table_arg(&args, 0, "table.concat")?;
                let sep = match arg(&args, 1) {
                    Value::Nil => String::new(),
                    v => v.to_display_string(),
                };
                let tb = t.borrow();
                let parts: Vec<String> = (1..=tb.len())
                    .map(|i| tb.get(&Value::Num(i as f64)).to_display_string())
                    .collect();
                Ok(vec![Value::str(parts.join(&sep))])
            }),
        ),
        (
            "getn",
            Interpreter::native("table.getn", |_, args| {
                let t = table_arg(&args, 0, "table.getn")?;
                let n = t.borrow().len();
                Ok(vec![Value::Num(n as f64)])
            }),
        ),
        (
            "sort",
            Interpreter::native("table.sort", |interp, args| {
                let t = table_arg(&args, 0, "table.sort")?;
                let cmp = arg(&args, 1);
                let len = t.borrow().len();
                let mut items: Vec<Value> = {
                    let tb = t.borrow();
                    (1..=len).map(|i| tb.get(&Value::Num(i as f64))).collect()
                };
                // Insertion sort so comparator errors propagate cleanly.
                for i in 1..items.len() {
                    let mut j = i;
                    while j > 0 {
                        let less = match &cmp {
                            Value::Nil => default_lt(&items[j], &items[j - 1])?,
                            f => interp
                                .call_value(f, vec![items[j].clone(), items[j - 1].clone()])?
                                .first()
                                .map(Value::truthy)
                                .unwrap_or(false),
                        };
                        if !less {
                            break;
                        }
                        items.swap(j, j - 1);
                        j -= 1;
                    }
                }
                let mut tb = t.borrow_mut();
                for (i, v) in items.into_iter().enumerate() {
                    tb.set(Value::Num((i + 1) as f64), v).map_err(err)?;
                }
                Ok(vec![])
            }),
        ),
        (
            "foreach",
            Interpreter::native("table.foreach", |interp, args| {
                let t = table_arg(&args, 0, "table.foreach")?;
                let f = arg(&args, 1);
                let entries: Vec<(Value, Value)> = t.borrow().iter().collect();
                for (k, v) in entries {
                    let out = interp.call_value(&f, vec![k, v])?;
                    if let Some(v) = out.first() {
                        if *v != Value::Nil {
                            return Ok(vec![v.clone()]);
                        }
                    }
                }
                Ok(vec![])
            }),
        ),
    ]);
    interp.set_global("table", table);
}

fn default_lt(a: &Value, b: &Value) -> Result<bool> {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => Ok(x < y),
        (Value::Str(x), Value::Str(y)) => Ok(x < y),
        _ => Err(err(format!(
            "attempt to compare {} with {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

fn os_lib(interp: &mut Interpreter) {
    let os = new_table(vec![
        (
            "clock",
            Interpreter::native("os.clock", |interp, _| {
                let t = interp.clock.as_ref().map(|c| c()).unwrap_or(0.0);
                Ok(vec![Value::Num(t)])
            }),
        ),
        (
            "time",
            Interpreter::native("os.time", |interp, _| {
                let t = interp.clock.as_ref().map(|c| c()).unwrap_or(0.0);
                Ok(vec![Value::Num(t.floor())])
            }),
        ),
    ]);
    interp.set_global("os", os);
}

/// `readfrom`/`read` — the Lua 4 style input API the paper's LoadAverage
/// monitor uses (Figure 3). `readfrom(path)` opens a host-provided
/// source, `read("*n")` pulls a number, `readfrom()` closes.
fn io_like(interp: &mut Interpreter) {
    interp.register("readfrom", |interp, args| match args.first() {
        None | Some(Value::Nil) => {
            interp.input = None;
            Ok(vec![])
        }
        Some(Value::Str(path)) => match interp.reader.clone() {
            Some(reader) => match reader(path) {
                Some(content) => {
                    interp.input = Some((content, 0));
                    Ok(vec![Value::str(&**path)])
                }
                None => Ok(vec![Value::Nil, Value::str(format!("cannot open {path}"))]),
            },
            None => Ok(vec![
                Value::Nil,
                Value::str("no reader installed in this host"),
            ]),
        },
        Some(other) => Err(err(format!(
            "bad argument #1 to readfrom (string expected, got {})",
            other.type_name()
        ))),
    });

    interp.register("read", |interp, args| {
        let formats: Vec<String> = if args.is_empty() {
            vec!["*l".to_owned()]
        } else {
            args.iter().map(Value::to_display_string).collect()
        };
        let mut out = Vec::new();
        for f in formats {
            let v = match f.as_str() {
                "*n" => read_number(interp),
                "*l" => read_line(interp),
                "*a" => read_all(interp),
                "*w" => read_word(interp),
                other => return Err(err(format!("unsupported read format `{other}`"))),
            };
            out.push(v);
        }
        Ok(out)
    });
}

fn read_number(interp: &mut Interpreter) -> Value {
    let Some((content, pos)) = &mut interp.input else {
        return Value::Nil;
    };
    let rest = &content[*pos..];
    let skipped = rest.len() - rest.trim_start().len();
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    match rest[..end].parse::<f64>() {
        Ok(n) => {
            *pos += skipped + end;
            Value::Num(n)
        }
        Err(_) => Value::Nil,
    }
}

fn read_line(interp: &mut Interpreter) -> Value {
    let Some((content, pos)) = &mut interp.input else {
        return Value::Nil;
    };
    if *pos >= content.len() {
        return Value::Nil;
    }
    let rest = &content[*pos..];
    match rest.find('\n') {
        Some(n) => {
            let line = &rest[..n];
            *pos += n + 1;
            Value::str(line)
        }
        None => {
            let line = rest.to_owned();
            *pos = content.len();
            Value::str(line)
        }
    }
}

fn read_all(interp: &mut Interpreter) -> Value {
    let Some((content, pos)) = &mut interp.input else {
        return Value::Nil;
    };
    let rest = content[*pos..].to_owned();
    *pos = content.len();
    Value::str(rest)
}

fn read_word(interp: &mut Interpreter) -> Value {
    let Some((content, pos)) = &mut interp.input else {
        return Value::Nil;
    };
    let rest = &content[*pos..];
    let skipped = rest.len() - rest.trim_start().len();
    let rest = rest.trim_start();
    if rest.is_empty() {
        return Value::Nil;
    }
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    let word = rest[..end].to_owned();
    *pos += skipped + end;
    Value::str(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval1(src: &str) -> Value {
        Interpreter::new()
            .eval(src)
            .unwrap()
            .into_iter()
            .next()
            .unwrap_or(Value::Nil)
    }

    #[test]
    fn type_tostring_tonumber() {
        assert_eq!(eval1("return type({})"), Value::str("table"));
        assert_eq!(eval1("return type(nil)"), Value::str("nil"));
        assert_eq!(eval1("return tostring(1.5)"), Value::str("1.5"));
        assert_eq!(eval1("return tostring(nil)"), Value::str("nil"));
        assert_eq!(eval1("return tonumber('  42 ')"), Value::Num(42.0));
        assert_eq!(eval1("return tonumber('ff', 16)"), Value::Num(255.0));
        assert_eq!(eval1("return tonumber('zz')"), Value::Nil);
    }

    #[test]
    fn print_capture() {
        let mut rua = Interpreter::new();
        rua.capture_print();
        rua.eval("print('a', 1, nil)").unwrap();
        assert_eq!(rua.take_printed(), vec!["a\t1\tnil"]);
        assert!(rua.take_printed().is_empty());
    }

    #[test]
    fn error_and_pcall() {
        assert_eq!(
            eval1("local ok, msg = pcall(function() error('boom') end) return msg"),
            Value::str("boom")
        );
        assert_eq!(
            eval1("local ok = pcall(function() return 1 end) return ok"),
            Value::Bool(true)
        );
        assert_eq!(
            eval1("local ok, a, b = pcall(function() return 1, 2 end) return b"),
            Value::Num(2.0)
        );
    }

    #[test]
    fn assert_passes_values_through() {
        assert_eq!(eval1("return assert(5)"), Value::Num(5.0));
        assert!(Interpreter::new()
            .eval("assert(false, 'nope')")
            .unwrap_err()
            .to_string()
            .contains("nope"));
    }

    #[test]
    fn pairs_iterates_everything() {
        let v = eval1(
            r#"
            local t = {x = 1, y = 2, 10, 20}
            local count, sum = 0, 0
            for k, v in pairs(t) do count = count + 1 sum = sum + v end
            return count * 100 + sum
        "#,
        );
        assert_eq!(v, Value::Num(433.0));
    }

    #[test]
    fn ipairs_stops_at_gap() {
        let v = eval1(
            r#"
            local t = {1, 2, 3}
            t[5] = 99
            local sum = 0
            for i, v in ipairs(t) do sum = sum + v end
            return sum
        "#,
        );
        assert_eq!(v, Value::Num(6.0));
    }

    #[test]
    fn unpack_expands() {
        let out = Interpreter::new().eval("return unpack({7, 8, 9})").unwrap();
        assert_eq!(out, vec![Value::Num(7.0), Value::Num(8.0), Value::Num(9.0)]);
    }

    #[test]
    fn math_functions() {
        assert_eq!(eval1("return math.floor(2.9)"), Value::Num(2.0));
        assert_eq!(eval1("return math.max(1, 5, 3)"), Value::Num(5.0));
        assert_eq!(eval1("return math.min(4, 2)"), Value::Num(2.0));
        assert_eq!(eval1("return math.sqrt(9)"), Value::Num(3.0));
        assert_eq!(eval1("return math.abs(-3)"), Value::Num(3.0));
        assert!(eval1("return math.huge").as_num().unwrap().is_infinite());
    }

    #[test]
    fn math_random_is_seeded_and_in_range() {
        let v = eval1(
            r#"
            math.randomseed(42)
            for i = 1, 100 do
                local r = math.random(1, 6)
                if r < 1 or r > 6 then return false end
            end
            return true
        "#,
        );
        assert_eq!(v, Value::Bool(true));
        // Determinism across interpreters.
        let a = eval1("math.randomseed(7) return math.random()");
        let b = eval1("math.randomseed(7) return math.random()");
        assert_eq!(a, b);
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval1("return string.len('abc')"), Value::Num(3.0));
        assert_eq!(eval1("return string.upper('ab')"), Value::str("AB"));
        assert_eq!(eval1("return string.sub('hello', 2, 4)"), Value::str("ell"));
        assert_eq!(eval1("return string.sub('hello', -3)"), Value::str("llo"));
        assert_eq!(eval1("return string.rep('ab', 3)"), Value::str("ababab"));
        assert_eq!(eval1("return string.find('hello', 'll')"), Value::Num(3.0));
        assert_eq!(eval1("return string.find('hello', 'zz')"), Value::Nil);
        assert_eq!(eval1("return string.char(104, 105)"), Value::str("hi"));
        assert_eq!(eval1("return string.byte('A')"), Value::Num(65.0));
    }

    #[test]
    fn string_format() {
        assert_eq!(
            eval1("return string.format('%d/%s = %.2f', 10, 'four', 2.5)"),
            Value::str("10/four = 2.50")
        );
        assert_eq!(eval1("return string.format('100%%')"), Value::str("100%"));
        assert_eq!(eval1("return string.format('%x', 255)"), Value::str("ff"));
        assert_eq!(
            eval1("return string.format('%q', 'a\"b')"),
            Value::str("\"a\\\"b\"")
        );
    }

    #[test]
    fn table_insert_remove_concat() {
        assert_eq!(
            eval1("local t = {} table.insert(t, 'a') table.insert(t, 'b') return table.concat(t, ',')"),
            Value::str("a,b")
        );
        assert_eq!(
            eval1("local t = {'a', 'c'} table.insert(t, 2, 'b') return table.concat(t)"),
            Value::str("abc")
        );
        assert_eq!(
            eval1("local t = {'a', 'b', 'c'} local r = table.remove(t, 2) return r .. #t"),
            Value::str("b2")
        );
        assert_eq!(eval1("return table.getn({1, 2, 3})"), Value::Num(3.0));
    }

    #[test]
    fn table_sort_with_and_without_comparator() {
        assert_eq!(
            eval1("local t = {3, 1, 2} table.sort(t) return table.concat(t)"),
            Value::str("123")
        );
        assert_eq!(
            eval1(
                "local t = {1, 3, 2} table.sort(t, function(a, b) return a > b end) return table.concat(t)"
            ),
            Value::str("321")
        );
    }

    #[test]
    fn readfrom_and_read_reproduce_fig3_input() {
        let mut rua = Interpreter::new();
        rua.set_reader(|path| {
            (path == "/proc/loadavg").then(|| "0.52 0.41 0.30 1/123 4567".to_owned())
        });
        let out = rua
            .eval(
                r#"
                readfrom("/proc/loadavg")
                local nj1, nj5, nj15 = read("*n", "*n", "*n")
                readfrom()
                return nj1, nj5, nj15
            "#,
            )
            .unwrap();
        assert_eq!(
            out,
            vec![Value::Num(0.52), Value::Num(0.41), Value::Num(0.30)]
        );
    }

    #[test]
    fn readfrom_missing_file_returns_nil() {
        let mut rua = Interpreter::new();
        rua.set_reader(|_| None);
        let out = rua
            .eval("local f, e = readfrom('/nope') return f, e")
            .unwrap();
        assert_eq!(out[0], Value::Nil);
        assert!(out[1].as_str().unwrap().contains("/nope"));
    }

    #[test]
    fn read_without_open_source_is_nil() {
        assert_eq!(eval1("return read('*n')"), Value::Nil);
    }

    #[test]
    fn read_formats() {
        let mut rua = Interpreter::new();
        rua.set_reader(|_| Some("hello world\nsecond line".to_owned()));
        let out = rua
            .eval("readfrom('x') local w = read('*w') local l = read('*l') local a = read('*a') return w, l, a")
            .unwrap();
        assert_eq!(out[0], Value::str("hello"));
        assert_eq!(out[1], Value::str(" world"));
        assert_eq!(out[2], Value::str("second line"));
    }

    #[test]
    fn os_clock_uses_host_clock() {
        let mut rua = Interpreter::new();
        rua.set_clock(|| 123.5);
        assert_eq!(eval_with(&mut rua, "return os.clock()"), Value::Num(123.5));
        assert_eq!(eval_with(&mut rua, "return os.time()"), Value::Num(123.0));
    }

    fn eval_with(rua: &mut Interpreter, src: &str) -> Value {
        rua.eval(src)
            .unwrap()
            .into_iter()
            .next()
            .unwrap_or(Value::Nil)
    }

    #[test]
    fn globals_table_is_exposed() {
        assert_eq!(eval1("x = 7 return _G.x"), Value::Num(7.0));
    }

    #[test]
    fn rawget_rawset() {
        assert_eq!(
            eval1("local t = {} rawset(t, 'k', 3) return rawget(t, 'k')"),
            Value::Num(3.0)
        );
    }
}
