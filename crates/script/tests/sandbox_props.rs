//! Property tests for the sandbox: randomly generated hostile programs
//! under a step/memory budget must always terminate with a
//! resource-limit error, and the step counter must never overshoot the
//! budget by more than one dispatch loop (the interpreter counts the
//! step, then checks — so the final count is at most `budget + 1`).

use adapta_script::{Interpreter, SandboxPolicy};
use proptest::prelude::*;

/// One statement of a hostile loop body. Every candidate allocates,
/// computes or recurses; none of them exits the enclosing loop.
fn hostile_stmt() -> BoxedStrategy<&'static str> {
    prop_oneof![
        Just("x = x + 1"),
        Just("s = s .. 'ab'"),
        Just("t[#t + 1] = x"),
        Just("table.insert(t, 'entry')"),
        Just("for i = 1, 10 do x = x + i end"),
        Just("if x > 1000 then x = 0 end"),
        Just("pcall(function() s = s .. 'xy' end)"),
        Just("pcall(function() local u = {1, 2, 3} u[4] = x end)"),
        Just("local r = string.rep('z', 32) x = x + #r"),
    ]
    .boxed()
}

fn program(stmts: &[&str]) -> String {
    format!(
        "x = 0 s = '' t = {{}}\nwhile true do\n{}\nend",
        stmts.join("\n")
    )
}

proptest! {
    #[test]
    fn budgeted_programs_always_terminate_with_resource_error(
        budget in 100u64..20_000,
        stmts in proptest::collection::vec(hostile_stmt(), 1..6),
    ) {
        let mut rua = Interpreter::new();
        rua.set_sandbox(
            &SandboxPolicy::default()
                .with_step_budget(Some(budget))
                .with_memory_limit(Some(1 << 20)),
        );
        let err = rua.eval(&program(&stmts)).expect_err("infinite loop must be stopped");
        prop_assert!(
            err.is_resource_limit(),
            "expected a resource-limit error, got {err}"
        );
        prop_assert!(
            rua.steps() <= budget + 1,
            "steps {} overshot budget {budget} by more than one dispatch loop",
            rua.steps()
        );
    }

    #[test]
    fn memory_hungry_programs_stop_within_budget(
        limit in 1024u64..65_536,
        chunk in 1usize..64,
    ) {
        let mut rua = Interpreter::new();
        rua.set_sandbox(&SandboxPolicy::default().with_memory_limit(Some(limit)));
        let src = format!(
            "local t = {{}} local i = 0 while true do i = i + 1 t[i] = string.rep('x', {chunk}) end"
        );
        let err = rua.eval(&src).expect_err("memory bomb must be stopped");
        prop_assert!(err.is_resource_limit(), "got {err}");
        // The charge happens before the allocation, so usage can exceed
        // the limit by at most the single rejected request.
        prop_assert!(
            rua.memory_used() <= limit + (chunk as u64).max(16),
            "memory_used {} overshot limit {limit}",
            rua.memory_used()
        );
    }
}
