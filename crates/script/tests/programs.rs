//! Acceptance tests: realistic Rua programs of the kind adaptation
//! strategies and service agents are written in.

use adapta_script::{Interpreter, Value};

fn run(src: &str) -> Vec<Value> {
    Interpreter::new().eval(src).unwrap()
}

#[test]
fn quicksort() {
    let out = run(r#"
        local function quicksort(t, lo, hi)
            lo = lo or 1
            hi = hi or #t
            if lo < hi then
                local pivot = t[hi]
                local i = lo - 1
                for j = lo, hi - 1 do
                    if t[j] <= pivot then
                        i = i + 1
                        t[i], t[j] = t[j], t[i]
                    end
                end
                t[i + 1], t[hi] = t[hi], t[i + 1]
                quicksort(t, lo, i)
                quicksort(t, i + 2, hi)
            end
            return t
        end
        local data = {5, 3, 8, 1, 9, 2, 7, 4, 6}
        return table.concat(quicksort(data), ",")
    "#);
    assert_eq!(out, vec![Value::str("1,2,3,4,5,6,7,8,9")]);
}

#[test]
fn object_oriented_accounts() {
    // The prototype-based OO idiom the paper's smart proxies use.
    let out = run(r#"
        local Account = {}
        function Account.new(balance)
            local self = {balance = balance or 0}
            self.deposit = Account.deposit
            self.withdraw = Account.withdraw
            return self
        end
        function Account.deposit(self, n) self.balance = self.balance + n end
        function Account.withdraw(self, n)
            if n > self.balance then error("insufficient funds") end
            self.balance = self.balance - n
        end

        local acc = Account.new(100)
        acc:deposit(50)
        acc:withdraw(30)
        local ok, err = pcall(function() acc:withdraw(1000) end)
        return acc.balance, ok, err
    "#);
    assert_eq!(out[0], Value::Num(120.0));
    assert_eq!(out[1], Value::Bool(false));
    assert!(out[2].as_str().unwrap().contains("insufficient"));
}

#[test]
fn closure_based_iterators() {
    let out = run(r#"
        local function range(n)
            local i = 0
            return function()
                i = i + 1
                if i <= n then return i end
            end
        end
        local sum = 0
        for v in range(10) do sum = sum + v end
        return sum
    "#);
    assert_eq!(out, vec![Value::Num(55.0)]);
}

#[test]
fn event_queue_simulation() {
    // The postponed-handling pattern from Section IV, in pure Rua.
    let out = run(r#"
        local queue = {}
        local handled = {}
        local strategies = {
            LoadIncrease = function(e) table.insert(handled, "rebind") end,
            Timeout = function(e) table.insert(handled, "retry") end,
        }
        local function notify(evid) table.insert(queue, evid) end
        local function before_invocation()
            local seen = {}
            while #queue > 0 do
                local e = table.remove(queue, 1)
                if not seen[e] then
                    seen[e] = true
                    local strategy = strategies[e]
                    if strategy then strategy(e) end
                end
            end
        end

        notify("LoadIncrease")
        notify("LoadIncrease")   -- duplicate: coalesced
        notify("Timeout")
        before_invocation()
        return #handled, handled[1], handled[2]
    "#);
    assert_eq!(
        out,
        vec![Value::Num(2.0), Value::str("rebind"), Value::str("retry")]
    );
}

#[test]
fn string_processing() {
    let out = run(r#"
        local line = "0.52 0.41 0.30 1/123 4567"
        local fields = {}
        local start = 1
        while true do
            local s, e = string.find(line, " ", start)
            if s == nil then
                table.insert(fields, string.sub(line, start))
                break
            end
            table.insert(fields, string.sub(line, start, s - 1))
            start = e + 1
        end
        return #fields, tonumber(fields[1]), fields[4]
    "#);
    assert_eq!(
        out,
        vec![Value::Num(5.0), Value::Num(0.52), Value::str("1/123")]
    );
}

#[test]
fn memoised_fibonacci() {
    let out = run(r#"
        local memo = {}
        local function fib(n)
            if n < 2 then return n end
            if memo[n] then return memo[n] end
            local v = fib(n - 1) + fib(n - 2)
            memo[n] = v
            return v
        end
        return fib(40)
    "#);
    assert_eq!(out, vec![Value::Num(102334155.0)]);
}

#[test]
fn generic_dispatch_table_with_varargs() {
    let out = run(r#"
        local handlers = {}
        local function on(event, f) handlers[event] = f end
        local function emit(event, ...)
            local h = handlers[event]
            if h then return h(...) end
            return nil
        end
        on("sum", function(...)
            local s = 0
            for _, v in ipairs({...}) do s = s + v end
            return s
        end)
        on("join", function(sep, ...) return table.concat({...}, sep) end)
        return emit("sum", 1, 2, 3), emit("join", "-", "a", "b"), emit("missing")
    "#);
    assert_eq!(out, vec![Value::Num(6.0), Value::str("a-b"), Value::Nil]);
}

#[test]
fn deep_data_transformation() {
    let out = run(r#"
        local offers = {
            {host = "n1", load = 3.2},
            {host = "n2", load = 0.8},
            {host = "n3", load = 1.5},
        }
        -- filter: load < 2; sort ascending by load; project hosts
        local viable = {}
        for _, offer in ipairs(offers) do
            if offer.load < 2 then table.insert(viable, offer) end
        end
        table.sort(viable, function(a, b) return a.load < b.load end)
        local names = {}
        for _, offer in ipairs(viable) do table.insert(names, offer.host) end
        return table.concat(names, ",")
    "#);
    assert_eq!(out, vec![Value::str("n2,n3")]);
}

#[test]
fn budget_survives_heavy_programs() {
    let mut rua = Interpreter::new();
    rua.set_budget(Some(5_000_000));
    let out = rua
        .eval(
            r#"
            local total = 0
            for i = 1, 1000 do
                for j = 1, 100 do
                    total = total + (i * j) % 7
                end
            end
            return total
        "#,
        )
        .unwrap();
    assert!(matches!(out[0], Value::Num(n) if n > 0.0));
}
