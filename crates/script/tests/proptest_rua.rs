//! Property tests for the Rua interpreter: the front end is total, the
//! budget makes execution total, and core semantics hold for generated
//! programs.

use adapta_script::{Interpreter, Value};
use proptest::prelude::*;

proptest! {
    /// Lexer + parser never panic, whatever the input.
    #[test]
    fn parser_is_total(src in ".{0,200}") {
        let mut rua = Interpreter::new();
        let _ = rua.compile(&src);
    }

    /// With a budget installed, evaluation of arbitrary *valid-ish*
    /// programs always terminates (ok, error, or budget exhaustion) and
    /// never panics.
    #[test]
    fn budgeted_eval_is_total(src in "[a-z0-9 =+*()<>~\\-,\\[\\]{}\"']{0,120}") {
        let mut rua = Interpreter::new();
        rua.set_budget(Some(50_000));
        let _ = rua.eval(&src);
    }

    /// Arithmetic on numbers matches Rust's f64 semantics.
    #[test]
    fn arithmetic_matches_f64(a in -1e9f64..1e9, b in -1e9f64..1e9) {
        let mut rua = Interpreter::new();
        rua.set_global("a", Value::Num(a));
        rua.set_global("b", Value::Num(b));
        let out = rua.eval("return a + b, a - b, a * b").unwrap();
        prop_assert_eq!(out[0].as_num().unwrap(), a + b);
        prop_assert_eq!(out[1].as_num().unwrap(), a - b);
        prop_assert_eq!(out[2].as_num().unwrap(), a * b);
    }

    /// Comparison operators agree with Rust's.
    #[test]
    fn comparisons_match(a in any::<i32>(), b in any::<i32>()) {
        let mut rua = Interpreter::new();
        rua.set_global("a", Value::from(a as i64));
        rua.set_global("b", Value::from(b as i64));
        let out = rua.eval("return a < b, a <= b, a == b, a ~= b").unwrap();
        prop_assert_eq!(out[0].clone(), Value::Bool(a < b));
        prop_assert_eq!(out[1].clone(), Value::Bool(a <= b));
        prop_assert_eq!(out[2].clone(), Value::Bool(a == b));
        prop_assert_eq!(out[3].clone(), Value::Bool(a != b));
    }

    /// String literals round-trip through concatenation and length.
    #[test]
    fn string_round_trip(s in "[a-zA-Z0-9 _.]{0,40}") {
        let mut rua = Interpreter::new();
        rua.set_global("s", Value::str(&s));
        let out = rua.eval("return s .. '', string.len(s)").unwrap();
        prop_assert_eq!(out[0].as_str(), Some(s.as_str()));
        prop_assert_eq!(out[1].as_num(), Some(s.len() as f64));
    }

    /// Table writes read back; `#` counts the dense prefix.
    #[test]
    fn table_semantics(items in proptest::collection::vec(any::<i32>(), 0..24)) {
        let mut rua = Interpreter::new();
        let build: String = items
            .iter()
            .map(|n| format!("table.insert(t, {n})\n"))
            .collect();
        let src = format!("t = {{}}\n{build}return #t");
        let out = rua.eval(&src).unwrap();
        prop_assert_eq!(out[0].as_num(), Some(items.len() as f64));
        for (i, n) in items.iter().enumerate() {
            let v = rua.eval(&format!("return t[{}]", i + 1)).unwrap();
            prop_assert_eq!(v[0].as_num(), Some(*n as f64));
        }
    }

    /// Numeric `for` iterates the expected number of times.
    #[test]
    fn numeric_for_count(start in -20i64..20, stop in -20i64..20, step in 1i64..5) {
        let mut rua = Interpreter::new();
        let out = rua
            .eval(&format!(
                "local n = 0 for i = {start}, {stop}, {step} do n = n + 1 end return n"
            ))
            .unwrap();
        let expected = if start > stop { 0 } else { (stop - start) / step + 1 };
        prop_assert_eq!(out[0].as_num(), Some(expected as f64));
    }

    /// `pcall` converts any runtime error into a value — never unwinds.
    #[test]
    fn pcall_contains_errors(msg in "[a-z ]{0,24}") {
        let mut rua = Interpreter::new();
        rua.set_global("m", Value::str(&msg));
        let out = rua
            .eval("local ok, err = pcall(function() error(m) end) return ok, err")
            .unwrap();
        prop_assert_eq!(out[0].clone(), Value::Bool(false));
        prop_assert_eq!(out[1].as_str(), Some(msg.as_str()));
    }
}

#[cfg(test)]
mod vararg_tests {
    use adapta_script::{Interpreter, Value};

    fn eval1(src: &str) -> Value {
        Interpreter::new()
            .eval(src)
            .unwrap()
            .into_iter()
            .next()
            .unwrap_or(Value::Nil)
    }

    #[test]
    fn varargs_expand_in_calls_and_tables() {
        assert_eq!(
            eval1(
                r#"
                local function sum(...)
                    local t = {...}
                    local s = 0
                    for i, v in ipairs(t) do s = s + v end
                    return s
                end
                return sum(1, 2, 3, 4)
            "#
            ),
            Value::Num(10.0)
        );
    }

    #[test]
    fn varargs_forward_to_other_functions() {
        assert_eq!(
            eval1(
                r#"
                local function inner(a, b, c) return (a or 0) + (b or 0) + (c or 0) end
                local function outer(...) return inner(...) end
                return outer(1, 2)
            "#
            ),
            Value::Num(3.0)
        );
    }

    #[test]
    fn mixed_fixed_and_vararg_params() {
        let out = Interpreter::new()
            .eval(
                r#"
                local function f(first, ...)
                    return first, select('#', ...), ...
                end
                return f("head", 10, 20)
            "#,
            )
            .unwrap();
        assert_eq!(
            out,
            vec![
                Value::str("head"),
                Value::Num(2.0),
                Value::Num(10.0),
                Value::Num(20.0)
            ]
        );
    }

    #[test]
    fn select_semantics() {
        assert_eq!(eval1("return select('#', 'a', 'b', 'c')"), Value::Num(3.0));
        let out = Interpreter::new()
            .eval("return select(2, 'a', 'b', 'c')")
            .unwrap();
        assert_eq!(out, vec![Value::str("b"), Value::str("c")]);
        assert!(Interpreter::new().eval("return select(0, 'a')").is_err());
    }

    #[test]
    fn vararg_in_middle_of_list_yields_one_value() {
        let out = Interpreter::new()
            .eval(
                r#"
                local function f(...) return ..., "tail" end
                return f(1, 2, 3)
            "#,
            )
            .unwrap();
        // `...` not in final position truncates to one value (Lua rule).
        assert_eq!(out, vec![Value::Num(1.0), Value::str("tail")]);
    }

    #[test]
    fn vararg_outside_vararg_function_is_an_error() {
        let err = Interpreter::new()
            .eval("local function f(a) return ... end return f(1)")
            .unwrap_err();
        assert!(err.to_string().contains("vararg"));
    }

    #[test]
    fn chunks_accept_varargs_conceptually() {
        // Top-level chunks compile as vararg functions (loadstring
        // semantics); with no arguments `...` is empty.
        assert_eq!(eval1("return select('#', ...)"), Value::Num(0.0));
    }
}
