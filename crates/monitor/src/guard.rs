//! Quarantine guard for installed aspect/predicate code.
//!
//! Mirrors the circuit-breaker shape of `adapta-core::resilience`, but
//! counts *ticks* instead of wall time: an entry whose evaluations fail
//! `QUARANTINE_THRESHOLD` times in a row (errors or sandbox budget
//! exhaustion) goes into a penalty box for `QUARANTINE_BASE_TICKS`
//! ticks. When the penalty expires the entry gets a single re-admission
//! probe; a failed probe doubles the penalty (capped at
//! `QUARANTINE_MAX_TICKS`), a successful one readmits the entry. One
//! poisoned predicate can therefore never starve the tick or the other
//! observers: after the first few failures it costs one evaluation per
//! penalty window.

/// Consecutive failures before an entry is quarantined.
pub(crate) const QUARANTINE_THRESHOLD: u32 = 3;
/// Initial penalty, in ticks.
pub(crate) const QUARANTINE_BASE_TICKS: u64 = 8;
/// Penalty ceiling for the exponential backoff.
pub(crate) const QUARANTINE_MAX_TICKS: u64 = 256;

/// What the guard decided for this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admit {
    /// Entry is healthy — evaluate it.
    Run,
    /// Penalty expired — evaluate it once as a re-admission probe.
    Probe,
    /// Entry is in the penalty box — skip it.
    Skip,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Active,
    Quarantined { remaining: u64 },
    Probation,
}

/// Per-entry quarantine state machine.
#[derive(Debug)]
pub(crate) struct Guard {
    state: State,
    streak: u32,
    penalty: u64,
}

impl Default for Guard {
    fn default() -> Self {
        Guard {
            state: State::Active,
            streak: 0,
            penalty: QUARANTINE_BASE_TICKS,
        }
    }
}

impl Guard {
    /// Decides whether to evaluate the entry this tick.
    pub(crate) fn admit(&mut self) -> Admit {
        match self.state {
            State::Active => Admit::Run,
            State::Probation => Admit::Probe,
            State::Quarantined { remaining } => {
                if remaining == 0 {
                    self.state = State::Probation;
                    Admit::Probe
                } else {
                    self.state = State::Quarantined {
                        remaining: remaining - 1,
                    };
                    Admit::Skip
                }
            }
        }
    }

    /// Records a successful evaluation; returns `true` if this readmits
    /// a quarantined entry.
    pub(crate) fn on_success(&mut self) -> bool {
        self.streak = 0;
        let readmitted = self.state == State::Probation;
        if readmitted {
            self.penalty = QUARANTINE_BASE_TICKS;
        }
        self.state = State::Active;
        readmitted
    }

    /// Records a failed evaluation; returns `true` if this sends the
    /// entry into the penalty box (first entry or failed probe).
    pub(crate) fn on_failure(&mut self) -> bool {
        self.streak = self.streak.saturating_add(1);
        match self.state {
            State::Active if self.streak >= QUARANTINE_THRESHOLD => {
                self.state = State::Quarantined {
                    remaining: self.penalty,
                };
                true
            }
            State::Probation => {
                self.penalty = (self.penalty * 2).min(QUARANTINE_MAX_TICKS);
                self.state = State::Quarantined {
                    remaining: self.penalty,
                };
                true
            }
            _ => false,
        }
    }

    /// Whether the entry currently sits in the penalty box.
    pub(crate) fn is_quarantined(&self) -> bool {
        !matches!(self.state, State::Active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_entries_always_run() {
        let mut g = Guard::default();
        for _ in 0..100 {
            assert_eq!(g.admit(), Admit::Run);
            assert!(!g.on_success());
        }
        assert!(!g.is_quarantined());
    }

    #[test]
    fn streak_opens_the_penalty_box_and_probe_readmits() {
        let mut g = Guard::default();
        // Two failures with a success in between never quarantine.
        g.on_failure();
        g.on_failure();
        g.on_success();
        assert!(!g.is_quarantined());
        // Three in a row do.
        assert!(!g.on_failure());
        assert!(!g.on_failure());
        assert!(g.on_failure());
        assert!(g.is_quarantined());
        // Skipped for the whole penalty window...
        for _ in 0..QUARANTINE_BASE_TICKS {
            assert_eq!(g.admit(), Admit::Skip);
        }
        // ...then probed, and a success readmits.
        assert_eq!(g.admit(), Admit::Probe);
        assert!(g.on_success());
        assert_eq!(g.admit(), Admit::Run);
    }

    #[test]
    fn failed_probes_back_off_exponentially_to_a_cap() {
        let mut g = Guard::default();
        for _ in 0..QUARANTINE_THRESHOLD {
            g.on_failure();
        }
        let mut expected = QUARANTINE_BASE_TICKS;
        for _ in 0..8 {
            let mut skipped = 0;
            loop {
                match g.admit() {
                    Admit::Skip => skipped += 1,
                    Admit::Probe => break,
                    Admit::Run => panic!("quarantined entry ran"),
                }
            }
            assert_eq!(skipped, expected);
            assert!(g.on_failure(), "failed probe re-enters the box");
            expected = (expected * 2).min(QUARANTINE_MAX_TICKS);
        }
        assert_eq!(expected, QUARANTINE_MAX_TICKS);
    }

    #[test]
    fn readmission_resets_the_penalty() {
        let mut g = Guard::default();
        for _ in 0..QUARANTINE_THRESHOLD {
            g.on_failure();
        }
        while g.admit() != Admit::Probe {}
        g.on_failure(); // penalty now doubled
        while g.admit() != Admit::Probe {}
        g.on_success(); // readmitted: penalty back to base
        for _ in 0..QUARANTINE_THRESHOLD {
            g.on_failure();
        }
        let mut skipped = 0;
        while g.admit() == Admit::Skip {
            skipped += 1;
        }
        assert_eq!(skipped, QUARANTINE_BASE_TICKS);
    }
}
