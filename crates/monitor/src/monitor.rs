//! The monitor object: one observed property, its aspects and its
//! event observers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adapta_bridge::{ActorError, FuncHandle, ScriptActor};
use adapta_idl::Value;
use adapta_orb::{ObjRef, Orb};
use adapta_script::SandboxPolicy;
use adapta_sim::SimTime;
use parking_lot::Mutex;

use crate::facade;
use crate::guard::{Admit, Guard};

/// Max aspects + observers one installer identity may have live at a
/// time. Remote installs (see [`Monitor::define_aspect_script_remote`])
/// beyond this are rejected before any script is compiled.
pub const MAX_INSTALLS_PER_INSTALLER: usize = 32;
/// Bound on each observer's pending-push queue; same-event entries
/// coalesce, and overflow drops the oldest.
pub const OBSERVER_QUEUE_CAP: usize = 16;
/// Consecutive failed `oneway` pushes after which a remote observer is
/// evicted.
pub const EVICT_AFTER_FAILED_PUSHES: u32 = 5;

/// Where a monitor's property value comes from on each tick.
pub(crate) enum ValueSource {
    /// No automatic refresh; only `setValue`.
    Constant,
    /// A native Rust sampler.
    Native(Box<dyn Fn(SimTime) -> Value + Send + Sync>),
    /// A zero-argument script function stored in the actor.
    Script(FuncHandle),
}

pub(crate) enum AspectFn {
    /// Native evaluator: `f(current_value) -> aspect_value`.
    Native(Box<dyn Fn(&Value) -> Value + Send + Sync>),
    /// Script evaluator `function(self, currval, monitor)` with a
    /// persistent `self` table (both stored in `actor` — the monitor's
    /// trusted actor for local installs, the sandboxed actor for
    /// remotely shipped code).
    Script {
        actor: ScriptActor,
        func: FuncHandle,
        self_table: FuncHandle,
    },
}

struct AspectEntry {
    name: String,
    installer: String,
    func: AspectFn,
    last: Value,
    guard: Guard,
}

/// Identifies an attached event observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObserverId(pub u64);

/// Where event notifications go.
pub enum ObserverTarget {
    /// A remote `EventObserver` object (`oneway notifyEvent(evid)`).
    Remote(ObjRef),
    /// A script object (table with a `notifyEvent` method) living in
    /// this monitor's actor — the paper's Figure 4 observer.
    Local(FuncHandle),
    /// A native callback (used by in-process smart proxies).
    Callback(Arc<dyn Fn(&str) + Send + Sync>),
}

impl std::fmt::Debug for ObserverTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObserverTarget::Remote(r) => write!(f, "Remote({r})"),
            ObserverTarget::Local(_) => write!(f, "Local(script)"),
            ObserverTarget::Callback(_) => write!(f, "Callback"),
        }
    }
}

pub(crate) enum PredicateFn {
    /// Native predicate over the current value.
    Native(Box<dyn Fn(&Value) -> bool + Send + Sync>),
    /// Script predicate `function(observer, value, monitor) -> bool`,
    /// hosted by `actor`.
    Script {
        actor: ScriptActor,
        func: FuncHandle,
    },
}

struct ObserverEntry {
    id: u64,
    installer: String,
    target: ObserverTarget,
    event_id: String,
    predicate: PredicateFn,
    guard: Guard,
    /// Pending event pushes (coalesced, drop-oldest at the cap).
    queue: VecDeque<String>,
    /// Consecutive failed `oneway` deliveries (remote targets only).
    push_failures: u32,
}

pub(crate) struct MonitorInner {
    property: String,
    period: Duration,
    pub(crate) actor: ScriptActor,
    orb: Orb,
    value: Mutex<Value>,
    source: Mutex<ValueSource>,
    aspects: Mutex<Vec<AspectEntry>>,
    observers: Mutex<Vec<ObserverEntry>>,
    next_observer: AtomicU64,
    notifications: AtomicU64,
    errors: AtomicU64,
    ticks: AtomicU64,
    evictions: AtomicU64,
    /// The most recent user-code error, with context — so operators can
    /// see *why* `monitor.<prop>.errors` is climbing.
    last_error: Mutex<Option<String>>,
    /// Lazily spawned actor for remotely shipped code, running under
    /// `SandboxPolicy::remote()` (resource limits + capability strip).
    sandbox: Mutex<Option<ScriptActor>>,
}

/// A monitor for one observed property — `BasicMonitor`,
/// `AspectsManager` and `EventMonitor` in a single object, as in the
/// paper's implementation.
///
/// Cloning yields another handle to the same monitor.
///
/// ```
/// use adapta_monitor::{Monitor, ScriptActor};
/// use adapta_orb::Orb;
/// use adapta_sim::SimTime;
/// use adapta_idl::Value;
///
/// let orb = Orb::new("mon-doc");
/// let actor = ScriptActor::spawn("mon-doc", |_| {});
/// let mon = Monitor::builder("Temp")
///     .source_native(|_now| Value::from(21.5))
///     .build(&actor, &orb)
///     .unwrap();
/// mon.tick(SimTime::ZERO);
/// assert_eq!(mon.value(), Value::from(21.5));
/// ```
#[derive(Clone)]
pub struct Monitor {
    pub(crate) inner: Arc<MonitorInner>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("property", &self.inner.property)
            .field("value", &*self.inner.value.lock())
            .field("aspects", &self.defined_aspects())
            .finish_non_exhaustive()
    }
}

/// Builder for [`Monitor`].
pub struct MonitorBuilder {
    property: String,
    period: Duration,
    initial: Value,
    source_native: Option<Box<dyn Fn(SimTime) -> Value + Send + Sync>>,
    source_script: Option<String>,
    source_handle: Option<FuncHandle>,
}

impl MonitorBuilder {
    /// Sets the refresh period hint (default 60 s, the paper's choice).
    pub fn period(mut self, period: Duration) -> Self {
        self.period = period;
        self
    }

    /// Sets the initial property value.
    pub fn initial(mut self, value: Value) -> Self {
        self.initial = value;
        self
    }

    /// Samples the property with a native closure on each tick.
    pub fn source_native(mut self, f: impl Fn(SimTime) -> Value + Send + Sync + 'static) -> Self {
        self.source_native = Some(Box::new(f));
        self.source_script = None;
        self
    }

    /// Samples the property with a script function (source text) on
    /// each tick — the paper's `EventMonitor:new` update argument.
    pub fn source_script(mut self, code: impl Into<String>) -> Self {
        self.source_script = Some(code.into());
        self.source_native = None;
        self
    }

    /// Samples the property with an already-stored script function
    /// (used by the script-side `EventMonitor.new`).
    pub(crate) fn source_handle(mut self, h: FuncHandle) -> Self {
        self.source_handle = Some(h);
        self.source_native = None;
        self.source_script = None;
        self
    }

    /// Builds the monitor on an actor (script state) and orb.
    ///
    /// # Errors
    ///
    /// Script compilation errors for script sources.
    pub fn build(self, actor: &ScriptActor, orb: &Orb) -> Result<Monitor, ActorError> {
        let source = if let Some(h) = self.source_handle {
            ValueSource::Script(h)
        } else if let Some(code) = self.source_script {
            ValueSource::Script(actor.store_function(&code)?)
        } else if let Some(f) = self.source_native {
            ValueSource::Native(f)
        } else {
            ValueSource::Constant
        };
        Ok(Monitor {
            inner: Arc::new(MonitorInner {
                property: self.property,
                period: self.period,
                actor: actor.clone(),
                orb: orb.clone(),
                value: Mutex::new(self.initial),
                source: Mutex::new(source),
                aspects: Mutex::new(Vec::new()),
                observers: Mutex::new(Vec::new()),
                next_observer: AtomicU64::new(1),
                notifications: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                ticks: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                last_error: Mutex::new(None),
                sandbox: Mutex::new(None),
            }),
        })
    }
}

impl Monitor {
    /// Starts building a monitor for the named property.
    pub fn builder(property: impl Into<String>) -> MonitorBuilder {
        MonitorBuilder {
            property: property.into(),
            period: Duration::from_secs(60),
            initial: Value::Null,
            source_native: None,
            source_script: None,
            source_handle: None,
        }
    }

    /// The observed property's name.
    pub fn property(&self) -> &str {
        &self.inner.property
    }

    /// The refresh-period hint for drivers.
    pub fn period(&self) -> Duration {
        self.inner.period
    }

    /// The script actor hosting this monitor's dynamic code.
    pub fn actor(&self) -> &ScriptActor {
        &self.inner.actor
    }

    /// The current property value (`getValue`).
    pub fn value(&self) -> Value {
        self.inner.value.lock().clone()
    }

    /// Overwrites the property value (`setValue`).
    pub fn set_value(&self, value: Value) {
        *self.inner.value.lock() = value;
    }

    /// Number of event notifications sent so far.
    pub fn notifications(&self) -> u64 {
        self.inner.notifications.load(Ordering::Relaxed)
    }

    /// Number of ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// Number of update/aspect/predicate evaluation errors so far.
    pub fn errors(&self) -> u64 {
        self.inner.errors.load(Ordering::Relaxed)
    }

    /// Number of observers evicted after repeated failed pushes.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// The most recent user-code error message (with context), if any.
    pub fn last_error(&self) -> Option<String> {
        self.inner.last_error.lock().clone()
    }

    /// Number of aspects/observers currently in the penalty box.
    pub fn quarantined_count(&self) -> usize {
        self.inner
            .aspects
            .lock()
            .iter()
            .filter(|a| a.guard.is_quarantined())
            .count()
            + self
                .inner
                .observers
                .lock()
                .iter()
                .filter(|o| o.guard.is_quarantined())
                .count()
    }

    /// The lazily spawned actor hosting remotely shipped code, running
    /// under [`SandboxPolicy::remote`]: step/memory/depth/deadline
    /// limits plus the capability strip of host-escape functions.
    pub fn sandbox_actor(&self) -> ScriptActor {
        let mut sandbox = self.inner.sandbox.lock();
        sandbox
            .get_or_insert_with(|| {
                let name = format!("{}-sandbox", self.inner.property);
                ScriptActor::spawn(&name, |interp| {
                    interp.set_sandbox(&SandboxPolicy::remote());
                })
            })
            .clone()
    }

    /// Records an error with context for `last_error`, the error
    /// counter, the resource-exhaustion counter and a trace event.
    fn record_error(&self, context: &str, err: &ActorError) {
        self.inner.errors.fetch_add(1, Ordering::Relaxed);
        if err.is_resource_limit() {
            adapta_telemetry::registry()
                .counter(&format!("monitor.{}.resource_exhausted", self.property()))
                .incr();
        }
        let message = format!("{context}: {err}");
        let mut span = adapta_telemetry::Span::start("monitor.error");
        span.attr("property", self.property());
        span.attr("error", &message);
        span.end();
        *self.inner.last_error.lock() = Some(message);
    }

    /// Rejects an installer that already has too many live installs.
    pub(crate) fn check_quota(&self, installer: &str) -> Result<(), ActorError> {
        let live = self
            .inner
            .aspects
            .lock()
            .iter()
            .filter(|a| a.installer == installer)
            .count()
            + self
                .inner
                .observers
                .lock()
                .iter()
                .filter(|o| o.installer == installer)
                .count();
        if live >= MAX_INSTALLS_PER_INSTALLER {
            adapta_telemetry::registry()
                .counter(&format!("monitor.{}.quota_rejections", self.property()))
                .incr();
            return Err(ActorError::Rejected(format!(
                "installer `{installer}` exceeded the quota of \
                 {MAX_INSTALLS_PER_INSTALLER} installed scripts"
            )));
        }
        Ok(())
    }

    // ---- aspects -------------------------------------------------------

    /// Defines (or replaces) an aspect computed natively.
    pub fn define_aspect_native(
        &self,
        name: impl Into<String>,
        f: impl Fn(&Value) -> Value + Send + Sync + 'static,
    ) {
        self.put_aspect(name.into(), "local".into(), AspectFn::Native(Box::new(f)));
    }

    /// Defines (or replaces) an aspect from script source — the
    /// `defineAspect(name, updatef)` of Figure 1. The function is
    /// called as `updatef(self, currval, monitor)` on every tick, with
    /// a persistent `self` table.
    ///
    /// # Errors
    ///
    /// Script compilation errors.
    pub fn define_aspect_script(
        &self,
        name: impl Into<String>,
        code: &str,
    ) -> Result<(), ActorError> {
        self.install_aspect_script(self.inner.actor.clone(), "local", name.into(), code)
    }

    /// Defines an aspect from *remotely shipped* source: the code is
    /// compiled and run in the monitor's sandboxed actor
    /// ([`sandbox_actor`](Self::sandbox_actor)), and the installer's
    /// quota ([`MAX_INSTALLS_PER_INSTALLER`]) is enforced first.
    ///
    /// # Errors
    ///
    /// Quota rejection or script compilation errors.
    pub fn define_aspect_script_remote(
        &self,
        installer: &str,
        name: impl Into<String>,
        code: &str,
    ) -> Result<(), ActorError> {
        self.check_quota(installer)?;
        self.install_aspect_script(self.sandbox_actor(), installer, name.into(), code)
    }

    fn install_aspect_script(
        &self,
        actor: ScriptActor,
        installer: &str,
        name: String,
        code: &str,
    ) -> Result<(), ActorError> {
        let func = actor.store_function(code)?;
        let self_table =
            actor.with(|interp| ScriptActor::stored_put(interp, adapta_script::Value::table()))?;
        self.put_aspect(
            name,
            installer.into(),
            AspectFn::Script {
                actor,
                func,
                self_table,
            },
        );
        Ok(())
    }

    pub(crate) fn put_aspect(&self, name: String, installer: String, func: AspectFn) {
        let mut aspects = self.inner.aspects.lock();
        if let Some(entry) = aspects.iter_mut().find(|a| a.name == name) {
            entry.func = func;
            entry.installer = installer;
            entry.last = Value::Null;
            entry.guard = Guard::default();
        } else {
            aspects.push(AspectEntry {
                name,
                installer,
                func,
                last: Value::Null,
                guard: Guard::default(),
            });
        }
    }

    /// The last computed value of an aspect (`getAspectValue`).
    pub fn aspect_value(&self, name: &str) -> Option<Value> {
        self.inner
            .aspects
            .lock()
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.last.clone())
    }

    /// Names of defined aspects, in definition order (`definedAspects`).
    pub fn defined_aspects(&self) -> Vec<String> {
        self.inner
            .aspects
            .lock()
            .iter()
            .map(|a| a.name.clone())
            .collect()
    }

    // ---- observers -------------------------------------------------------

    /// Attaches an observer with a script predicate
    /// (`attachEventObserver`). The predicate source is evaluated *at
    /// the monitor* — the remote-evaluation paradigm.
    ///
    /// # Errors
    ///
    /// Script compilation errors.
    pub fn attach_observer_script(
        &self,
        target: ObserverTarget,
        event_id: impl Into<String>,
        predicate_code: &str,
    ) -> Result<ObserverId, ActorError> {
        let func = self.inner.actor.store_function(predicate_code)?;
        Ok(self.push_observer(
            target,
            event_id.into(),
            "local".into(),
            PredicateFn::Script {
                actor: self.inner.actor.clone(),
                func,
            },
        ))
    }

    /// Attaches an observer whose predicate arrived *over the wire*: it
    /// is compiled and run in the monitor's sandboxed actor, and the
    /// installer's quota is enforced first.
    ///
    /// # Errors
    ///
    /// Quota rejection or script compilation errors.
    pub fn attach_observer_script_remote(
        &self,
        installer: &str,
        target: ObserverTarget,
        event_id: impl Into<String>,
        predicate_code: &str,
    ) -> Result<ObserverId, ActorError> {
        self.check_quota(installer)?;
        let actor = self.sandbox_actor();
        let func = actor.store_function(predicate_code)?;
        Ok(self.push_observer(
            target,
            event_id.into(),
            installer.into(),
            PredicateFn::Script { actor, func },
        ))
    }

    /// Attaches an observer with a native predicate.
    pub fn attach_observer_native(
        &self,
        target: ObserverTarget,
        event_id: impl Into<String>,
        predicate: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> ObserverId {
        self.push_observer(
            target,
            event_id.into(),
            "local".into(),
            PredicateFn::Native(Box::new(predicate)),
        )
    }

    pub(crate) fn push_observer(
        &self,
        target: ObserverTarget,
        event_id: String,
        installer: String,
        predicate: PredicateFn,
    ) -> ObserverId {
        let id = self.inner.next_observer.fetch_add(1, Ordering::Relaxed);
        self.inner.observers.lock().push(ObserverEntry {
            id,
            installer,
            target,
            event_id,
            predicate,
            guard: Guard::default(),
            queue: VecDeque::new(),
            push_failures: 0,
        });
        ObserverId(id)
    }

    /// Detaches an observer (`detachEventObserver`); returns whether it
    /// existed.
    pub fn detach_observer(&self, id: ObserverId) -> bool {
        let mut observers = self.inner.observers.lock();
        let before = observers.len();
        observers.retain(|o| o.id != id.0);
        observers.len() != before
    }

    /// Number of attached observers.
    pub fn observer_count(&self) -> usize {
        self.inner.observers.lock().len()
    }

    // ---- the tick -------------------------------------------------------

    /// Runs one monitor cycle at time `now`: refresh the property value
    /// from its source, re-evaluate every aspect, then run every
    /// observer's event predicate and notify on `true`.
    ///
    /// Errors in user-supplied code are counted (see
    /// [`errors`](Self::errors)) and never abort the tick.
    pub fn tick(&self, now: SimTime) {
        self.inner.ticks.fetch_add(1, Ordering::Relaxed);
        let registry = adapta_telemetry::registry();
        registry
            .counter(&format!("monitor.{}.ticks", self.property()))
            .incr();
        let cycle = registry.histogram(&format!("monitor.{}.tick_cycle", self.property()));
        let errors_before = self.errors();
        cycle.time(|| {
            self.refresh_value(now);
            self.refresh_aspects();
            self.run_observers();
        });
        let new_errors = self.errors().saturating_sub(errors_before);
        if new_errors > 0 {
            registry
                .counter(&format!("monitor.{}.errors", self.property()))
                .add(new_errors);
        }
        registry
            .gauge(&format!("monitor.{}.quarantined.active", self.property()))
            .set(self.quarantined_count() as i64);
    }

    fn refresh_value(&self, now: SimTime) {
        // Decide what to do with the source lock held briefly.
        enum Plan {
            Keep,
            Set(Value),
            CallScript(FuncHandle),
        }
        let plan = {
            let source = self.inner.source.lock();
            match &*source {
                ValueSource::Constant => Plan::Keep,
                ValueSource::Native(f) => Plan::Set(f(now)),
                ValueSource::Script(h) => Plan::CallScript(*h),
            }
        };
        match plan {
            Plan::Keep => {}
            Plan::Set(v) => *self.inner.value.lock() = v,
            Plan::CallScript(h) => match self.inner.actor.call(h, vec![]) {
                Ok(values) => {
                    *self.inner.value.lock() = values.into_iter().next().unwrap_or(Value::Null);
                }
                Err(e) => self.record_error("value source", &e),
            },
        }
    }

    /// Bumps a `monitor.<prop>.<suffix>` counter.
    fn counter(&self, suffix: &str) {
        adapta_telemetry::registry()
            .counter(&format!("monitor.{}.{suffix}", self.property()))
            .incr();
    }

    fn refresh_aspects(&self) {
        let names: Vec<String> = self.defined_aspects();
        for name in names {
            // Snapshot what we need without holding the lock across
            // actor calls (facade natives re-enter these mutexes).
            enum Plan {
                Native(Value),
                Script(ScriptActor, FuncHandle, FuncHandle, String),
                Gone,
            }
            let current = self.value();
            let plan = {
                let mut aspects = self.inner.aspects.lock();
                match aspects.iter_mut().find(|a| a.name == name) {
                    Some(entry) => match entry.guard.admit() {
                        Admit::Skip => continue,
                        admit => {
                            if admit == Admit::Probe {
                                self.counter("quarantined.probes");
                            }
                            match &entry.func {
                                AspectFn::Native(f) => Plan::Native(f(&current)),
                                AspectFn::Script {
                                    actor,
                                    func,
                                    self_table,
                                } => Plan::Script(
                                    actor.clone(),
                                    *func,
                                    *self_table,
                                    entry.installer.clone(),
                                ),
                            }
                        }
                    },
                    None => Plan::Gone,
                }
            };
            let result = match plan {
                Plan::Gone => continue,
                Plan::Native(v) => Some(v),
                Plan::Script(actor, func, self_table, installer) => {
                    let monitor = self.clone();
                    let facade_actor = actor.clone();
                    let out = actor.call_with(func, move |interp| {
                        let self_arg = ScriptActor::stored_get(interp, self_table)
                            .unwrap_or(adapta_script::Value::Nil);
                        let currval = adapta_bridge::from_wire(&monitor.value());
                        let facade =
                            facade::monitor_facade(interp, &monitor, &facade_actor, &installer);
                        vec![self_arg, currval, facade]
                    });
                    match out {
                        Ok(values) => Some(values.into_iter().next().unwrap_or(Value::Null)),
                        Err(e) => {
                            self.record_error(&format!("aspect `{name}`"), &e);
                            None
                        }
                    }
                }
            };
            let mut aspects = self.inner.aspects.lock();
            if let Some(entry) = aspects.iter_mut().find(|a| a.name == name) {
                match result {
                    Some(v) => {
                        entry.last = v;
                        if entry.guard.on_success() {
                            self.counter("quarantined.readmitted");
                        }
                    }
                    None => {
                        if entry.guard.on_failure() {
                            self.counter("quarantined.entries");
                        }
                    }
                }
            }
        }
    }

    fn run_observers(&self) {
        let ids: Vec<u64> = self.inner.observers.lock().iter().map(|o| o.id).collect();
        for id in ids {
            enum Plan {
                Native(bool),
                Script(ScriptActor, FuncHandle, String),
                Gone,
            }
            let current = self.value();
            let plan = {
                let mut observers = self.inner.observers.lock();
                match observers.iter_mut().find(|o| o.id == id) {
                    Some(entry) => match entry.guard.admit() {
                        Admit::Skip => continue,
                        admit => {
                            if admit == Admit::Probe {
                                self.counter("quarantined.probes");
                            }
                            match &entry.predicate {
                                PredicateFn::Native(f) => Plan::Native(f(&current)),
                                PredicateFn::Script { actor, func } => {
                                    Plan::Script(actor.clone(), *func, entry.installer.clone())
                                }
                            }
                        }
                    },
                    None => Plan::Gone,
                }
            };
            let fired = match plan {
                Plan::Gone => continue,
                Plan::Native(b) => Some(b),
                Plan::Script(actor, h, installer) => {
                    let monitor = self.clone();
                    let observer_arg = {
                        let observers = self.inner.observers.lock();
                        match observers.iter().find(|o| o.id == id).map(|o| &o.target) {
                            Some(ObserverTarget::Remote(r)) => ObserverArg::Remote(r.clone()),
                            Some(ObserverTarget::Local(h)) => ObserverArg::Local(*h),
                            Some(ObserverTarget::Callback(_)) => ObserverArg::None,
                            None => continue,
                        }
                    };
                    let facade_actor = actor.clone();
                    let out = actor.call_with(h, move |interp| {
                        let obs = match observer_arg {
                            ObserverArg::Remote(r) => adapta_bridge::from_wire(&Value::ObjRef(r)),
                            ObserverArg::Local(h) => ScriptActor::stored_get(interp, h)
                                .unwrap_or(adapta_script::Value::Nil),
                            ObserverArg::None => adapta_script::Value::Nil,
                        };
                        let currval = adapta_bridge::from_wire(&monitor.value());
                        let facade =
                            facade::monitor_facade(interp, &monitor, &facade_actor, &installer);
                        vec![obs, currval, facade]
                    });
                    match out {
                        Ok(values) => Some(
                            values
                                .first()
                                .map(|v| !matches!(v, Value::Null | Value::Bool(false)))
                                .unwrap_or(false),
                        ),
                        Err(e) => {
                            self.record_error(&format!("observer {id} predicate"), &e);
                            None
                        }
                    }
                }
            };
            let mut observers = self.inner.observers.lock();
            if let Some(entry) = observers.iter_mut().find(|o| o.id == id) {
                match fired {
                    Some(fired) => {
                        if entry.guard.on_success() {
                            self.counter("quarantined.readmitted");
                        }
                        if fired {
                            self.enqueue_push(entry);
                        }
                    }
                    None => {
                        if entry.guard.on_failure() {
                            self.counter("quarantined.entries");
                        }
                    }
                }
            }
        }
        self.flush_pushes();
    }

    /// Queues one `notifyEvent` for the observer, coalescing a
    /// back-to-back duplicate and dropping the oldest entry at the cap.
    fn enqueue_push(&self, entry: &mut ObserverEntry) {
        if entry.queue.back() == Some(&entry.event_id) {
            self.counter("push.coalesced");
            return;
        }
        if entry.queue.len() >= OBSERVER_QUEUE_CAP {
            entry.queue.pop_front();
            self.counter("push.dropped");
        }
        entry.queue.push_back(entry.event_id.clone());
    }

    /// Drains every observer's pending-push queue, delivering each
    /// event. Remote observers that keep failing their `oneway` push
    /// ([`EVICT_AFTER_FAILED_PUSHES`] in a row) are evicted.
    fn flush_pushes(&self) {
        enum Delivery {
            Remote(ObjRef),
            Local(FuncHandle),
            Callback(Arc<dyn Fn(&str) + Send + Sync>),
        }
        let ids: Vec<u64> = self.inner.observers.lock().iter().map(|o| o.id).collect();
        for id in ids {
            let (delivery, pending) = {
                let mut observers = self.inner.observers.lock();
                let Some(entry) = observers.iter_mut().find(|o| o.id == id) else {
                    continue;
                };
                if entry.queue.is_empty() {
                    continue;
                }
                let delivery = match &entry.target {
                    ObserverTarget::Remote(r) => Delivery::Remote(r.clone()),
                    ObserverTarget::Local(h) => Delivery::Local(*h),
                    ObserverTarget::Callback(f) => Delivery::Callback(f.clone()),
                };
                (delivery, std::mem::take(&mut entry.queue))
            };
            for event_id in pending {
                let pushed = match &delivery {
                    // Remote pushes carry the monitor's current value
                    // as a second argument so observers (e.g. balancer
                    // replica stats) can consume the load feed without
                    // a `getValue` round trip. Older observer servants
                    // read only `args[0]`, so the extra arg is
                    // backward compatible.
                    Delivery::Remote(target) => self
                        .inner
                        .orb
                        .invoke_oneway_ref(
                            target,
                            "notifyEvent",
                            vec![Value::from(&*event_id), self.value()],
                        )
                        .is_ok(),
                    Delivery::Local(h) => {
                        let h = *h;
                        let out = self.inner.actor.with(move |interp| {
                            let Some(table) = ScriptActor::stored_get(interp, h) else {
                                return Err(ActorError::UnknownFunction(0));
                            };
                            let method = table
                                .as_table()
                                .map(|t| t.borrow().get_str("notifyEvent"))
                                .unwrap_or(adapta_script::Value::Nil);
                            interp
                                .call(&method, vec![table, adapta_script::Value::str(&event_id)])
                                .map(|_| ())
                                .map_err(ActorError::from)
                        });
                        matches!(out, Ok(Ok(())))
                    }
                    Delivery::Callback(f) => {
                        f(&event_id);
                        true
                    }
                };
                if pushed {
                    self.inner.notifications.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.inner.errors.fetch_add(1, Ordering::Relaxed);
                }
                let remote = matches!(delivery, Delivery::Remote(_));
                if remote {
                    let mut observers = self.inner.observers.lock();
                    if let Some(entry) = observers.iter_mut().find(|o| o.id == id) {
                        if pushed {
                            entry.push_failures = 0;
                        } else {
                            entry.push_failures += 1;
                            if entry.push_failures >= EVICT_AFTER_FAILED_PUSHES {
                                observers.retain(|o| o.id != id);
                                drop(observers);
                                self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                                self.counter("observers.evicted");
                                *self.inner.last_error.lock() = Some(format!(
                                    "observer {id}: evicted after \
                                     {EVICT_AFTER_FAILED_PUSHES} failed pushes"
                                ));
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}

enum ObserverArg {
    Remote(ObjRef),
    Local(FuncHandle),
    None,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn setup() -> (Orb, ScriptActor) {
        (Orb::new("mon-test"), ScriptActor::spawn("mon-test", |_| {}))
    }

    #[test]
    fn native_source_refreshes_value() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Load")
            .source_native(|now| Value::from(now.as_secs() as f64))
            .build(&actor, &orb)
            .unwrap();
        assert_eq!(mon.value(), Value::Null);
        mon.tick(SimTime::from_secs(5));
        assert_eq!(mon.value(), Value::from(5.0));
        assert_eq!(mon.ticks(), 1);
    }

    #[test]
    fn script_source_refreshes_value() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Seq")
            .source_script("local n = 0\nreturn function() n = n + 1 return n end")
            .build(&actor, &orb)
            .unwrap();
        mon.tick(SimTime::ZERO);
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.value(), Value::Long(2));
    }

    #[test]
    fn constant_monitor_uses_set_value() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Policy")
            .initial(Value::from("strict"))
            .build(&actor, &orb)
            .unwrap();
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.value(), Value::from("strict"));
        mon.set_value(Value::from("lenient"));
        assert_eq!(mon.value(), Value::from("lenient"));
    }

    #[test]
    fn native_aspects_follow_the_value() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Load")
            .source_native(|now| Value::from(now.as_secs() as f64))
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_native("Doubled", |v| {
            Value::from(v.as_double().unwrap_or(0.0) * 2.0)
        });
        mon.tick(SimTime::from_secs(3));
        assert_eq!(mon.aspect_value("Doubled"), Some(Value::from(6.0)));
        assert_eq!(mon.defined_aspects(), vec!["Doubled"]);
        assert_eq!(mon.aspect_value("Nope"), None);
    }

    #[test]
    fn script_aspect_gets_self_currval_monitor() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("LoadAvg")
            .source_native(|_| {
                Value::Seq(vec![Value::from(3.0), Value::from(2.0), Value::from(1.0)])
            })
            .build(&actor, &orb)
            .unwrap();
        // The paper's "Increasing" aspect (Figure 3, lines 14-21).
        mon.define_aspect_script(
            "Increasing",
            r#"function(self, currval, monitor)
                if currval[1] > currval[2] then
                    return "yes"
                else
                    return "no"
                end
            end"#,
        )
        .unwrap();
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.aspect_value("Increasing"), Some(Value::from("yes")));
    }

    #[test]
    fn script_aspect_self_is_persistent() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("X")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_script(
            "Count",
            "function(self, currval, monitor)\nself.n = (self.n or 0) + 1\nreturn self.n\nend",
        )
        .unwrap();
        mon.tick(SimTime::ZERO);
        mon.tick(SimTime::ZERO);
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.aspect_value("Count"), Some(Value::Long(3)));
    }

    #[test]
    fn aspect_can_read_other_aspects_via_monitor_facade() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("X")
            .source_native(|_| Value::from(10.0))
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_native("Base", |v| v.clone());
        mon.define_aspect_script(
            "BasePlusOne",
            "function(self, currval, monitor)\nreturn monitor:getAspectValue('Base') + 1\nend",
        )
        .unwrap();
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.aspect_value("BasePlusOne"), Some(Value::Long(11)));
    }

    #[test]
    fn redefining_an_aspect_replaces_it() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("X")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_native("A", |_| Value::from(1i64));
        mon.define_aspect_native("A", |_| Value::from(2i64));
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.defined_aspects().len(), 1);
        assert_eq!(mon.aspect_value("A"), Some(Value::Long(2)));
    }

    #[test]
    fn native_observer_fires_and_detaches() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Load")
            .source_native(|now| Value::from(now.as_secs() as f64))
            .build(&actor, &orb)
            .unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_clone = fired.clone();
        let id = mon.attach_observer_native(
            ObserverTarget::Callback(Arc::new(move |evid| {
                assert_eq!(evid, "LoadIncrease");
                fired_clone.fetch_add(1, Ordering::Relaxed);
            })),
            "LoadIncrease",
            |v| v.as_double().unwrap_or(0.0) > 50.0,
        );
        mon.tick(SimTime::from_secs(10)); // below threshold
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        mon.tick(SimTime::from_secs(60)); // above threshold
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        assert_eq!(mon.notifications(), 1);
        assert!(mon.detach_observer(id));
        mon.tick(SimTime::from_secs(70));
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        assert!(!mon.detach_observer(id));
    }

    #[test]
    fn script_predicate_with_aspect_reproduces_fig4() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("LoadAvg")
            .source_native(|now| {
                // Rising load: one-minute average grows with time.
                let l1 = now.as_secs() as f64;
                Value::Seq(vec![
                    Value::from(l1),
                    Value::from(l1 / 2.0),
                    Value::from(0.0),
                ])
            })
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_script(
            "Increasing",
            r#"function(self, currval, monitor)
                if currval[1] > currval[2] then return "yes" else return "no" end
            end"#,
        )
        .unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_clone = fired.clone();
        // The paper's Figure 4 predicate, verbatim semantics.
        mon.attach_observer_script(
            ObserverTarget::Callback(Arc::new(move |_| {
                fired_clone.fetch_add(1, Ordering::Relaxed);
            })),
            "LoadIncrease",
            r#"function(observer, value, monitor)
                local incr
                incr = monitor:getAspectValue("Increasing")
                return value[1] > 50 and incr == "yes"
            end"#,
        )
        .unwrap();
        mon.tick(SimTime::from_secs(10));
        assert_eq!(fired.load(Ordering::Relaxed), 0, "load below limit");
        mon.tick(SimTime::from_secs(60));
        assert_eq!(fired.load(Ordering::Relaxed), 1, "load high and increasing");
    }

    #[test]
    fn remote_observer_gets_oneway_notification() {
        let (orb, actor) = setup();
        let observer_orb = Orb::new("mon-test-obs");
        observer_orb.set_synchronous_oneway(true);
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let seen_clone = seen.clone();
        let obs_ref = observer_orb
            .activate(
                "obs",
                adapta_orb::ServantFn::new("EventObserver", move |op, args| {
                    assert_eq!(op, "notifyEvent");
                    seen_clone
                        .lock()
                        .push(args[0].as_str().unwrap_or("?").to_owned());
                    Ok(Value::Null)
                }),
            )
            .unwrap();
        let mon = Monitor::builder("Load")
            .source_native(|_| Value::from(99.0))
            .build(&actor, &orb)
            .unwrap();
        mon.attach_observer_native(ObserverTarget::Remote(obs_ref), "Overload", |v| {
            v.as_double().unwrap_or(0.0) > 50.0
        });
        mon.tick(SimTime::ZERO);
        assert_eq!(seen.lock().as_slice(), &["Overload".to_owned()]);
    }

    #[test]
    fn predicate_errors_are_counted_not_fatal() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("X")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        mon.attach_observer_script(
            ObserverTarget::Callback(Arc::new(|_| {})),
            "E",
            "function(o, v, m) error('kaboom') end",
        )
        .unwrap();
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.errors(), 1);
        assert_eq!(mon.notifications(), 0);
        // Monitor still works.
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.ticks(), 2);
    }

    #[test]
    fn bad_source_script_fails_at_build() {
        let (orb, actor) = setup();
        assert!(Monitor::builder("X")
            .source_script("not valid lua ((")
            .build(&actor, &orb)
            .is_err());
    }

    #[test]
    fn failing_aspect_is_quarantined_then_probed() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Q")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_script("Bad", "function(s, v, m) error('nope') end")
            .unwrap();
        mon.define_aspect_native("Good", |v| v.clone());
        for _ in 0..crate::guard::QUARANTINE_THRESHOLD {
            mon.tick(SimTime::ZERO);
        }
        assert_eq!(mon.errors(), u64::from(crate::guard::QUARANTINE_THRESHOLD));
        assert_eq!(mon.quarantined_count(), 1);
        assert!(mon.last_error().unwrap().contains("aspect `Bad`"));
        // While quarantined the bad aspect costs nothing: no new errors,
        // and the healthy aspect keeps updating.
        for _ in 0..crate::guard::QUARANTINE_BASE_TICKS {
            mon.tick(SimTime::ZERO);
        }
        assert_eq!(mon.errors(), u64::from(crate::guard::QUARANTINE_THRESHOLD));
        assert_eq!(mon.aspect_value("Good"), Some(Value::from(1.0)));
        // Penalty expired: the next tick probes (one more error).
        mon.tick(SimTime::ZERO);
        assert_eq!(
            mon.errors(),
            u64::from(crate::guard::QUARANTINE_THRESHOLD) + 1
        );
        assert_eq!(mon.quarantined_count(), 1, "failed probe re-quarantines");
    }

    #[test]
    fn probe_success_readmits_the_entry() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("R")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        // Fails while a flag is set, then recovers.
        actor.eval("flaky = true").unwrap();
        mon.define_aspect_script(
            "Flaky",
            "function(s, v, m) if flaky then error('down') end return 'ok' end",
        )
        .unwrap();
        for _ in 0..crate::guard::QUARANTINE_THRESHOLD {
            mon.tick(SimTime::ZERO);
        }
        assert_eq!(mon.quarantined_count(), 1);
        actor.eval("flaky = false").unwrap();
        for _ in 0..=crate::guard::QUARANTINE_BASE_TICKS {
            mon.tick(SimTime::ZERO);
        }
        assert_eq!(mon.quarantined_count(), 0, "successful probe readmits");
        assert_eq!(mon.aspect_value("Flaky"), Some(Value::from("ok")));
    }

    #[test]
    fn remote_installer_quota_is_enforced() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Quota")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        for i in 0..MAX_INSTALLS_PER_INSTALLER {
            mon.define_aspect_script_remote(
                "evil",
                format!("A{i}"),
                "function(s, v, m) return 1 end",
            )
            .unwrap();
        }
        let over =
            mon.define_aspect_script_remote("evil", "A-over", "function(s, v, m) return 1 end");
        assert!(matches!(over, Err(ActorError::Rejected(_))), "{over:?}");
        // A different installer is unaffected.
        mon.define_aspect_script_remote("honest", "B0", "function(s, v, m) return 2 end")
            .unwrap();
    }

    #[test]
    fn runaway_remote_predicate_is_stopped_and_quarantined() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Hostile")
            .source_native(|_| Value::from(99.0))
            .build(&actor, &orb)
            .unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_clone = fired.clone();
        mon.attach_observer_native(
            ObserverTarget::Callback(Arc::new(move |_| {
                fired_clone.fetch_add(1, Ordering::Relaxed);
            })),
            "Healthy",
            |v| v.as_double().unwrap_or(0.0) > 50.0,
        );
        // Infinite loop, shipped remotely: the sandbox budget stops it.
        mon.attach_observer_script_remote(
            "evil",
            ObserverTarget::Callback(Arc::new(|_| {})),
            "Spin",
            "function(o, v, m) while true do end end",
        )
        .unwrap();
        for _ in 0..4 {
            mon.tick(SimTime::ZERO);
        }
        // The hostile predicate errored until quarantined; the healthy
        // observer fired every tick regardless.
        assert_eq!(fired.load(Ordering::Relaxed), 4);
        assert_eq!(mon.errors(), u64::from(crate::guard::QUARANTINE_THRESHOLD));
        assert_eq!(mon.quarantined_count(), 1);
        assert!(
            mon.last_error().unwrap().contains("budget"),
            "{:?}",
            mon.last_error()
        );
    }

    #[test]
    fn remote_code_cannot_reach_host_escapes() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Caps")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_script_remote(
            "evil",
            "Escape",
            "function(s, v, m) return readfrom('/etc/passwd') end",
        )
        .unwrap();
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.errors(), 1);
        assert!(mon.last_error().unwrap().contains("Escape"));
    }

    #[test]
    fn unreachable_remote_observer_is_evicted() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Evict")
            .source_native(|_| Value::from(99.0))
            .build(&actor, &orb)
            .unwrap();
        let gone = adapta_idl::ObjRefData::new("inproc://nowhere", "obs", "EventObserver");
        mon.attach_observer_native(ObserverTarget::Remote(gone), "E", |_| true);
        for _ in 0..EVICT_AFTER_FAILED_PUSHES {
            mon.tick(SimTime::ZERO);
        }
        assert_eq!(mon.evictions(), 1);
        assert_eq!(mon.observer_count(), 0);
        assert!(mon.last_error().unwrap().contains("evicted"));
        // Further ticks are clean.
        let errors = mon.errors();
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.errors(), errors);
    }
}
